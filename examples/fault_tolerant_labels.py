#!/usr/bin/env python3
"""Fault-tolerant exact distance labels (Theorem 30).

Scenario: a fleet of monitoring agents must answer "how far is node s
from node t if these links are down?" *without* access to the global
topology — each agent holds only the two nodes' labels.  Theorem 30
labels every vertex with (a bit-packed encoding of) an f-FT preserver
so that exact replacement distances are recoverable from two labels.

Run:  python examples/fault_tolerant_labels.py
"""

import random

from repro import DistanceLabeling
from repro.graphs import generators
from repro.spt.bfs import bfs_distances


def main() -> None:
    graph = generators.connected_erdos_renyi(30, 0.12, seed=19)
    print(f"topology: n={graph.n}, m={graph.m}")

    # f=0 overlay => labels answer queries under ANY single link fault.
    labeling = DistanceLabeling.build(graph, f=0, seed=19)
    bits = [labeling.label_bits(v) for v in graph.vertices()]
    print(
        f"labels built: max {max(bits)} bits, mean {sum(bits)/len(bits):.0f}"
        f" bits (graph itself would need ~{2 * graph.m * 5} bits)"
    )

    rng = random.Random(5)
    print("\nlabel-only queries under random single faults:")
    for _ in range(8):
        s, t = rng.sample(range(graph.n), 2)
        fault = rng.choice(list(graph.edges()))
        # The query path: ship two labels + the fault, get the distance.
        answer = DistanceLabeling.query(
            labeling.label(s), labeling.label(t), [fault]
        )
        truth = bfs_distances(graph.without([fault]), s)[t]
        status = "exact" if answer == truth else "WRONG"
        print(
            f"  dist({s:>2}, {t:>2} | {fault} down) = {answer:>2}  "
            f"[{status}]"
        )
        assert answer == truth

    # Two-fault tolerance costs a deeper overlay (f = 1 => 2-FT).
    print("\nupgrading to 2-fault tolerance (f=1 overlay):")
    labeling2 = DistanceLabeling.build(graph, f=1, seed=19)
    print(f"  max label: {labeling2.max_label_bits()} bits "
          f"(vs {max(bits)} for 1-FT)")
    s, t = 0, graph.n - 1
    faults = rng.sample(list(graph.edges()), 2)
    answer = labeling2.distance(s, t, faults)
    truth = bfs_distances(graph.without(faults), s)[t]
    print(f"  dist({s}, {t} | {faults} down) = {answer} "
          f"(ground truth {truth})")
    assert answer == truth


if __name__ == "__main__":
    main()
