#!/usr/bin/env python3
"""Distributed construction of a 1-FT subset preserver (Lemma 36).

Simulates the CONGEST-model pipeline of Section 4.5 on a data-centre
torus: every vertex samples restorable tie-breaking weights for its
incident links, |S| shortest-path-tree instances run *concurrently*
under random-delay scheduling (Theorem 35) with per-link bandwidth
limits, and the union of the trees is a 1-fault-tolerant S x S
distance preserver (Theorem 8(1)).

Run:  python examples/distributed_preserver.py
"""

from repro.core.weights import AntisymmetricWeights
from repro.distributed import (
    distributed_spt,
    distributed_ss_preserver,
)
from repro.graphs import generators
from repro.preservers import verify_preserver
from repro.spt.apsp import diameter


def main() -> None:
    graph = generators.torus(8, 8)
    d = diameter(graph)
    print(f"topology: 8x8 torus, n={graph.n}, m={graph.m}, diameter={d}")

    # Step 1 (Lemma 34): one distributed tie-breaking SPT, to see the
    # baseline costs: O(D) rounds, O(1) messages per edge.
    atw = AntisymmetricWeights.random(graph, f=1, seed=11)
    _tree, stats = distributed_spt(graph, 0, atw.weight, atw.scale)
    print(
        f"\nsingle SPT (Lemma 34): {stats.rounds} rounds, "
        f"{stats.messages} messages, "
        f"max {stats.max_edge_congestion} msg/edge"
    )

    # Step 2 (Theorem 35 + Lemma 36): all |S| SPTs at once, sharing
    # per-edge bandwidth; union = 1-FT S x S preserver.
    monitors = [0, 9, 18, 27, 36, 45, 54, 63]
    result = distributed_ss_preserver(
        graph, monitors, faults_tolerated=1, seed=11
    )
    stats = result.wave_stats[0]
    print(
        f"\nconcurrent build for |S|={len(monitors)} (Lemma 36):"
        f"\n  makespan        : {result.total_rounds} rounds "
        f"(D + |S| = {d + len(monitors)})"
        f"\n  messages        : {stats.messages}"
        f"\n  max congestion  : {stats.max_edge_congestion} msgs on one link"
        f"\n  max queue delay : {stats.max_queue_delay} rounds"
        f"\n  preserver edges : {result.preserver.size} "
        f"(bound |S|(n-1) = {len(monitors) * (graph.n - 1)})"
    )

    # Certify the fault-tolerance guarantee on sampled faults.
    sampled = generators.fault_sample(graph, 20, seed=4, size=1)
    ok = verify_preserver(
        graph, result.preserver.edges, monitors, fault_sets=sampled
    )
    print(f"\npreserver verified on 20 sampled single faults: {ok}")
    assert ok


if __name__ == "__main__":
    main()
