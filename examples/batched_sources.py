#!/usr/bin/env python3
"""Batched multi-source queries: one traversal wave, many sources.

PR 1 batched the *scenarios* (one base graph, many fault sets) and
PR 2 the *weights*; this tour shows the third rung of the CSR ladder:
batching the *sources*.  Two workload shapes:

* **APSP on a faulted snapshot** — distance vectors from every vertex
  of ``G \\ F`` in one bit-packed multi-source BFS wave
  (one Python int per vertex carries one frontier bit per source).
* **a replacement-path pair stream** — ``DistanceQuery`` objects where
  many pairs share each fault set, served through a
  :class:`~repro.query.session.Session` (PR 4): the planner groups the
  stream by canonical fault set, each group pays one masked wave, and
  the per-``(source, F)`` vectors it computes stay cached for later
  queries (one LRU shared with the per-pair memo).

Run:  PYTHONPATH=src python examples/batched_sources.py
"""

from repro.analysis.experiments import format_table, timed
from repro.graphs import generators
from repro.query import DistanceQuery, Session
from repro.scenarios import random_fault_sets
from repro.spt.apsp import all_pairs_bfs_distances, diameter
from repro.spt.bfs import bfs_distances
from repro.spt.fastpaths import csr_bfs_distances


def main() -> None:
    graph = generators.connected_erdos_renyi(400, 6.0 / 400, seed=11)
    print(f"network: sparse ER, n={graph.n}, m={graph.m}, "
          f"diameter={diameter(graph)}")

    # --- APSP on a faulted snapshot: one batched call ----------------
    faults = random_fault_sets(graph, 3, 1, seed=1)[0]
    view = graph.csr().without(faults)
    csr, mask = view._as_csr()
    sources = list(graph.vertices())

    loop, loop_s = timed(
        lambda: [csr_bfs_distances(csr, mask, s) for s in sources]
    )
    # all_pairs_bfs_distances dispatches onto the bit-packed batch
    # kernel whenever the graph (or view) exposes a CSR fast path.
    wave, wave_s = timed(all_pairs_bfs_distances, view)
    assert [wave[s] for s in sources] == loop
    print(
        f"\nAPSP over G \\ F ({len(faults)} faults, {len(sources)} "
        f"sources):\n"
        f"  per-source loop  {loop_s * 1e3:7.1f} ms\n"
        f"  one batched wave {wave_s * 1e3:7.1f} ms   "
        f"({loop_s / wave_s:.1f}x)"
    )

    # --- a pair stream sharing fault sets across pairs ---------------
    # Since PR 4 the stream goes in as typed queries through a Session;
    # the planner does the grouping evaluate_pairs used to hand-roll.
    session = Session(graph)
    engine = session.engine
    monitored = [(s, t) for s in (0, 7, 19, 42) for t in (377, 398, 251)]
    # Adversarial scenarios: faults on the selected shortest-path tree
    # of a monitored source actually reroute traffic, unlike random
    # edges (which mostly miss every monitored path).
    from repro.spt.bfs import bfs_tree

    tree_edges = sorted(
        (min(v, p), max(v, p))
        for v, p in bfs_tree(graph, 0).items() if p is not None
    )
    scenarios = [(e,) for e in tree_edges[:30]]
    scenarios += random_fault_sets(graph, 2, 10, seed=3)
    stream = [
        DistanceQuery(s, t, f) for f in scenarios for (s, t) in monitored
    ]
    print(f"\npair stream: {len(stream)} queries "
          f"({len(scenarios)} fault sets x {len(monitored)} monitored "
          f"pairs)")

    results, secs = timed(session.answer, stream)
    degraded = sum(
        1 for r in results
        if r.value != engine.base_distances(r.query.source)[r.query.target]
    )
    print(f"  served in {secs * 1e3:.1f} ms; {degraded} queries see a "
          f"degraded route")
    info = engine.cache_info()  # a frozen CacheInfo dataclass since PR 4
    print(f"  shared LRU: {info.size} entries "
          f"(pair memo {info.hits}h/{info.misses}m, "
          f"vector cache {info.vector_hits}h/"
          f"{info.vector_misses}m)")
    print(f"  engine: {engine!r}")

    # Re-running the same stream is almost free: every (s, t, F) is in
    # the pair memo now.
    _, resecs = timed(session.answer, stream)
    print(f"  replay: {resecs * 1e3:.1f} ms "
          f"({secs / max(resecs, 1e-9):.0f}x faster, all memo hits)")

    # --- worst degradations ------------------------------------------
    rows = [
        {
            "pair": f"({r.query.source}, {r.query.target})",
            "faults": str(list(r.query.faults)),
            "dist": r.value,
            "base": engine.base_distances(r.query.source)[r.query.target],
        }
        for r in results
        if r.value != engine.base_distances(r.query.source)[r.query.target]
    ]
    for row in rows:
        row["stretch"] = (row["dist"] - row["base"]
                          if row["dist"] >= 0 else "cut")
    rows.sort(key=lambda r: -(r["stretch"]
                              if r["stretch"] != "cut" else 10**9))
    print()
    print(format_table(rows[:8], title="worst-degraded monitored pairs"))


if __name__ == "__main__":
    main()
