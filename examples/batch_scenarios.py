#!/usr/bin/env python3
"""Batched fault scenarios: thousands of ``G \\ F`` queries, one engine.

The paper's methodology — fix one base graph, examine many fault sets
against it — is also the operational workload of a fault-tolerant
network: the topology is static, the failure scenarios stream in.
This example evaluates every single-edge fault plus a random sample of
double faults against a torus, answering per scenario:

* does the network stay connected?
* what is the replacement distance for a monitored (s, t) pair?
* does the naive midpoint-scan restoration succeed?

Run:  PYTHONPATH=src python examples/batch_scenarios.py
"""

from repro.analysis.experiments import format_table, timed
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators
from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    RestorationQuery,
    Session,
)
from repro.scenarios import (
    random_fault_sets,
    single_edge_faults,
    tree_edge_faults,
)
from repro.spt.bfs import UNREACHABLE, bfs_distances


def main() -> None:
    # A sparse random network: few redundant paths, so faults actually
    # degrade routes (a torus would shrug off every single fault).
    graph = generators.connected_erdos_renyi(150, 1.2 / 150, seed=5)
    print(f"network: sparse ER, n={graph.n}, m={graph.m}")

    # The session owns the scenario engine; since PR 4 queries go in as
    # typed objects and the planner picks the batched kernels.
    session = Session(graph)
    s = 0
    dist_from_s = bfs_distances(graph, s)
    t = max(graph.vertices(),  # monitored pair: farthest from s
            key=dist_from_s.__getitem__)

    # Scenario universe: every single fault + 200 sampled double faults.
    scenarios = list(single_edge_faults(graph))
    scenarios += random_fault_sets(graph, 2, 200, seed=7)
    print(f"scenario stream: {len(scenarios)} fault sets")

    # --- batched replacement distances --------------------------------
    answers, secs = timed(
        session.answer, [DistanceQuery(s, t, f) for f in scenarios]
    )
    dists = [a.value for a in answers]
    base = bfs_distances(graph, s)[t]
    degraded = sum(1 for d in dists if d != base)
    print(
        f"\nreplacement distances for ({s}, {t}): {secs * 1e3:.1f} ms "
        f"for the whole stream"
    )
    print(f"  base distance {base}; {degraded} scenarios degrade it")

    # --- batched connectivity -----------------------------------------
    alive = [
        a.value for a in session.answer(
            ConnectivityQuery(f) for f in scenarios
        )
    ]
    print(f"  {sum(alive)}/{len(scenarios)} scenarios stay connected")

    # --- adversarial scenarios: faults on the selected tree ----------
    scheme = RestorableTiebreaking.build(graph, f=1, seed=42)
    adversarial = list(tree_edge_faults(scheme.tree(s)))
    print(
        f"\nadversarial stream: {len(adversarial)} tree-edge faults "
        f"(every one hits a selected path)"
    )
    sweep = session.answer(
        (RestorationQuery(s, t, f) for f in adversarial), scheme=scheme
    )
    restored = disconnected = 0
    for item in sweep:
        if item.value is None:
            disconnected += 1
            continue
        target, result = item.value
        if result is not None and result.path.hops == target:
            restored += 1
    print(
        f"  midpoint scan restores {restored}"
        f"/{len(sweep) - disconnected} restorable instances "
        f"({disconnected} disconnect the pair)"
    )

    # --- scenario table: worst degradations ---------------------------
    rows = [
        {
            "faults": str(list(f)),
            "dist": d if d != UNREACHABLE else "cut",
            "stretch": (d - base) if d != UNREACHABLE else "-",
        }
        for f, d in zip(scenarios, dists)
        if d != base
    ]
    rows.sort(key=lambda r: -(r["stretch"] if r["stretch"] != "-" else 10**9))
    print()
    print(format_table(rows[:8], title="worst-degraded scenarios"))


if __name__ == "__main__":
    main()
