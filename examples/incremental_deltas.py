#!/usr/bin/env python3
"""Incremental deltas: patch base distances, don't re-traverse.

PR 1 batched the *scenarios*, PR 2 the *weights*, PR 3 the *sources*,
PR 4 made the stream *declarative* — this tour shows the fifth rung:
not traversing at all.  A fault set near the base shortest-path tree
orphans only the subtree below the faulted tree edges; everyone else
keeps their base distance (their selected root-path survives, and
removing edges can only push distances up).  So the engine:

1. reads the orphan count off the tree's Euler-tour subtree
   intervals in O(|F| log |F|) — without touching a single vertex;
2. asks an explicit cost model whether re-settling that region beats
   a full masked wave;
3. patches the base vector from the region's intact frontier
   (bit-identical to the full kernel), or falls back to the wave.

Run:  PYTHONPATH=src python examples/incremental_deltas.py
"""

from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.incremental import affected_region
from repro.incremental.repair import csr_bfs_repair
from repro.query import Session, VectorQuery
from repro.scenarios import ScenarioEngine, clustered_fault_sets
from repro.spt.fastpaths import csr_bfs_distances


def main() -> None:
    graph = generators.connected_erdos_renyi(600, 4.0 / 600, seed=5)
    print(f"network: sparse ER, n={graph.n}, m={graph.m}")

    # --- the affected region of a fault set --------------------------
    engine = ScenarioEngine(graph)
    source = 0
    index = engine.base_tree_index(source)
    tree_edges = sorted(index.tree.edges())
    # a deep tree edge orphans a small subtree; one near the root
    # orphans a huge one — the cost model tells them apart for the
    # price of interval arithmetic
    deep = max(tree_edges, key=lambda e: min(
        index.tree.hop_distance(e[0]), index.tree.hop_distance(e[1])))
    shallow = next(e for e in tree_edges if source in e)
    for label, edge in (("deep tree edge", deep),
                        ("root-adjacent edge", shallow)):
        region = affected_region(index, graph.n, source, (edge,),
                                 engine.delta_policy)
        verdict = "patch" if region.patch else "full wave"
        print(f"  fault {edge} ({label}): {region.estimate} orphans "
              f"-> {verdict}")

    # --- a repair is bit-identical to the full kernel ----------------
    csr = graph.csr()
    base = csr_bfs_distances(csr, None, source)
    mask = csr.without([deep])._as_csr()[1]
    orphans = index.orphaned_vertices([deep])
    patched, changed = csr_bfs_repair(csr, mask, base, orphans)
    assert patched == csr_bfs_distances(csr, mask, source)
    print(f"\nrepair of fault {deep}: {len(orphans)} orphans re-settled, "
          f"{len(changed)} distances actually changed, "
          f"vector bit-identical to a fresh masked BFS")

    # --- the adversarial stream, through the Session -----------------
    # Every fault is a tree edge, so every scenario must move
    # distances: the touch filter never fires, and before PR 5 each
    # scenario paid a full masked wave.
    stream = [VectorQuery(source, (e,)) for e in tree_edges]
    full, full_s = timed(Session(graph, delta=False).answer, stream)
    session = Session(graph)
    fast, fast_s = timed(session.answer, stream)
    assert [a.value for a in fast] == [a.value for a in full]
    patched_n = sum(1 for a in fast if a.patched)
    print(f"\n{len(stream)} adversarial tree-edge scenarios:\n"
          f"  full masked waves {full_s * 1e3:7.1f} ms\n"
          f"  delta patching    {fast_s * 1e3:7.1f} ms   "
          f"({full_s / fast_s:.1f}x)\n"
          f"  provenance: {patched_n} delta / "
          f"{sum(1 for a in fast if a.waved)} wave "
          f"(fallbacks near the root)")
    info = session.cache_info()
    print(f"  engine counters: delta {info.delta_hits}h/"
          f"{info.delta_fallbacks}f; {session!r}")

    # --- clustered regional failures ---------------------------------
    # Correlated faults inside one BFS ball: several edges fail
    # together, but they orphan one coherent region — still a patch.
    regions = clustered_fault_sets(graph, 3, 200, radius=2, seed=9)
    cstream = [VectorQuery(source, F) for F in regions]
    cfull, cfull_s = timed(Session(graph, delta=False).answer, cstream)
    csession = Session(graph)
    cfast, cfast_s = timed(csession.answer, cstream)
    assert [a.value for a in cfast] == [a.value for a in cfull]
    print(f"\n{len(cstream)} clustered 3-edge regional failures:\n"
          f"  full masked waves {cfull_s * 1e3:7.1f} ms\n"
          f"  delta patching    {cfast_s * 1e3:7.1f} ms   "
          f"({cfull_s / cfast_s:.1f}x)")


if __name__ == "__main__":
    main()
