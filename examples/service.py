#!/usr/bin/env python3
"""The scenario service: many clients, one backend, shared waves.

A :class:`~repro.service.ScenarioServer` is an asyncio network front
over one shared :class:`~repro.query.Session` (or a sharded
:class:`~repro.fleet.FleetSession`).  Clients speak the exact session
dialect over a socket — and the server's
:class:`~repro.service.Coalescer` folds concurrent requests into
rolling micro-batches, so clients querying the *same* failure ride
one masked wave.  This tour walks the four things the service adds:

1. **The dialect over the wire** — `ServiceClient` is a drop-in for
   `Session`: submit/gather/answer, typed answers with provenance.
2. **Cross-client coalescing** — two clients ask about the same fault
   set concurrently; one wave answers both, and every answer's
   ``provenance.coalesced`` says how many queries rode it.
3. **Admission control** — typed ``ServiceError`` backpressure
   instead of unbounded queues.
4. **Epoch pushes** — the invalidation channel for clients holding
   answer-derived state.

Run:  PYTHONPATH=src python examples/service.py
"""

import threading

from repro.exceptions import ServiceError
from repro.graphs import generators
from repro.query import DistanceQuery, EccentricityQuery, Session, VectorQuery
from repro.service import BackgroundServer, ServiceClient


def main() -> None:
    graph = generators.connected_erdos_renyi(400, 5.0 / 400, seed=7)
    backend = Session(graph, delta=False)

    # max_batch=2 with a generous deadline: the micro-batch flushes
    # the moment both demo clients' requests are in (the deadline is
    # only a straggler backstop).
    with BackgroundServer(backend, max_batch=2, max_delay=0.25,
                          max_inflight_client=8) as server:
        host, port = server.address
        print(f"serving {server.server.name!r} on {host}:{port}")

        # --- 1. the session dialect, spoken over a socket ------------
        with ServiceClient(host, port, client="tour") as client:
            print(f"welcome: server={client.server!r} "
                  f"tenants={client.tenants} limits={client.limits}")
            client.submit(DistanceQuery(0, graph.n - 1, [(0, 1)]))
            client.submit([EccentricityQuery(3, [(0, 1)])])
            answers = client.gather()
            for a in answers:
                print(f"  {type(a.query).__name__}: value={a.value} "
                      f"via {a.provenance.source}")

        # --- 2. cross-client coalescing ------------------------------
        # Two clients, one incident: both ask about fault set F at
        # the same moment.  The coalescer merges the two requests,
        # the planner groups them by fault set, one wave serves both.
        F = (next(iter(graph.edges())),)
        a = ServiceClient(host, port, client="noc-alice")
        b = ServiceClient(host, port, client="noc-bob")
        barrier = threading.Barrier(2)
        results = {}

        def ask(name, client, source):
            barrier.wait()
            results[name] = client.answer([VectorQuery(source, F)])

        threads = [
            threading.Thread(target=ask, args=("alice", a, 0)),
            threading.Thread(target=ask, args=("bob", b, 1)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, (answer,) in sorted(results.items()):
            p = answer.provenance
            print(f"coalesced for {name}: wave_size={p.wave_size} "
                  f"coalesced={p.coalesced} (both clients, one wave)")
        counters = a.server_stats()["server"]
        print(f"server counters: batches={counters['batches']} "
              f"coalesced_queries={counters['coalesced_queries']}")

        # --- 3. admission control ------------------------------------
        # The per-client in-flight budget is 8; a 20-query request is
        # refused outright with a typed, machine-readable error.
        try:
            a.answer([DistanceQuery(0, t) for t in range(1, 21)])
        except ServiceError as exc:
            print(f"backpressure: code={exc.code!r} ({exc})")

        # --- 4. epoch pushes -----------------------------------------
        # Subscribed clients hear about backend graph changes and know
        # to drop answer-derived state.
        b.subscribe()
        server.bump_epoch()
        print(f"epoch push seen by bob: {b.poll_pushes(timeout=2.0)}")

        a.close()
        b.close()
        print(f"\nbackend served everything: {backend!r}")


if __name__ == "__main__":
    main()
