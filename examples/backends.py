#!/usr/bin/env python3
"""Kernel backends: the same kernels, two engines, one contract.

PR 5 stopped re-traversing; this tour shows the sixth rung: serving
the traversals that *do* run from interchangeable kernel backends.
Every kernel call — single-source waves, the bit-packed multi-source
batches, delta repairs — goes through the dispatch seam in
``repro.backends``:

1. ``pyloops`` is the pure-Python reference; it is always available
   and *is* the behavioural contract.
2. ``vectorized`` serves the same eight kernels from numpy — arrays
   instead of dicts, one ``np.bitwise_or.reduceat`` per BFS level
   instead of one loop iteration per arc — and must return
   bit-identical results.
3. ``auto`` (the default) picks per call: the work of the call
   (arcs x batch width) is compared against a calibrated per-kernel
   threshold, so tiny graphs keep loop pricing and big batches get
   the arrays.  No numpy?  Everything silently stays on the loops.

Which backend served each answer is visible end to end: engine
counters, per-answer provenance, session stats.

Run:  PYTHONPATH=src python examples/backends.py
"""

from repro.analysis.experiments import timed
from repro.backends import numpy_or_none, set_backend
from repro.backends.dispatch import backend_for, calibrate, thresholds
from repro.graphs import generators
from repro.query import Session, VectorQuery
from repro.spt.batched import csr_bfs_distances_many


def main() -> None:
    graph = generators.gnm(3000, 12000, seed=42)
    csr = graph.csr()
    print(f"network: sparse gnm, n={graph.n}, m={graph.m}")
    has_numpy = numpy_or_none() is not None
    print(f"numpy available: {has_numpy} "
          f"(set REPRO_NO_NUMPY=1 to watch every step fall back)\n")

    # --- one batched wave, both engines ------------------------------
    sources = list(range(0, 96))
    previous = set_backend("pyloops")
    loop_rows, loop_s = timed(csr_bfs_distances_many, csr, None, sources)
    if has_numpy:
        set_backend("vectorized")
        # warm once: the first vectorized call on a snapshot builds its
        # ndarray mirror, which is setup cost, not kernel cost
        csr_bfs_distances_many(csr, None, sources[:2])
        vec_rows, vec_s = timed(csr_bfs_distances_many, csr, None, sources)
        assert vec_rows == loop_rows
        print(f"{len(sources)}-source batched wave:\n"
              f"  pyloops    {loop_s * 1e3:7.1f} ms\n"
              f"  vectorized {vec_s * 1e3:7.1f} ms   "
              f"({loop_s / vec_s:.1f}x, bit-identical)")
    else:
        print(f"{len(sources)}-source batched wave: pyloops "
              f"{loop_s * 1e3:.1f} ms (vectorized unavailable)")
    set_backend(previous)

    # --- auto dispatch reads a calibrated work table -----------------
    # Work = arcs x batch width.  A wave on a tiny snapshot is cheap
    # enough that ndarray overhead would dominate, so auto keeps it on
    # the loops; the same wave here crosses the threshold.
    table = thresholds()
    tiny = generators.gnm(200, 800, seed=7).csr()
    for label, snap, batch in (("tiny snapshot ", tiny, 1),
                               ("this snapshot ", csr, 96)):
        chosen = backend_for("csr_bfs_distances_many", snap, batch=batch)
        work = len(snap.indices) * batch
        print(f"  auto, {label} batch={batch:3d}: work {work:>9,} vs "
              f"threshold {table['csr_bfs_distances_many']:>7,} "
              f"-> {chosen.name}")
    if has_numpy:
        # Shipped thresholds were measured on the reference container;
        # calibrate() re-measures the crossovers on *this* machine.
        installed = calibrate(sizes=(200, 800), repeats=2)
        print(f"  calibrate(): csr_bfs_distances_many threshold now "
              f"{installed['csr_bfs_distances_many']:,}")

    # --- provenance: who served what ---------------------------------
    session = Session(graph)
    faults = [tuple(sorted(graph.edges())[:2]), ()]
    stream = [VectorQuery(s, F) for F in faults for s in (0, 1, 2)]
    answers = session.answer(stream)
    for a in answers[:3]:
        p = a.provenance
        print(f"  {p.source:6s} answer via {p.kernel or '-'} "
              f"[{p.backend or 'no kernel run'}]")
    stats = session.stats
    info = session.cache_info()
    print(f"  session stats by backend: {dict(stats.by_backend)}\n"
          f"  engine wave tally:        {dict(info.wave_backends)}")


if __name__ == "__main__":
    main()
