#!/usr/bin/env python3
"""Size/stretch trade-offs for fault-tolerant +4 spanners (Theorem 33).

Sweeps the cluster-center count σ of the Lemma-32 construction on a
dense graph and reports the size decomposition (clustering edges vs
C x C preserver edges) together with the worst additive stretch
observed under sampled single faults — illustrating why Theorem 33's
balance σ = n^{1/(2^f + 1)} is the sweet spot.

Run:  python examples/spanner_tradeoffs.py
"""

import itertools

from repro.analysis.experiments import format_table
from repro.graphs import generators
from repro.spanners import ft_plus4_spanner
from repro.spanners.additive import default_sigma
from repro.spt.bfs import UNREACHABLE, bfs_distances
from repro.graphs.base import Graph


def worst_stretch(graph, edges, fault_sets) -> int:
    sub = Graph(graph.n)
    for u, v in edges:
        sub.add_edge(u, v)
    worst = 0
    for faults in fault_sets:
        g_view = graph.without(faults)
        h_view = sub.without(faults)
        for s in range(0, graph.n, 4):
            dg = bfs_distances(g_view, s)
            dh = bfs_distances(h_view, s)
            for t in range(graph.n):
                if t == s or dg[t] == UNREACHABLE:
                    continue
                worst = max(worst, dh[t] - dg[t])
    return worst


def main() -> None:
    n = 60
    graph = generators.connected_erdos_renyi(n, 0.35, seed=33)
    print(f"dense input: n={n}, m={graph.m}")
    balanced = default_sigma(n, 0)
    print(f"Theorem 33 balance for 1-FT: sigma = sqrt(n) ~ {balanced}\n")

    fault_sets = generators.fault_sample(graph, 12, seed=2, size=1)
    rows = []
    for sigma in (2, balanced // 2, balanced, 2 * balanced, 4 * balanced):
        spanner = ft_plus4_spanner(
            graph, faults_tolerated=1, sigma=sigma, seed=5
        )
        rows.append({
            "sigma": sigma,
            "spanner_edges": spanner.size,
            "preserver_part": spanner.preserver_size,
            "clustered": len(spanner.clustered),
            "worst_stretch": worst_stretch(
                graph, spanner.edges, fault_sets
            ),
        })

    print(format_table(
        rows,
        title="1-FT +4 spanner: size decomposition vs sigma "
              "(stretch must stay <= 4)",
    ))
    print(
        "\nsmall sigma: few vertices cluster, the 'keep all incident "
        "edges' term dominates;\nlarge sigma: the C x C preserver "
        "grows as sigma * n.  The balance minimises the sum."
    )
    assert all(r["worst_stretch"] <= 4 for r in rows)


if __name__ == "__main__":
    main()
