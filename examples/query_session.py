#!/usr/bin/env python3
"""The declarative query API: describe questions, let the planner batch.

PR 1 batched the *scenarios*, PR 2 the *weights*, PR 3 the *sources*;
this tour shows the fourth rung: batching decided by a **planner**
instead of by each caller.  Callers build typed query objects
(:mod:`repro.query`) — replacement distances, monitored-pair health,
full vectors, eccentricities, connectivity — submit the mix to a
:class:`~repro.query.session.Session`, and gather typed answers tagged
with provenance (cache / filter / wave).  The planner groups the
stream by canonical fault set, picks the cheaper side to wave from
(many sources, few targets → wave from the targets), and issues one
batched kernel call per group.

Run:  PYTHONPATH=src python examples/query_session.py
"""

import asyncio

from repro.analysis.experiments import format_table, timed
from repro.graphs import generators
from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    PairQuery,
    Session,
    VectorQuery,
)
from repro.scenarios import random_fault_sets
from repro.spt.bfs import bfs_tree


def main() -> None:
    graph = generators.connected_erdos_renyi(400, 6.0 / 400, seed=11)
    session = Session(graph)
    print(f"network: sparse ER, n={graph.n}, m={graph.m}")
    print(f"session: {session!r}")

    # --- one mixed stream: pairs + vectors + eccentricities ----------
    # A monitoring workload: many probe sources, two collector targets
    # (the skew that makes the planner wave from the target side), and
    # adversarial fault scenarios on a collector's shortest-path tree.
    probes = [3, 21, 47, 80, 101, 160, 204, 255, 307, 342]
    collectors = [377, 398]
    tree_edges = sorted(
        (min(v, p), max(v, p))
        for v, p in bfs_tree(graph, collectors[0]).items() if p is not None
    )
    scenarios = [(e,) for e in tree_edges[:24]]
    scenarios += random_fault_sets(graph, 2, 8, seed=3)

    for faults in scenarios:
        session.submit(
            PairQuery(s, t, faults) for s in probes for t in collectors
        )
        session.submit(
            VectorQuery(collectors[0], faults),
            EccentricityQuery(collectors[1], faults),
            ConnectivityQuery(faults),
        )
    print(f"\nsubmitted {session.pending} queries "
          f"({len(scenarios)} fault sets x {len(probes)}x"
          f"{len(collectors)} monitored pairs + per-scenario probes)")

    answers, secs = timed(session.gather)
    st = session.stats
    print(f"  gathered in {secs * 1e3:.1f} ms: {st.cache} cache / "
          f"{st.filter} filter / {st.wave} wave "
          f"({st.waves} batched waves)")
    plan = session.planner.plan([a.query for a in answers])
    target_side = sum(1 for g in plan.groups if g.side == "target")
    print(f"  planner sides: {target_side}/{len(plan.groups)} groups "
          f"waved from the target side "
          f"(e.g. {plan.groups[0].cost_source} source starts vs "
          f"{plan.groups[0].cost_target} target starts)")

    # --- provenance: replaying the stream is almost free -------------
    replay, resecs = timed(
        session.answer, [a.query for a in answers]
    )
    hit = sum(1 for a in replay if a.cached)
    print(f"  replay: {resecs * 1e3:.1f} ms, {hit}/{len(replay)} "
          f"answers straight from cache "
          f"({secs / max(resecs, 1e-9):.0f}x faster)")

    # --- typed values: worst-degraded monitored pairs ----------------
    rows = [
        {
            "pair": f"({a.query.source}, {a.query.target})",
            "faults": str(list(a.query.faults)),
            "dist": a.value.distance,
            "base": a.value.base,
            "stretch": ("cut" if a.value.disconnected
                        else a.value.stretch),
            "via": a.provenance.source,
        }
        for a in answers
        if isinstance(a.query, PairQuery) and a.value.stretch != 0
    ]
    rows.sort(key=lambda r: -(r["stretch"]
                              if r["stretch"] != "cut" else 10**9))
    print()
    print(format_table(rows[:8], title="worst-degraded monitored pairs"))

    # --- the asyncio seam --------------------------------------------
    async def service_front():
        # answer_async runs the plan in the default executor, so an
        # async service can interleave gathers with other work.
        return await session.answer_async(
            [DistanceQuery(probes[0], collectors[0], scenarios[0]),
             ConnectivityQuery(scenarios[0])]
        )

    dist, alive = asyncio.run(service_front())
    print(f"\nasync gather: dist={dist.value} "
          f"(provenance {dist.provenance.source}), "
          f"connected={alive.value}")
    print(f"session: {session!r}")


if __name__ == "__main__":
    main()
