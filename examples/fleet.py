#!/usr/bin/env python3
"""The sharded engine fleet: one Session surface, many processes.

A :class:`~repro.fleet.FleetSession` speaks the exact
submit/gather/answer dialect of the in-process
:class:`~repro.query.Session`, but behind the facade each batch is
sharded by canonical fault set across long-lived worker processes,
each holding warm engines.  This tour walks the three things the
fleet adds on top of the planner:

1. **Sharding with affinity** — queries about the same fault set
   always land on the same worker, so its LRU keeps that scenario's
   distance vectors warm across gathers.
2. **Multi-tenancy with budget isolation** — two tenant graphs live
   side by side in every worker, each with its own eviction budget;
   a noisy tenant cannot evict a quiet tenant's vectors.
3. **Merged reports** — ``cache_info()`` and ``stats`` fold every
   worker's counters with ``CacheInfo.merge`` / ``SessionStats.merge``,
   so the fleet reads like one big session whose cache is the sum of
   its workers' budgets.

Run:  PYTHONPATH=src python examples/fleet.py
"""

from repro.fleet import FleetSession
from repro.graphs import generators
from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    PairQuery,
)
from repro.scenarios import random_fault_sets


def monitoring_stream(graph, num_faults, seed):
    """A mixed stream per fault set: an eccentricity probe (needs a
    full distance vector), a monitored pair, a connectivity check."""
    faults_list = random_fault_sets(graph, 2, num_faults, seed=seed)
    stream = []
    for k, faults in enumerate(faults_list):
        stream.append(EccentricityQuery(k % graph.n, faults))
        stream.append(DistanceQuery(0, graph.n - 1, faults))
        stream.append(ConnectivityQuery(faults))
    return stream


def main() -> None:
    # Two tenants: a production-ish sparse ER network and a smaller
    # grid testbed.  The fleet hosts both in every worker; "prod"
    # gets a roomy LRU budget, "lab" a deliberately tight one.
    prod = generators.connected_erdos_renyi(500, 5.0 / 500, seed=7)
    lab = generators.grid(8, 8)
    fleet = FleetSession(
        graphs={"prod": prod, "lab": lab},
        budgets={"prod": 512, "lab": 16},
        workers=4,
        delta=False,
    )
    print(f"fleet: {fleet!r}")
    print(f"tenants: prod n={prod.n} (budget 512/worker), "
          f"lab n={lab.n} (budget 16/worker)")

    # --- 1. sharded gathers with fault-set affinity ------------------
    # Submit interleaved streams for both tenants, gather once.  The
    # router shards each tenant's sub-batch by canonical fault set:
    # every query about a given scenario lands on the same worker.
    prod_stream = monitoring_stream(prod, 24, seed=3)
    lab_stream = [
        PairQuery(0, lab.n - 1, [(0, 1), (1, 2)]),
        DistanceQuery(0, lab.n - 1, [(0, 8)]),
    ]
    fleet.submit(prod_stream, tenant="prod")
    fleet.submit(lab_stream, tenant="lab")
    answers = fleet.gather()
    print(f"\ngather #1: {len(answers)} answers across 2 tenants")
    st = fleet.stats
    shares = ", ".join(f"{w}={c}" for w, c in sorted(st.by_worker.items()))
    print(f"worker shares: {shares}")

    # --- 2. warm caches: replay the prod stream ----------------------
    # Same scenarios, same workers (affinity): every distance vector
    # the first gather computed is still resident, so the replay is
    # answered from the pooled LRUs instead of re-running BFS waves.
    before = fleet.cache_info()
    fleet.answer(prod_stream, tenant="prod")
    after = fleet.cache_info()
    print(f"\nreplay: vector hits {before.vector_hits} -> "
          f"{after.vector_hits}, misses {before.vector_misses} -> "
          f"{after.vector_misses} (warm shards, no new waves)")

    # --- 3. budget isolation under tenant pressure -------------------
    # Hammer the tight "lab" budget with more scenarios than it can
    # hold.  Its own LRU churns, but "prod" vectors are untouched:
    # eviction budgets are per tenant, not per worker.
    fleet.answer(monitoring_stream(lab, 40, seed=9), tenant="lab")
    pressed = fleet.cache_info()
    fleet.answer(prod_stream, tenant="prod")
    final = fleet.cache_info()
    print(f"lab pressure: prod replay still warm "
          f"(hits {pressed.vector_hits} -> {final.vector_hits}, "
          f"misses unchanged: {final.vector_misses == pressed.vector_misses})")

    # --- merged reports ----------------------------------------------
    # cache_info() == CacheInfo.merge(per-worker reports); capacities()
    # shows the accounting the router routes around.
    print("\nper-worker capacity (vector-entry bytes):")
    for name, cap in sorted(fleet.capacities().items()):
        print(f"  {name}: used {cap.used_bytes}/{cap.total_bytes} "
              f"booked {cap.booked_bytes}")
    info = fleet.cache_info()
    print(f"merged cache_info: {info.vector_hits} hits / "
          f"{info.vector_misses} misses across "
          f"{len(fleet.registry.workers)} workers")
    print(f"degradations: respawns={fleet.registry.respawns} "
          f"serial_fallbacks={fleet.registry.serial_fallbacks}")

    fleet.close()


if __name__ == "__main__":
    main()
