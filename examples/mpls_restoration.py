#!/usr/bin/env python3
"""MPLS-style path restoration — the paper's motivating application.

An MPLS network encodes label-switched paths in routing tables and can
concatenate two existing paths cheaply.  Afek et al.'s question — can
ties be broken so that *any* broken shortest path is restorable as a
concatenation of two table entries? — is answered by Theorem 2 with
the two-table setup simulated here:

1. provision a router with the forward table for the restorable scheme
   ``pi`` and the (implicit) reverse table ``pi-bar``;
2. simulate a link-failure storm;
3. restore every affected LSP from the tables alone, and cross-check
   each restored route against ground truth.

Run:  python examples/mpls_restoration.py
"""

import random

from repro import MplsRouter, RestorableTiebreaking, RoutingTable
from repro.exceptions import DisconnectedError
from repro.graphs import generators
from repro.spt.apsp import replacement_distance


def main() -> None:
    # An ISP-ish sparse random topology.
    graph = generators.connected_erdos_renyi(40, 0.08, seed=7)
    print(f"topology: n={graph.n}, m={graph.m}")

    scheme = RestorableTiebreaking.build(graph, f=1, seed=7)
    router = MplsRouter(scheme)

    # The forward routing table (next-hop matrix) exists because the
    # scheme is consistent; show a few rows.
    table = RoutingTable.from_scheme(scheme)
    print(f"routing table entries: {table.entries()}")
    for t in (10, 20, 30):
        print(f"  next hop 0 -> {t}: {table.next_hop(0, t)} "
              f"(route {table.route(0, t)})")

    # Provision some label-switched paths.
    rng = random.Random(3)
    lsps = [tuple(rng.sample(range(graph.n), 2)) for _ in range(8)]
    print(f"\nprovisioned LSPs: {lsps}")

    # Failure storm: break 6 links carrying live LSPs, one at a time.
    in_use = sorted(set().union(
        *(router.primary_path(s, t).edge_set() for s, t in lsps)
    ))
    links = rng.sample(in_use, min(6, len(in_use)))
    restored = unaffected = partitioned = 0
    for link in links:
        print(f"\n*** link {link} fails ***")
        for s, t in lsps:
            primary = router.primary_path(s, t)
            if not primary.uses_edge(link):
                unaffected += 1
                continue
            try:
                new_path = router.restore(s, t, link)
            except DisconnectedError:
                partitioned += 1
                print(f"  LSP {s}->{t}: partitioned, no route exists")
                continue
            truth = replacement_distance(graph, s, t, [link])
            assert new_path.hops == truth, "restored route not shortest!"
            restored += 1
            print(
                f"  LSP {s}->{t}: rerouted {primary.hops} -> "
                f"{new_path.hops} hops via {new_path}"
            )

    print(
        f"\nsummary: {restored} restored (all verified shortest), "
        f"{unaffected} unaffected, {partitioned} partitioned"
    )
    print("no shortest-path recomputation was performed at fault time.")


if __name__ == "__main__":
    main()
