#!/usr/bin/env python3
"""Distance sensitivity oracle from fault-tolerant preservers (Sec 4.3).

Scenario: a traffic-engineering controller needs instant answers to
"what happens to s->v latency if link e dies?" for a monitored source
set.  Preprocess once, answer in O(1):

1. build a sourcewise DSO — selected tree + one replacement row per
   tree edge (stability covers all other faults);
2. compare full-graph preprocessing against preprocessing *inside* the
   1-FT preserver (identical answers, smaller substrate);
3. fire a batch of what-if queries and cross-check ground truth.

Run:  python examples/sensitivity_oracle.py
"""

import random

from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators
from repro.oracles import SourcewiseDSO
from repro.spt.apsp import replacement_distance


def main() -> None:
    graph = generators.connected_erdos_renyi(50, 0.25, seed=21)  # dense-ish
    monitors = [0, 17, 34]
    print(f"topology: n={graph.n}, m={graph.m}, monitors={monitors}")

    scheme = RestorableTiebreaking.build(graph, f=1, seed=21)
    full = SourcewiseDSO(graph, monitors, scheme=scheme)
    slim = SourcewiseDSO(graph, monitors, scheme=scheme,
                         use_preserver=True)
    print(
        f"\npreprocessing substrates: full graph "
        f"{full.substrate_edges} edge-visits vs preserver "
        f"{slim.substrate_edges} "
        f"({full.substrate_edges / slim.substrate_edges:.1f}x less work "
        f"per fault row)"
    )
    print(f"oracle space: {full.space_entries()} distance entries "
          f"({full.preprocessed_edges} replacement rows)")

    rng = random.Random(4)
    edges = list(graph.edges())
    print("\nwhat-if queries (O(1) each):")
    for _ in range(8):
        s = rng.choice(monitors)
        v = rng.randrange(graph.n)
        e = rng.choice(edges)
        answer = full.query(s, v, e)
        assert answer == slim.query(s, v, e)
        truth = replacement_distance(graph, s, v, [e])
        assert answer == truth
        print(f"  dist({s:>2} -> {v:>2} | {e} down) = {answer:>2}  [exact]")

    print("\nall answers identical across substrates and equal to "
          "ground-truth BFS.")


if __name__ == "__main__":
    main()
