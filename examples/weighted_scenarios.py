#!/usr/bin/env python3
"""Weighted fault scenarios: Theorem 11's setting at stream scale.

The weighted twin of ``batch_scenarios.py``: one weighted base network
(think link latencies), a stream of fault sets, and per-scenario
questions answered by the weighted :class:`ScenarioEngine` — exact
weighted distances over a weight-carrying CSR snapshot, a weighted
touch filter (``d_s(u) + w(u, v) + d_t(v) == d_s(t)``), and a scenario
memo for repeated fault sets.  Restoration goes through the
middle-edge sweep of the weighted restoration lemma (Theorem 11),
sharing one engine so the perturbed shortest-path trees are built once
for the whole stream.

Run:  PYTHONPATH=src python examples/weighted_scenarios.py
"""

from repro.analysis.experiments import format_table, timed
from repro.query import ConnectivityQuery, DistanceQuery, Session
from repro.scenarios import random_fault_sets, single_edge_faults
from repro.spt.bfs import UNREACHABLE
from repro.weighted import WeightedGraph, restore_via_middle_edge


def main() -> None:
    # A sparse weighted network: weights are link latencies, so a
    # fault can degrade a route without disconnecting it.
    wg = WeightedGraph.random(150, 1.8 / 150, max_weight=20, seed=5)
    print(f"network: weighted sparse ER, n={wg.n}, m={wg.m}, "
          f"total weight {wg.total_weight()}")

    # The session builds (and owns) the weighted scenario engine; the
    # restoration sweep below shares it via session.engine.
    session = Session(wg)
    engine = session.engine
    s = 0
    dist_from_s = engine.base_distances(s)
    t = max(range(wg.n),  # monitored pair: farthest from s
            key=dist_from_s.__getitem__)
    base = dist_from_s[t]
    print(f"monitored pair ({s}, {t}): base weighted distance {base}")

    # Scenario universe: every single fault, plus sampled double faults
    # *with repeats* — the memo's bread and butter.
    scenarios = list(single_edge_faults(wg))
    scenarios += random_fault_sets(wg, 2, 150, seed=7) * 2
    print(f"scenario stream: {len(scenarios)} fault sets "
          f"(double faults sampled twice each)")

    # --- batched weighted replacement distances -----------------------
    answers, secs = timed(
        session.answer, [DistanceQuery(s, t, f) for f in scenarios]
    )
    dists = [a.value for a in answers]
    degraded = sum(1 for d in dists if d != base)
    cut = sum(1 for d in dists if d == UNREACHABLE)
    info = session.cache_info()  # a frozen CacheInfo dataclass (PR 4)
    print(
        f"\nreplacement distances: {secs * 1e3:.1f} ms for the stream; "
        f"{degraded} scenarios degrade the route, {cut} cut it"
    )
    print(f"  scenario memo: {info.hits} hits / "
          f"{info.misses} misses (size {info.size})")

    # --- batched connectivity -----------------------------------------
    alive = [
        a.value for a in session.answer(
            ConnectivityQuery(f) for f in scenarios
        )
    ]
    print(f"  {sum(alive)}/{len(scenarios)} scenarios keep the "
          f"network connected")

    # --- Theorem 11 restoration through the shared engine -------------
    worst = [
        (f, d) for f, d in zip(scenarios, dists)
        if len(f) == 1 and d not in (base, UNREACHABLE)
    ]
    worst.sort(key=lambda item: -item[1])
    print(f"\nmiddle-edge restoration for the {min(5, len(worst))} "
          f"worst single faults (shared perturbed trees):")
    for f, d in worst[:5]:
        path, weight = restore_via_middle_edge(wg, s, t, f[0],
                                               engine=engine)
        assert weight == d and path.avoids(f)
        print(f"  fault {f[0]}: rerouted over {path.hops} hops, "
              f"weight {base} -> {weight}")

    # --- scenario table: worst degradations ---------------------------
    rows = [
        {
            "faults": str(list(f)),
            "dist": d if d != UNREACHABLE else "cut",
            "stretch": (d - base) if d != UNREACHABLE else "-",
        }
        for f, d in zip(scenarios, dists)
        if d != base
    ]
    rows.sort(key=lambda r: -(r["stretch"] if r["stretch"] != "-" else 10**9))
    print()
    print(format_table(rows[:8], title="worst-degraded scenarios"))


if __name__ == "__main__":
    main()
