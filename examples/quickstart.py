#!/usr/bin/env python3
"""Quickstart: restorable tiebreaking in five minutes.

Builds a mesh network, selects canonical shortest paths with the
paper's restorable tiebreaking scheme (Theorem 2), breaks an edge, and
restores the broken route *by concatenating two already-selected
paths* — no shortest-path recomputation.

Run:  python examples/quickstart.py
"""

from repro import RestorableTiebreaking, restore_by_concatenation
from repro.graphs import generators


def main() -> None:
    # A 6x6 grid: the classic many-tied-shortest-paths topology.
    graph = generators.grid(6, 6)
    print(f"network: 6x6 grid, n={graph.n}, m={graph.m}")

    # One call builds the antisymmetric tiebreaking weight function
    # (Corollary 22) and wraps it as a 1-fault restorable scheme.
    scheme = RestorableTiebreaking.build(graph, f=1, seed=42)

    s, t = 0, 35  # opposite corners
    primary = scheme.path(s, t)
    print(f"\nselected path {s} ~> {t}: {primary} ({primary.hops} hops)")

    # Break every edge of the primary path in turn and restore.
    print("\nper-edge restoration (midpoint concatenation):")
    for edge in primary.edges():
        result = restore_by_concatenation(scheme, s, t, [edge])
        print(
            f"  fault {edge}: restored via midpoint {result.midpoint:>2} "
            f"-> {result.path.hops} hops "
            f"({result.candidates} surviving midpoints)"
        )

    # The guarantee behind the loop above: the scheme is consistent,
    # stable, and 1-restorable (Theorem 19).  Verify it exhaustively.
    from repro.core import properties

    print("\nexhaustive property check (Definitions 14, 16, 17):")
    print(f"  consistent : {properties.is_consistent(scheme)}")
    print(f"  stable     : {properties.is_stable(scheme)}")
    print(f"  restorable : {properties.is_restorable(scheme)}")


if __name__ == "__main__":
    main()
