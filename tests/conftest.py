"""Shared fixtures for the test-suite.

Schemes are module-scoped where safe (they are immutable after
construction and internally cache trees), keeping the brute-force
verification sweeps fast.
"""

from __future__ import annotations

import warnings

import pytest

from repro.backends import numpy_or_none, set_backend
from repro.graphs import generators
from repro.core.scheme import BFSTiebreaking, RestorableTiebreaking


@pytest.fixture(params=["pyloops", "vectorized"])
def backend(request):
    """Pin the kernel-backend seam to one backend for the test body.

    Parametrising a bit-identity suite over this fixture runs it once
    per backend; the ``vectorized`` leg skips cleanly when numpy is
    absent (or disabled via ``REPRO_NO_NUMPY``), so the no-numpy CI
    matrix leg still runs the ``pyloops`` half.
    """
    if request.param == "vectorized" and numpy_or_none() is None:
        pytest.skip("numpy unavailable: vectorized backend leg skipped")
    previous = set_backend(request.param)
    try:
        yield request.param
    finally:
        set_backend(previous)


@pytest.fixture(autouse=True)
def _silence_engine_deprecation_shims():
    """Mute ONLY the PR-4 engine-shim deprecations in legacy tests.

    The pre-PR-4 suites deliberately keep exercising the deprecated
    per-call engine surface (they are its regression coverage); without
    this scoped filter their ~170 identical warnings would drown any
    genuinely new warning.  The filter is message-anchored, so other
    DeprecationWarnings still surface, and ``pytest.warns`` blocks
    (which install their own "always" filter) still see the shims warn.
    """
    with warnings.catch_warnings():
        warnings.filterwarnings(
            "ignore",
            message=r"ScenarioEngine\.\w+ is deprecated",
            category=DeprecationWarning,
        )
        yield


@pytest.fixture(scope="session")
def c4():
    """The Appendix-A counterexample graph."""
    return generators.cycle(4)


@pytest.fixture(scope="session")
def grid4():
    """A 4x4 grid — many tied shortest paths."""
    return generators.grid(4, 4)


@pytest.fixture(scope="session")
def torus4():
    return generators.torus(4, 4)


@pytest.fixture(scope="session")
def er_small():
    """A connected random graph small enough for exhaustive checks."""
    return generators.connected_erdos_renyi(18, 0.15, seed=11)


@pytest.fixture(scope="session")
def er_medium():
    """A connected random graph for scaling-ish checks."""
    return generators.connected_erdos_renyi(50, 0.08, seed=23)


@pytest.fixture(scope="session")
def petersen():
    return generators.petersen()


@pytest.fixture(scope="session")
def grid_scheme(grid4):
    return RestorableTiebreaking.build(grid4, f=1, seed=7)


@pytest.fixture(scope="session")
def er_scheme(er_small):
    return RestorableTiebreaking.build(er_small, f=2, seed=3)


@pytest.fixture(scope="session")
def grid_bfs_scheme(grid4):
    return BFSTiebreaking(grid4)


def pytest_collection_modifyitems(config, items):
    """Keep slow sweeps last so quick failures surface first."""
    items.sort(key=lambda item: "slow" in item.keywords)
