"""Tests for the CONGEST simulator contract."""

import pytest

from repro.exceptions import CongestError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.distributed.congest import (
    CongestSimulator,
    NodeAlgorithm,
    NodeHandle,
)


class Flood(NodeAlgorithm):
    """Flood a token from a root; every node records receipt round."""

    def __init__(self, vertex, root):
        self.vertex = vertex
        self.root = root
        self.received_at = 0 if vertex == root else None

    def on_start(self, node):
        if self.vertex == self.root:
            node.broadcast("token")

    def on_round(self, node, inbox):
        if self.received_at is None and inbox:
            self.received_at = node.round
            node.broadcast("token")


class Chatter(NodeAlgorithm):
    """Sends `count` messages to one neighbour in round 1."""

    def __init__(self, vertex, target, count):
        self.vertex = vertex
        self.target = target
        self.count = count

    def on_start(self, node):
        if self.target is not None:
            for _ in range(self.count):
                node.send(self.target, "x")


class TestBasics:
    def test_flood_takes_eccentricity_rounds(self):
        g = generators.path(6)
        sim = CongestSimulator(g)
        nodes = {v: Flood(v, 0) for v in g.vertices()}
        stats = sim.run(nodes)
        assert nodes[5].received_at == 5
        assert stats.rounds == 6  # 5 hops + final silent delivery round
        assert stats.max_edge_congestion <= 2

    def test_missing_algorithm_rejected(self):
        g = generators.path(3)
        sim = CongestSimulator(g)
        with pytest.raises(CongestError):
            sim.run({0: Flood(0, 0)})

    def test_non_neighbor_send_rejected(self):
        g = generators.path(3)
        sim = CongestSimulator(g)
        nodes = {v: NodeAlgorithm() for v in g.vertices()}
        nodes[0] = Chatter(0, 2, 1)  # 0 and 2 are not adjacent
        with pytest.raises(CongestError):
            sim.run(nodes)

    def test_zero_word_message_rejected(self):
        g = generators.path(2)

        class BadWords(NodeAlgorithm):
            def on_start(self, node):
                node.send(node.neighbors[0], "x", words=0)

        sim = CongestSimulator(g)
        with pytest.raises(CongestError):
            sim.run({0: BadWords(), 1: NodeAlgorithm()})


class TestCapacity:
    def test_strict_mode_overflow_raises(self):
        g = generators.path(2)
        sim = CongestSimulator(g, capacity_messages=1, queue_excess=False)
        nodes = {0: Chatter(0, 1, 3), 1: NodeAlgorithm()}
        with pytest.raises(CongestError):
            sim.run(nodes)

    def test_queue_mode_delays_delivery(self):
        g = generators.path(2)

        class Sink(NodeAlgorithm):
            def __init__(self):
                self.arrivals = []

            def on_round(self, node, inbox):
                self.arrivals.extend(node.round for _ in inbox)

        sink = Sink()
        sim = CongestSimulator(g, capacity_messages=1, queue_excess=True)
        stats = sim.run({0: Chatter(0, 1, 3), 1: sink})
        assert sink.arrivals == [1, 2, 3]
        assert stats.max_queue_delay == 2
        assert stats.messages == 3

    def test_higher_capacity(self):
        g = generators.path(2)

        class Sink(NodeAlgorithm):
            def __init__(self):
                self.arrivals = []

            def on_round(self, node, inbox):
                self.arrivals.extend(node.round for _ in inbox)

        sink = Sink()
        sim = CongestSimulator(g, capacity_messages=3, queue_excess=False)
        sim.run({0: Chatter(0, 1, 3), 1: sink})
        assert sink.arrivals == [1, 1, 1]


class TestAccounting:
    def test_word_counting(self):
        g = generators.path(2)

        class Wordy(NodeAlgorithm):
            def on_start(self, node):
                node.send(node.neighbors[0], "big", words=5)

        sim = CongestSimulator(g)
        stats = sim.run({0: Wordy(), 1: NodeAlgorithm()})
        assert stats.words == 5
        assert stats.messages == 1

    def test_word_bits_default(self):
        g = generators.path(9)
        sim = CongestSimulator(g)
        assert sim.word_bits == 4  # ceil(log2 9)

    def test_quiescence_without_messages(self):
        g = generators.path(3)
        sim = CongestSimulator(g)
        stats = sim.run({v: NodeAlgorithm() for v in g.vertices()})
        assert stats.rounds == 0
        assert stats.messages == 0

    def test_wake_next_round(self):
        g = generators.path(2)

        class Sleeper(NodeAlgorithm):
            def __init__(self):
                self.wakes = 0

            def on_start(self, node):
                node.wake_next_round()

            def on_round(self, node, inbox):
                self.wakes += 1
                if self.wakes < 3:
                    node.wake_next_round()

        sleeper = Sleeper()
        sim = CongestSimulator(g)
        stats = sim.run({0: sleeper, 1: NodeAlgorithm()})
        assert sleeper.wakes == 3
        assert stats.rounds == 3
