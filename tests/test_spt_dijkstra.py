"""Unit tests for the exact-integer Dijkstra and path counting."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.spt.bfs import bfs_distances
from repro.spt.dijkstra import count_min_weight_paths, dijkstra, extract_path


def unit(u, v):
    return 1


class TestDijkstra:
    def test_unit_weights_match_bfs(self):
        g = generators.connected_erdos_renyi(30, 0.1, seed=2)
        dist, _parent = dijkstra(g, 0, unit)
        bfs = bfs_distances(g, 0)
        assert all(dist[v] == bfs[v] for v in dist)

    def test_asymmetric_weights(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])

        def w(u, v):
            return 1 if u < v else 5

        dist_fwd, _ = dijkstra(g, 0, w)
        dist_bwd, _ = dijkstra(g, 2, w)
        assert dist_fwd[2] == 1  # direct cheap arc 0->2
        assert dist_bwd[0] == 5  # going back is expensive everywhere

    def test_huge_integer_weights_exact(self):
        g = generators.path(4)
        big = 10 ** 50

        def w(u, v):
            return big + (1 if u < v else -1)

        dist, _ = dijkstra(g, 0, w)
        assert dist[3] == 3 * big + 3

    def test_nonpositive_weight_rejected(self):
        g = generators.path(3)
        with pytest.raises(GraphError):
            dijkstra(g, 0, lambda u, v: 0)

    def test_unknown_source(self):
        with pytest.raises(GraphError):
            dijkstra(Graph(1), 4, unit)

    def test_targets_early_exit(self):
        g = generators.path(10)
        dist, _ = dijkstra(g, 0, unit, targets=[2])
        assert dist[2] == 2
        assert 9 not in dist  # never settled

    def test_unreachable_absent(self):
        g = Graph(3, [(0, 1)])
        dist, parent = dijkstra(g, 0, unit)
        assert 2 not in dist and 2 not in parent

    def test_parent_chain_consistent(self):
        g = generators.grid(4, 4)
        dist, parent = dijkstra(g, 0, unit)
        for v, p in parent.items():
            if p is not None:
                assert dist[v] == dist[p] + 1


class TestCountMinWeightPaths:
    def test_grid_counts_binomial(self):
        # Unit weights on a grid: C(4, 2) = 6 shortest corner paths.
        g = generators.grid(3, 3)
        counts = count_min_weight_paths(g, 0, unit)
        assert counts[8] == 6
        assert counts[0] == 1

    def test_perturbed_weights_unique(self):
        from repro.core.weights import AntisymmetricWeights

        g = generators.grid(3, 3)
        atw = AntisymmetricWeights.random(g, f=1, seed=5)
        counts = count_min_weight_paths(g, 0, atw.weight)
        assert all(c == 1 for c in counts.values())

    def test_cycle_even_has_two(self):
        g = generators.cycle(6)
        counts = count_min_weight_paths(g, 0, unit)
        assert counts[3] == 2  # antipodal vertex
        assert counts[1] == 1


class TestExtractPath:
    def test_round_trip(self):
        g = generators.grid(3, 3)
        _dist, parent = dijkstra(g, 0, unit)
        path = extract_path(parent, 8)
        assert path.source == 0 and path.target == 8
        assert path.hops == 4
        assert path.is_valid_in(g)

    def test_missing_target(self):
        g = Graph(3, [(0, 1)])
        _dist, parent = dijkstra(g, 0, unit)
        assert extract_path(parent, 2) is None
