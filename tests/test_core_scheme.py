"""Unit tests for tiebreaking scheme classes."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.core.scheme import (
    BFSTiebreaking,
    ExplicitScheme,
    RestorableTiebreaking,
    WeightedTiebreaking,
)
from repro.spt.bfs import bfs_distances
from repro.spt.paths import Path


class TestRestorableTiebreaking:
    @pytest.mark.parametrize("method", ["random", "deterministic", "uniform"])
    def test_build_methods(self, method):
        g = generators.grid(3, 3)
        scheme = RestorableTiebreaking.build(g, f=1, method=method, seed=2)
        path = scheme.path(0, 8)
        assert path.hops == 4

    def test_unknown_method(self):
        with pytest.raises(GraphError):
            RestorableTiebreaking.build(generators.path(3), method="magic")

    def test_paths_are_shortest(self, grid4, grid_scheme):
        for s in grid4.vertices():
            dist = bfs_distances(grid4, s)
            for t in grid4.vertices():
                path = grid_scheme.path(s, t)
                assert path.hops == dist[t]

    def test_paths_under_faults_are_shortest(self, grid4, grid_scheme):
        fault = (5, 6)
        view = grid4.without([fault])
        for s in (0, 15):
            dist = bfs_distances(view, s)
            for t in grid4.vertices():
                path = grid_scheme.path(s, t, [fault])
                assert path.hops == dist[t]
                assert path.avoids([fault])

    def test_none_when_disconnected(self):
        g = generators.path(3)
        scheme = RestorableTiebreaking.build(g, seed=1)
        assert scheme.path(0, 2, [(1, 2)]) is None
        assert scheme.hop_distance(0, 2, [(1, 2)]) is None

    def test_trivial_path_to_self(self, grid_scheme):
        assert grid_scheme.path(3, 3) == Path.trivial(3)

    def test_tree_caching(self, grid4):
        scheme = RestorableTiebreaking.build(grid4, seed=5)
        assert scheme.cache_size() == 0
        scheme.path(0, 8)
        scheme.path(0, 12)
        assert scheme.cache_size() == 1  # same source, same fault set
        scheme.path(0, 8, [(0, 1)])
        assert scheme.cache_size() == 2
        scheme.clear_cache()
        assert scheme.cache_size() == 0

    def test_fault_key_orientation_insensitive(self, grid_scheme):
        a = grid_scheme.path(0, 15, [(1, 0)])
        b = grid_scheme.path(0, 15, [(0, 1)])
        assert a == b

    def test_weighted_distance_consistent(self, grid_scheme):
        wd = grid_scheme.weighted_distance(0, 15)
        assert grid_scheme.weights.hops_of_weight(wd) == 6

    def test_exposes_weights(self, grid_scheme):
        assert grid_scheme.weights.verify_antisymmetry()


class TestBFSTiebreaking:
    def test_paths_are_shortest(self, grid4):
        scheme = BFSTiebreaking(grid4)
        dist = bfs_distances(grid4, 0)
        for t in grid4.vertices():
            assert scheme.path(0, t).hops == dist[t]

    def test_deterministic(self, grid4):
        a = BFSTiebreaking(grid4).path(0, 15)
        b = BFSTiebreaking(grid4).path(0, 15)
        assert a == b

    def test_faults_respected(self, grid4):
        scheme = BFSTiebreaking(grid4)
        path = scheme.path(0, 15, [(0, 1)])
        assert path.avoids([(0, 1)])


class TestExplicitScheme:
    def test_table_lookup(self):
        g = generators.cycle(4)
        table = {(0, 2): Path([0, 1, 2]), (2, 0): Path([2, 3, 0])}
        scheme = ExplicitScheme(g, table)
        assert scheme.path(0, 2) == Path([0, 1, 2])
        assert scheme.hop_distance(0, 2) == 2
        assert scheme.path(1, 3) is None

    def test_wrong_endpoints_rejected(self):
        g = generators.cycle(4)
        with pytest.raises(GraphError):
            ExplicitScheme(g, {(0, 2): Path([1, 2])})

    def test_invalid_path_rejected(self):
        g = generators.cycle(4)
        with pytest.raises(GraphError):
            ExplicitScheme(g, {(0, 2): Path([0, 2])})

    def test_symmetry_detector(self):
        g = generators.cycle(4)
        sym = ExplicitScheme(g, {
            (0, 2): Path([0, 1, 2]), (2, 0): Path([2, 1, 0]),
        })
        asym = ExplicitScheme(g, {
            (0, 2): Path([0, 1, 2]), (2, 0): Path([2, 3, 0]),
        })
        assert sym.is_symmetric_table()
        assert not asym.is_symmetric_table()

    def test_fault_table(self):
        g = generators.cycle(4)
        fault_key = frozenset({(0, 1)})
        scheme = ExplicitScheme(
            g,
            {(0, 1): Path([0, 1])},
            fault_table={(0, 1, fault_key): Path([0, 3, 2, 1])},
        )
        assert scheme.path(0, 1, [(0, 1)]) == Path([0, 3, 2, 1])


class TestWeightedTiebreakingGeneric:
    def test_custom_weight_scheme(self):
        # Heavily prefer high-numbered vertices: tie on C4 broken to 0-3-2.
        g = generators.cycle(4)

        def weight(u, v):
            return 100 - v

        scheme = WeightedTiebreaking(g, weight, scale=100, name="greedy")
        assert scheme.path(0, 2) == Path([0, 3, 2])
        assert "greedy" in repr(scheme)
