"""Tests for the scenario service (repro.service).

Covers the framed protocol (version handshake, frame limits, typed
error replies), the coalescer contract (two clients' concurrent
queries on one fault set ride one wave, pinned via CacheInfo and the
``coalesced`` provenance), admission-control backpressure, ticket
isolation (one client's malformed stream cannot poison batch-mates),
disconnect resilience, graceful drain, and epoch pushes.
"""

import socket
import threading

import pytest

from repro import obs
from repro.exceptions import QueryError, ServiceError
from repro.graphs import generators
from repro.query import DistanceQuery, Session, VectorQuery
from repro.service import (
    AsyncServiceClient,
    BackgroundServer,
    ServiceClient,
)
from repro.service import protocol


def _wave_calls(info):
    return sum(count for _, count in info.wave_backends)


@pytest.fixture()
def served(er_medium):
    """A coalescing server over one shared delta-free session.

    ``delta=False`` so vector queries are served by waves and the
    wave-count assertions are exact; ``max_batch=2`` with a generous
    deadline so two concurrent single-query requests flush the moment
    both arrive (the deadline is only the straggler backstop).
    """
    backend = Session(er_medium, delta=False)
    with BackgroundServer(backend, max_batch=2,
                          max_delay=0.25) as server:
        yield server, backend


def _connect(server, **kwargs):
    return ServiceClient(*server.address, **kwargs)


def _concurrently(*calls):
    """Run one-call-per-thread behind a shared start barrier,
    re-raising the first failure; returns results in call order."""
    barrier = threading.Barrier(len(calls))
    results = [None] * len(calls)
    errors = []

    def run(i, call):
        try:
            barrier.wait()
            results[i] = call()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i, call))
               for i, call in enumerate(calls)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestProtocol:
    def test_version_mismatch_is_refused(self, served):
        server, _ = served
        sock = socket.create_connection(server.address)
        try:
            protocol.send_message(sock, {
                "type": "hello", "version": 999, "client": "relic",
            })
            reply = protocol.recv_message(sock)
        finally:
            sock.close()
        assert reply["type"] == "error" and reply["code"] == "version"
        with pytest.raises(ServiceError) as info:
            protocol.raise_error_reply(reply)
        assert info.value.code == "version"

    def test_client_constructor_surfaces_version_error(self, served,
                                                       monkeypatch):
        server, _ = served
        real = protocol.send_message

        def skewed_hello(sock, message,
                         max_frame=protocol.DEFAULT_MAX_FRAME):
            if message.get("type") == "hello":
                message = dict(message, version=999)
            return real(sock, message, max_frame)

        monkeypatch.setattr(protocol, "send_message", skewed_hello)
        # A mismatched client must raise at connect, not hang.
        with pytest.raises(ServiceError) as info:
            _connect(server)
        assert info.value.code == "version"

    def test_frame_limit_enforced_before_send(self):
        big = {"type": "blob", "payload": "x" * 4096}
        with pytest.raises(ServiceError) as info:
            protocol.encode_message(big, max_frame=64)
        assert info.value.code == "frame"

    def test_error_reply_reraises_typed_exceptions(self):
        reply = {"type": "error", "code": "query",
                 "exc_type": "QueryError", "message": "bad vertex"}
        with pytest.raises(QueryError, match="bad vertex"):
            protocol.raise_error_reply(reply)
        reply = {"type": "error", "code": "admission",
                 "message": "back off"}
        with pytest.raises(ServiceError, match="back off") as info:
            protocol.raise_error_reply(reply)
        assert info.value.code == "admission"


class TestRoundTrip:
    def test_answers_match_in_process_session(self, served, er_medium):
        server, _ = served
        e = next(iter(er_medium.edges()))
        queries = [DistanceQuery(0, er_medium.n - 1, (e,)),
                   VectorQuery(1, (e,))]
        with _connect(server, client="rt") as client:
            assert client.server == "scenario-service"
            assert client.tenants == ("default",)
            answers = client.answer(queries)
            assert client.stats.answers == 2
        reference = Session(er_medium, delta=False).answer(queries)
        assert [a.value for a in answers] == [
            a.value for a in reference]
        # provenance objects survive the wire intact
        assert answers[1].provenance.kernel == (
            reference[1].provenance.kernel)

    def test_submit_gather_dialect(self, served):
        server, _ = served
        with _connect(server) as client:
            client.submit(DistanceQuery(0, 5))
            client.submit([VectorQuery(1)])
            assert client.pending == 2
            answers = client.gather()
            assert client.pending == 0
            assert len(answers) == 2

    def test_async_client_round_trip(self, served, er_medium):
        import asyncio

        server, _ = served

        async def go():
            host, port = server.address
            async with await AsyncServiceClient.connect(
                    host, port, client="aio") as client:
                a = await client.answer_one(
                    DistanceQuery(0, er_medium.n - 1))
                return a.value

        expected = Session(er_medium).answer_one(
            DistanceQuery(0, er_medium.n - 1)).value
        assert asyncio.run(go()) == expected

    def test_closed_client_raises_typed(self, served):
        server, _ = served
        client = _connect(server)
        client.close()
        client.close()  # idempotent
        with pytest.raises(ServiceError) as info:
            client.answer([DistanceQuery(0, 1)])
        assert info.value.code == "closed"


class TestCoalescing:
    def test_two_clients_ride_one_wave(self, served, er_medium):
        server, backend = served
        e = next(iter(er_medium.edges()))
        waves_before = _wave_calls(backend.cache_info())
        with _connect(server, client="a") as a, \
                _connect(server, client="b") as b:
            got_a, got_b = _concurrently(
                lambda: a.answer([VectorQuery(0, (e,))]),
                lambda: b.answer([VectorQuery(1, (e,))]),
            )
            info = a.cache_info()
        # one micro-batch, one fault-set group, ONE masked wave for
        # both clients — the coalescing contract
        assert _wave_calls(info) - waves_before == 1
        for (answer,) in (got_a, got_b):
            assert answer.waved
            assert answer.provenance.wave_size == 2
            assert answer.provenance.coalesced == 2
        counters = server.server.counters()
        assert counters["batches"] == 1
        assert counters["coalesced_queries"] == 2
        # and the answers are the session's answers
        reference = Session(er_medium, delta=False)
        assert got_a[0].value == reference.answer_one(
            VectorQuery(0, (e,))).value
        assert got_b[0].value == reference.answer_one(
            VectorQuery(1, (e,))).value

    def test_malformed_ticket_cannot_poison_batch_mates(self, served,
                                                        er_medium):
        server, _ = served
        e = next(iter(er_medium.edges()))

        with _connect(server, client="good") as good, \
                _connect(server, client="bad") as bad:
            def innocent():
                return good.answer([VectorQuery(0, (e,))])

            def guilty():
                with pytest.raises(QueryError):
                    bad.answer([DistanceQuery(0, 10 ** 6, (e,))])
                return "raised"

            got, raised = _concurrently(innocent, guilty)
        assert raised == "raised"
        assert got[0].value is not None  # innocent answer survived


class TestTracing:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        obs.reset()
        yield
        obs.reset()

    def test_two_clients_two_roots_one_shared_wave_span(self, served,
                                                        er_medium):
        """The coalescing trace topology: each client gets its own
        root trace, the shared wave appears exactly once, parented to
        one of them and cross-linking the other via its ``traces``
        attribute."""
        obs.enable()
        server, _ = served
        e = next(iter(er_medium.edges()))
        with _connect(server, client="a") as a, \
                _connect(server, client="b") as b:
            _concurrently(
                lambda: a.answer([VectorQuery(0, (e,))]),
                lambda: b.answer([VectorQuery(1, (e,))]),
            )
        records = obs.span_records()
        roots = [r for r in records if r["name"] == "client.request"]
        assert len(roots) == 2
        root_traces = {r["trace_id"] for r in roots}
        assert len(root_traces) == 2  # distinct traces per client
        served_spans = [r for r in records
                        if r["name"] == "service.request"]
        assert len(served_spans) == 2
        root_ids = {r["span_id"]: r["trace_id"] for r in roots}
        for record in served_spans:
            # each server-side span continues its client's trace
            assert root_ids[record["parent_id"]] == record["trace_id"]
        wave, = [r for r in records if r["name"] == "coalescer.wave"]
        assert wave["attrs"]["tickets"] == 2
        assert wave["attrs"]["queries"] == 2
        # ONE wave span for both clients, parented into one trace and
        # naming every participating trace — the cross-client link
        assert wave["parent_id"] in {r["span_id"]
                                     for r in served_spans}
        assert set(wave["attrs"]["traces"]) == root_traces
        # downstream execution chains under the shared wave span
        plans = [r for r in records if r["name"] == "planner.execute"]
        assert any(p["parent_id"] == wave["span_id"] and
                   p["trace_id"] == wave["trace_id"] for p in plans)

    def test_traced_frame_enables_obs_on_the_server(self, served):
        """A traced client wakes a cold server's recorder (sticky
        enable), so operators can trace a live service on demand."""
        server, _ = served
        assert not obs.ENABLED
        with obs.span("off"):  # no-op while disabled
            pass
        obs.enable()  # client side on; server shares the process here
        with _connect(server, client="probe") as client:
            client.answer([DistanceQuery(0, 1)])
        names = {r["name"] for r in obs.span_records()}
        assert {"client.request", "service.request"} <= names

    def test_stats_reply_carries_obs_payload(self, served):
        obs.enable()
        server, _ = served
        with _connect(server, client="s") as client:
            client.answer([DistanceQuery(0, 1)])
            stats = client.server_stats()
        payload = stats["obs"]
        assert payload["enabled"] is True
        names = {r["name"] for r in payload["metrics"]}
        assert "repro_service_answers_total" in names
        assert any(s["name"] == "coalescer.wave"
                   for s in payload["spans"])

    def test_untraced_service_records_nothing(self, served):
        server, _ = served
        with _connect(server, client="quiet") as client:
            client.answer([DistanceQuery(0, 1)])
        assert obs.span_records() == []
        assert obs.snapshot() == []


class TestAdmissionControl:
    def test_overweight_request_is_refused(self, er_medium):
        backend = Session(er_medium)
        with BackgroundServer(backend,
                              max_inflight_client=3) as server:
            with _connect(server) as client:
                assert client.limits["max_inflight_client"] == 3
                with pytest.raises(ServiceError) as info:
                    client.answer([DistanceQuery(0, i)
                                   for i in range(1, 6)])
                assert info.value.code == "admission"
                # refusal queued nothing: a within-budget request
                # on the same connection is served normally
                answers = client.answer([DistanceQuery(0, 1)])
                assert len(answers) == 1
            counters = server.server.counters()
        assert counters["rejected"] == 1
        assert counters["inflight"] == 0

    def test_unknown_tenant_is_refused(self, served):
        server, _ = served
        with _connect(server, tenant="nobody") as client:
            with pytest.raises(ServiceError) as info:
                client.answer([DistanceQuery(0, 1)])
            assert info.value.code == "tenant"


class TestResilience:
    def test_disconnect_mid_stream_leaves_server_serving(self, served):
        server, _ = served
        rude = _connect(server, client="rude")
        rude.answer([DistanceQuery(0, 1)])
        rude._sock.close()  # vanish without a goodbye
        with _connect(server, client="polite") as polite:
            answers = polite.answer([DistanceQuery(0, 2)])
        assert len(answers) == 1

    def test_graceful_drain_finishes_then_refuses(self, served):
        server, _ = served
        client = _connect(server)
        answers = client.answer([DistanceQuery(0, 1),
                                 DistanceQuery(0, 2)])
        assert len(answers) == 2
        server.drain(timeout=30)
        # drained server refuses further work with a typed error
        # ("draining" in the drain window, "closed" once connections
        # are torn down — either way, typed, never a hang)
        with pytest.raises(ServiceError):
            client.answer([DistanceQuery(0, 3)])
        client.close()


class TestEpochPushes:
    def test_subscribe_and_bump(self, served):
        server, _ = served
        with _connect(server) as client:
            assert client.subscribe() == {"default": 0}
            assert server.bump_epoch() == 1
            assert client.poll_pushes(timeout=2.0) == {"default": 1}
            # pushes also piggyback on the next request/reply dialog
            server.bump_epoch()
            client.answer([DistanceQuery(0, 1)])
            assert client.epochs == {"default": 2}

    def test_unknown_tenant_bump_raises(self, served):
        server, _ = served
        with pytest.raises(ServiceError) as info:
            server.bump_epoch("nobody")
        assert info.value.code == "tenant"


class TestServedFleet:
    def test_fleet_backend_over_the_wire(self, grid4):
        from repro.fleet import FleetSession

        fleet = FleetSession(grid4, workers=2)
        try:
            with BackgroundServer(fleet) as server:
                with _connect(server) as client:
                    answers = client.answer(
                        [DistanceQuery(0, 15, [(0, 1)]),
                         DistanceQuery(0, 15, [(1, 2)])])
            assert [a.value for a in answers] == [6, 6]
            # per-worker attribution survives service + fleet hops
            assert any(a.provenance.worker for a in answers)
        finally:
            fleet.close()
