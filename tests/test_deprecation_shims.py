"""Every PR-4 engine shim must warn AND agree with the Session path.

The deprecated per-call batch surface (``replacement_distances``,
``evaluate_pairs``, ``run_pairs``, ``distance_vectors``,
``connectivity``) survives as thin ``DeprecationWarning`` shims over
the same kernels the planner uses.  These tests pin both halves of
that contract: each shim raises exactly one deprecation per call, and
its answers equal the typed-query stream through a fresh
:class:`~repro.query.session.Session` — so consumers migrating off
the shims can diff nothing but the call shape.
"""

from __future__ import annotations

import pytest

from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    Session,
    VectorQuery,
)
from repro.scenarios import ScenarioEngine, random_fault_sets


@pytest.fixture()
def er_with_scenarios(er_medium):
    scenarios = random_fault_sets(er_medium, 2, 8, seed=17)
    scenarios.append(())  # the fault-free scenario rides along
    return er_medium, scenarios


def test_replacement_distances_warns_and_matches(er_with_scenarios):
    g, scenarios = er_with_scenarios
    engine = ScenarioEngine(g)
    with pytest.warns(DeprecationWarning, match="replacement_distances"):
        shim = engine.replacement_distances(0, g.n - 1, scenarios)
    answers = Session(g).answer(
        DistanceQuery(0, g.n - 1, F) for F in scenarios
    )
    assert shim == [a.value for a in answers]


def test_evaluate_pairs_warns_and_matches(er_with_scenarios):
    g, scenarios = er_with_scenarios
    pairs = [(0, g.n - 1), (3, 7), (5, 5), (9, 1)]
    stream = [(s, t, F) for F in scenarios for s, t in pairs]
    engine = ScenarioEngine(g)
    with pytest.warns(DeprecationWarning, match="evaluate_pairs"):
        shim = engine.evaluate_pairs(stream)
    answers = Session(g).answer(
        DistanceQuery(s, t, F) for s, t, F in stream
    )
    assert shim == [a.value for a in answers]


def test_run_pairs_warns_and_matches(er_with_scenarios):
    g, scenarios = er_with_scenarios
    stream = [(0, g.n - 1, F) for F in scenarios]
    engine = ScenarioEngine(g)
    with pytest.warns(DeprecationWarning, match="run_pairs"):
        shim = engine.run_pairs(stream)
    answers = Session(g).answer(
        DistanceQuery(s, t, F) for s, t, F in stream
    )
    assert [r.index for r in shim] == list(range(len(stream)))
    assert [r.value for r in shim] == [
        (s, t, a.value) for (s, t, _), a in zip(stream, answers)
    ]
    assert [r.faults for r in shim] == [q.fault_key for q in (
        DistanceQuery(s, t, F) for s, t, F in stream
    )]


def test_distance_vectors_warns_and_matches(er_with_scenarios):
    g, scenarios = er_with_scenarios
    engine = ScenarioEngine(g)
    with pytest.warns(DeprecationWarning, match="distance_vectors"):
        shim = engine.distance_vectors(4, scenarios)
    answers = Session(g).answer(
        VectorQuery(4, F) for F in scenarios
    )
    assert shim == [a.value for a in answers]


def test_connectivity_warns_and_matches(er_with_scenarios):
    g, scenarios = er_with_scenarios
    engine = ScenarioEngine(g)
    with pytest.warns(DeprecationWarning, match="connectivity"):
        shim = engine.connectivity(scenarios)
    answers = Session(g).answer(
        ConnectivityQuery(F) for F in scenarios
    )
    assert shim == [a.value for a in answers]


def test_each_shim_warns_exactly_once_per_call(er_with_scenarios):
    g, scenarios = er_with_scenarios
    engine = ScenarioEngine(g)
    with pytest.warns(DeprecationWarning) as captured:
        engine.replacement_distances(0, 1, scenarios[:2])
    shim_warnings = [
        w for w in captured
        if "ScenarioEngine.replacement_distances" in str(w.message)
    ]
    assert len(shim_warnings) == 1
    # and the message routes readers at the replacement
    assert "Session" in str(shim_warnings[0].message)
