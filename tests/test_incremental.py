"""The incremental delta subsystem (repro.incremental).

The repair kernels' contract is *bit-identical* output to the full
masked kernels: hypothesis drives random graphs, multi-edge fault
sets and sources through both paths — unweighted, weighted, and
antisymmetric snapshots, including disconnecting faults — and the
engine/planner integration is checked for answer equality against a
delta-disabled engine, correct provenance, and honest counters.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.weights import AntisymmetricWeights
from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph, canonical_edge
from repro.incremental import (
    AffectedRegion,
    CostModel,
    affected_region,
    csr_bfs_repair,
    csr_dijkstra_repair,
)
from repro.query import DistanceQuery, Session, VectorQuery
from repro.scenarios import (
    ScenarioEngine,
    clustered_fault_sets,
    random_fault_sets,
)
from repro.spt.bfs import UNREACHABLE, bfs_distances, hop_distance
from repro.spt.fastpaths import (
    csr_bfs_distances,
    csr_weighted_distances,
)
from repro.weighted import WeightedGraph

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Suites taking the `backend` fixture (pinning the kernel-backend seam)
# also suppress the function-scoped-fixture health check: the pin is
# idempotent across hypothesis examples.
BACKEND_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


@st.composite
def delta_cases(draw, min_n=2, max_n=16, max_faults=4):
    """(graph, fault set, source) over random connected-ish graphs."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    g = Graph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    for _ in range(draw(st.integers(0, 2 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    edges = list(g.edges())
    k = draw(st.integers(0, min(max_faults, len(edges))))
    faults = tuple(sorted(rng.sample(edges, k)))
    source = draw(st.integers(0, n - 1))
    return g, faults, source


class TestRepairKernels:
    @given(delta_cases())
    @settings(max_examples=150, **BACKEND_COMMON)
    def test_bfs_repair_bit_identical(self, backend, case):
        g, faults, s = case
        engine = ScenarioEngine(g)
        index = engine.base_tree_index(s)
        orphans = index.orphaned_vertices(faults)
        csr = g.csr()
        mask = csr.without(faults)._as_csr()[1]
        base = csr_bfs_distances(csr, None, s)
        patched, changed = csr_bfs_repair(csr, mask, base, orphans)
        assert patched == csr_bfs_distances(csr, mask, s)
        assert changed == sorted(
            v for v in range(g.n) if patched[v] != base[v]
        )
        assert set(changed) <= set(orphans)

    @given(delta_cases())
    @settings(max_examples=80, **BACKEND_COMMON)
    def test_dijkstra_repair_bit_identical(self, backend, case):
        g, faults, s = case
        rng = random.Random(13)
        wg = WeightedGraph(g.n)
        for u, v in g.edges():
            wg.add_edge(u, v, rng.randint(1, 9))
        engine = ScenarioEngine(wg)
        orphans = engine.base_tree_index(s).orphaned_vertices(faults)
        csr = wg.csr()
        mask = csr.without(faults)._as_csr()[1]
        base = csr_weighted_distances(csr, None, s)
        patched, changed = csr_dijkstra_repair(csr, mask, base, orphans)
        assert patched == csr_weighted_distances(csr, mask, s)
        assert changed == sorted(
            v for v in range(g.n) if patched[v] != base[v]
        )

    @given(delta_cases())
    @settings(max_examples=60, **BACKEND_COMMON)
    def test_dijkstra_repair_antisymmetric(self, backend, case):
        """Seed arcs are read in the intact->orphan direction, so the
        tiebreaking perturbations (w(u, v) != w(v, u)) repair exactly."""
        g, faults, s = case
        atw = AntisymmetricWeights.random(g, f=1, seed=7)
        csr = g.csr().with_arc_weights(atw.weight)
        engine = ScenarioEngine(csr)
        orphans = engine.base_tree_index(s).orphaned_vertices(faults)
        mask = csr.without(faults)._as_csr()[1]
        base = csr_weighted_distances(csr, None, s)
        patched, _ = csr_dijkstra_repair(csr, mask, base, orphans)
        assert patched == csr_weighted_distances(csr, mask, s)

    def test_disconnecting_fault_patches_to_unreachable(self):
        # A path graph: cutting the last edge orphans exactly the far
        # endpoint, and no seed reaches it.
        g = generators.path(6)
        engine = ScenarioEngine(g)
        faults = ((4, 5),)
        orphans = engine.base_tree_index(0).orphaned_vertices(faults)
        assert orphans == [5]
        csr = g.csr()
        mask = csr.without(faults)._as_csr()[1]
        base = csr_bfs_distances(csr, None, 0)
        patched, changed = csr_bfs_repair(csr, mask, base, orphans)
        assert patched[5] == UNREACHABLE
        assert patched[:5] == base[:5]
        assert changed == [5]


class TestAffectedRegion:
    @given(delta_cases())
    @settings(max_examples=100, **COMMON)
    def test_orphans_complement_fault_free_vertices(self, case):
        g, faults, s = case
        index = ScenarioEngine(g).base_tree_index(s)
        orphans = index.orphaned_vertices(faults)
        assert index.orphan_estimate(faults) == len(orphans)
        assert len(set(orphans)) == len(orphans)
        free = index.fault_free_vertices(faults)
        reached = {v for v, d in
                   enumerate(bfs_distances(g, s)) if d >= 0}
        assert set(orphans) | free == reached
        assert not set(orphans) & free

    def test_cost_model_floor_and_ratio(self):
        model = CostModel(patch_ratio=0.25, min_orphans=8)
        assert model.patch_worthwhile(8, 10)  # floor wins on tiny graphs
        assert model.patch_worthwhile(25, 100)
        assert not model.patch_worthwhile(26, 100)

    def test_region_materialises_orphans_only_when_patching(self):
        g = generators.path(40)
        index = ScenarioEngine(g).base_tree_index(0)
        small = affected_region(index, g.n, 0, ((38, 39),))
        assert small.patch and small.orphans == (39,)
        assert len(small) == 1
        big = affected_region(index, g.n, 0, ((0, 1),))
        assert not big.patch and big.orphans is None
        assert big.estimate == 39
        assert isinstance(big, AffectedRegion)


class TestEngineDelta:
    @given(delta_cases())
    @settings(max_examples=60, **COMMON)
    def test_try_delta_matches_full_wave(self, case):
        g, faults, s = case
        engine = ScenarioEngine(g)
        engine.base_tree_index(s)  # pre-warm: cold origins decline
        vec = engine.try_delta(s, faults)
        ref = ScenarioEngine(g, delta=False).source_vector(s, faults)
        if vec is not None:
            assert vec == ref
            # the empty fault set is served straight from the base
            # vector, uncounted like every fault-free path
            assert engine.delta_hits == (1 if faults else 0)
            assert engine.delta_fallbacks == 0
        else:
            assert engine.delta_fallbacks == 1
            # the fallback verdict cost only interval arithmetic; the
            # wave path still serves the same answer
            assert engine.source_vector(s, faults) == ref

    def test_cold_origin_warms_up_on_repeat(self):
        g = generators.path(30)
        engine = ScenarioEngine(g)
        faults = ((27, 28),)  # patch regime once warm
        # first faulted query per source rides the wave (a counted
        # fallback): building the tree costs as much as the wave
        assert engine.try_delta(0, faults) is None
        assert engine.delta_fallbacks == 1 and not engine._delta_index
        # the repeat warms the substrate and patches
        vec = engine.try_delta(0, faults)
        assert vec is not None and engine.delta_hits == 1
        assert vec == ScenarioEngine(g, delta=False).source_vector(
            0, faults)

    def test_large_cold_batch_keeps_the_shared_wave(self):
        # One fault set, many cold sources: PR 3's single bit-packed
        # wave must survive — no per-source tree builds.
        g = generators.torus(6, 6)
        engine = ScenarioEngine(g)
        sources = list(range(g.n))
        faults = ((0, 1),)
        rows = engine.source_vectors(sources, faults)
        assert not engine._delta_index  # nothing was cold-built
        ref = ScenarioEngine(g, delta=False)
        assert rows == ref.source_vectors(sources, faults)

    def test_counters_and_cache_interplay(self):
        g = generators.path(30)
        engine = ScenarioEngine(g)
        engine.base_tree_index(0)  # pre-warm
        faults = ((27, 28),)  # orphans {28, 29}: patch regime
        vec = engine.try_delta(0, faults)
        assert vec is not None and engine.delta_hits == 1
        # the patched vector landed in the shared LRU vector cache
        assert engine.peek_vector(0, faults) is vec
        info = engine.cache_info()
        assert info.delta_hits == 1 and info["delta_fallbacks"] == 0
        assert "delta_hits" in dict(info)
        assert "delta=1h/0f" in repr(engine)
        # a root-adjacent fault orphans nearly everything: fallback
        assert engine.try_delta(0, ((0, 1),)) is None
        assert engine.cache_info().delta_fallbacks == 1

    def test_disabled_engine_never_patches(self):
        g = generators.path(30)
        engine = ScenarioEngine(g, delta=False)
        assert engine.try_delta(0, ((27, 28),)) is None
        assert engine.delta_hits == engine.delta_fallbacks == 0

    def test_engine_streams_equal_with_and_without_delta(self, er_medium):
        g = er_medium
        scenarios = (random_fault_sets(g, 2, 6, seed=3)
                     + clustered_fault_sets(g, 3, 6, seed=4))
        on, off = ScenarioEngine(g), ScenarioEngine(g, delta=False)
        for F in scenarios:
            assert on.source_vectors([0, 5, 9], F) == \
                off.source_vectors([0, 5, 9], F)
            assert on.pair_replacement_distance(3, g.n - 1, F) == \
                off.pair_replacement_distance(3, g.n - 1, F)
        assert on.delta_hits + on.delta_fallbacks > 0

    def test_adopt_base_tree_validates(self, grid4, grid_scheme):
        engine = ScenarioEngine(grid4)
        tree = grid_scheme.tree(0)
        engine.adopt_base_tree(0, tree)  # a genuine SPT adopts fine
        assert engine.base_tree_index(0).tree is tree
        with pytest.raises(GraphError, match="rooted"):
            engine.adopt_base_tree(5, tree)
        # a tree of the wrong graph is rejected, not silently patched
        other = generators.path(16)
        bad = ScenarioEngine(other).base_tree_index(0).tree
        with pytest.raises(GraphError):
            engine.adopt_base_tree(0, bad)

    def test_adopted_tree_serves_exact_deltas(self, grid4, grid_scheme):
        engine = ScenarioEngine(grid4)
        tree = grid_scheme.tree(0)
        engine.adopt_base_tree(0, tree)
        for e in tree.edges():
            vec = engine.try_delta(0, (e,))
            ref = bfs_distances(grid4.without([e]), 0)
            if vec is not None:
                assert vec == ref


class TestSessionDeltaProvenance:
    def test_delta_provenance_and_equality(self):
        g = generators.path(60)
        deep = ((57, 58),)
        on, off = Session(g), Session(g, delta=False)
        on.engine.base_tree_index(0)  # pre-warm past the cold decline
        q = [VectorQuery(0, deep), DistanceQuery(0, 59, deep)]
        a_on, a_off = on.answer(q), off.answer(q)
        assert [a.value for a in a_on] == [a.value for a in a_off]
        assert all(a.patched for a in a_on)
        assert all(a.provenance.source == "delta" for a in a_on)
        assert a_on[0].provenance.kernel == "csr_bfs_repair"
        assert on.stats.delta == 2 and on.stats.wave == 0
        assert off.stats.delta == 0 and off.stats.wave == 2
        assert "2d" in repr(on)

    def test_fallback_group_still_waves(self):
        g = generators.path(60)
        session = Session(g)
        a = session.answer_one(VectorQuery(0, ((0, 1),)))
        assert a.waved and not a.patched
        assert session.engine.delta_fallbacks == 1

    def test_mixed_stream_equal_answers(self, er_medium):
        g = er_medium
        scenarios = (clustered_fault_sets(g, 2, 5, seed=8)
                     + random_fault_sets(g, 1, 5, seed=9))
        stream = []
        for F in scenarios:
            stream.append(DistanceQuery(0, g.n - 1, F))
            stream.append(VectorQuery(3, F))
        on, off = Session(g), Session(g, delta=False)
        assert [a.value for a in on.answer(stream)] == \
            [a.value for a in off.answer(stream)]


class TestClusteredFaultSets:
    def test_seeded_and_canonical(self, er_medium):
        g = er_medium
        a = clustered_fault_sets(g, 3, 10, seed=5)
        b = clustered_fault_sets(g, 3, 10, seed=5)
        assert a == b and len(a) == 10
        edges = set(g.edges())
        for F in a:
            assert len(F) <= 3 and len(set(F)) == len(F)
            assert all(e in edges for e in F)
            assert all(e == canonical_edge(*e) for e in F)
        assert a != clustered_fault_sets(g, 3, 10, seed=6)

    def test_faults_stay_inside_one_ball(self):
        # On a torus every radius-2 ball holds plenty of edges, so the
        # radius never grows: all endpoints of one scenario are
        # pairwise within 2 * radius hops.
        g = generators.torus(6, 6)
        for F in clustered_fault_sets(g, 3, 12, radius=2, seed=1):
            endpoints = {v for e in F for v in e}
            assert all(
                hop_distance(g, u, v) <= 4
                for u in endpoints for v in endpoints
            )

    def test_ball_grows_until_enough_edges(self):
        # A long path with radius 0: the ball must grow to find edges.
        g = generators.path(20)
        for F in clustered_fault_sets(g, 2, 8, radius=0, seed=2):
            assert len(F) == 2

    def test_edge_cases(self):
        empty = Graph(0)
        assert clustered_fault_sets(empty, 2, 3, seed=0) == [(), (), ()]
        isolated = Graph(3)  # no edges at all
        assert clustered_fault_sets(isolated, 2, 2, seed=0) == [(), ()]
        with pytest.raises(GraphError):
            clustered_fault_sets(empty, -1, 1)
        with pytest.raises(GraphError):
            clustered_fault_sets(empty, 1, -1)
        with pytest.raises(GraphError):
            clustered_fault_sets(empty, 1, 1, radius=-1)


class TestDSODeltaIntegration:
    def test_preprocessing_reports_delta_and_answers_match(self, er_small):
        from repro.oracles.dso import SourcewiseDSO

        g = er_small
        dso = SourcewiseDSO(g, sources=[0, 3])
        prov = dso.preprocessing_provenance
        assert sum(prov.values()) == dso.preprocessed_edges
        assert prov.get("delta", 0) > 0  # tree-edge faults: sweet spot
        # spot-check oracle answers against a fresh BFS
        tree = dso.scheme.tree(0)
        e = next(iter(tree.edges()))
        ref = bfs_distances(g.without([e]), 0)
        for v in range(g.n):
            assert dso.query(0, v, e) == ref[v]
