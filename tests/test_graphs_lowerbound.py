"""Tests for the Appendix-B lower-bound constructions (Theorem 27)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.lowerbound import (
    build_gf,
    build_lower_bound_instance,
    build_multi_source_instance,
    forced_preserver_edges,
    theoretical_lower_bound,
)
from repro.spt.bfs import UNREACHABLE, bfs_distances


class TestGfGadget:
    def test_g1_shape(self):
        graph, gadget = build_gf(1, 4)
        # spine d + sum_{i} (d - i + 1) extra path vertices
        assert len(gadget.spine) == 4
        assert len(gadget.leaves) == 4
        assert graph.n == 4 + (4 + 3 + 2 + 1)
        assert gadget.root == gadget.spine[0]

    def test_g1_leaf_depth_equal(self):
        graph, gadget = build_gf(1, 5)
        dist = bfs_distances(graph, gadget.root)
        depths = {dist[z] for z in gadget.leaves}
        assert depths == {gadget.depth} == {5}

    def test_g1_labels_lemma38(self):
        graph, gadget = build_gf(1, 4)
        dist0 = bfs_distances(graph, gadget.root)
        for i, leaf in enumerate(gadget.leaves, start=1):
            label = gadget.labels[leaf]
            view = graph.without(label)
            dist = bfs_distances(view, gadget.root)
            # (2): the labelled leaf's path survives at equal length
            assert dist[leaf] == dist0[leaf]
            # (3): every leaf to the right is disconnected
            for right in gadget.leaves[i:]:
                assert dist[right] == UNREACHABLE

    def test_g2_recursive_structure(self):
        graph, gadget = build_gf(2, 4)
        # d copies of G_1(2), each contributing 2 leaves
        assert len(gadget.leaves) == 4 * 2
        assert all(len(gadget.labels[z]) <= 2 for z in gadget.leaves)
        dist = bfs_distances(graph, gadget.root)
        assert len({dist[z] for z in gadget.leaves}) == 1  # Lemma 38(4)

    def test_g2_labels_keep_own_leaf(self):
        graph, gadget = build_gf(2, 4)
        dist0 = bfs_distances(graph, gadget.root)
        for leaf in gadget.leaves:
            view = graph.without(gadget.labels[leaf])
            assert bfs_distances(view, gadget.root)[leaf] == dist0[leaf]

    def test_unique_root_leaf_paths(self):
        # Lemma 38(1): G_f(d) is a tree, so paths are unique.
        graph, gadget = build_gf(2, 4)
        assert graph.m == graph.n - 1
        assert graph.is_connected()

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            build_gf(0, 3)
        with pytest.raises(GraphError):
            build_gf(1, 0)


class TestLowerBoundInstance:
    def test_vertex_budget(self):
        inst = build_lower_bound_instance(150, 1)
        assert inst.n >= 150  # gadget + X, at least the budget
        assert len(inst.x_vertices) >= 1

    def test_adversarial_scheme_unique_paths(self):
        inst = build_lower_bound_instance(80, 1)
        from repro.spt.dijkstra import count_min_weight_paths

        counts = count_min_weight_paths(
            inst.graph, inst.sources[0], inst.scheme.weight
        )
        assert all(c == 1 for c in counts.values())

    def test_forced_edges_include_bipartite_block(self):
        inst = build_lower_bound_instance(120, 1)
        forced = forced_preserver_edges(inst)
        gadget = inst.gadgets[0]
        num_leaves = len(gadget.leaves)
        # every leaf with a nonempty label forces its full X-star
        expected_bipartite = (num_leaves - 1) * len(inst.x_vertices)
        bipartite_forced = forced & set(inst.bipartite_edges)
        assert len(bipartite_forced) >= expected_bipartite

    def test_forced_replacement_last_edge_is_labelled_leaf(self):
        # The heart of Theorem 27: under Label(z_j), the replacement
        # path to each x in X arrives through z_j itself.
        inst = build_lower_bound_instance(100, 1)
        gadget = inst.gadgets[0]
        source = inst.sources[0]
        for j, leaf in enumerate(gadget.leaves[:-1], start=1):
            label = gadget.labels[leaf]
            tree = inst.scheme.tree(source, label)
            for x in inst.x_vertices[:5]:
                path = tree.path_to(x)
                assert path[-2] == leaf

    def test_f2_instance(self):
        inst = build_lower_bound_instance(200, 2)
        forced = forced_preserver_edges(inst)
        assert len(forced) > 0
        assert inst.f == 2

    def test_multi_source(self):
        inst = build_multi_source_instance(150, 1, sigma=3)
        assert len(inst.sources) == 3
        assert len(inst.all_labels()) == sum(
            len(g.leaves) for g in inst.gadgets
        )
        forced = forced_preserver_edges(inst)
        assert len(forced) > len(inst.x_vertices)

    def test_theoretical_bound_monotone(self):
        assert theoretical_lower_bound(200, 1) > theoretical_lower_bound(100, 1)
        assert theoretical_lower_bound(100, 1, sigma=4) > \
            theoretical_lower_bound(100, 1, sigma=1)

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            build_lower_bound_instance(100, 0)
        with pytest.raises(GraphError):
            build_multi_source_instance(100, 1, sigma=0)


class TestAdversarialSchemeProperties:
    """The bad scheme must be consistent, stable, and symmetric —
    that is exactly what makes Theorem 27 bite."""

    @pytest.fixture(scope="class")
    def inst(self):
        return build_lower_bound_instance(60, 1)

    def test_consistent(self, inst):
        from repro.core.properties import is_consistent

        pairs = [
            (inst.sources[0], x) for x in inst.x_vertices[:3]
        ] + [(inst.x_vertices[0], inst.sources[0])]
        assert is_consistent(inst.scheme, pairs=pairs)

    def test_symmetric(self, inst):
        from repro.core.properties import is_symmetric

        pairs = [(inst.sources[0], x) for x in inst.x_vertices[:4]]
        assert is_symmetric(inst.scheme, pairs=pairs)

    def test_stable(self, inst):
        from repro.core.properties import stability_violations

        pairs = [(inst.sources[0], inst.x_vertices[0])]
        some_edges = list(inst.graph.edges())[:40]
        assert not stability_violations(
            inst.scheme, pairs=pairs, extra_edges=some_edges
        )
