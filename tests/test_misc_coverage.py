"""Edge-case tests for smaller surfaces not covered elsewhere."""

import pytest

from repro.exceptions import CongestError, GraphError
from repro.graphs import generators
from repro.graphs.base import Graph


class TestPreserverHelpers:
    def test_density_vs(self):
        from repro.preservers import ft_ss_preserver

        g = generators.cycle(6)
        p = ft_ss_preserver(g, [0, 3], faults_tolerated=1, seed=1)
        assert p.density_vs(2 * p.size) == 0.5
        assert p.density_vs(0) == float("inf")

    def test_empty_source_set(self):
        from repro.core.scheme import RestorableTiebreaking
        from repro.preservers import ft_sv_preserver

        g = generators.cycle(5)
        scheme = RestorableTiebreaking.build(g, seed=0)
        p = ft_sv_preserver(scheme, [], f=1)
        assert p.size == 0


class TestSimulatorEdgeCases:
    def test_max_rounds_cutoff(self):
        from repro.distributed.congest import (
            CongestSimulator,
            NodeAlgorithm,
        )

        class Forever(NodeAlgorithm):
            def on_start(self, node):
                node.wake_next_round()

            def on_round(self, node, inbox):
                node.wake_next_round()

        g = generators.path(2)
        sim = CongestSimulator(g)
        stats = sim.run({0: Forever(), 1: NodeAlgorithm()}, max_rounds=7)
        assert stats.rounds == 7

    def test_runstats_defaults(self):
        from repro.distributed.congest import RunStats

        stats = RunStats()
        assert stats.rounds == 0
        assert stats.max_queue_delay == 0


class TestSchemeEdgeCases:
    def test_single_vertex_graph(self):
        from repro.core.scheme import RestorableTiebreaking
        from repro.spt.paths import Path

        g = Graph(1)
        scheme = RestorableTiebreaking.build(g, seed=0)
        assert scheme.path(0, 0) == Path.trivial(0)

    def test_disconnected_graph_scheme(self):
        from repro.core.scheme import RestorableTiebreaking

        g = Graph(4, [(0, 1), (2, 3)])
        scheme = RestorableTiebreaking.build(g, seed=1)
        assert scheme.path(0, 3) is None
        assert scheme.path(0, 1) is not None

    def test_weighted_scheme_repr(self):
        from repro.core.scheme import RestorableTiebreaking

        g = generators.cycle(4)
        scheme = RestorableTiebreaking.build(g, seed=0)
        assert "restorable" in repr(scheme)


class TestLowerBoundEdgeCases:
    def test_tiny_instance(self):
        from repro.graphs.lowerbound import build_lower_bound_instance

        inst = build_lower_bound_instance(20, 1)
        assert inst.n >= 20
        assert inst.graph.is_connected()

    def test_gadget_depth_property(self):
        from repro.graphs.lowerbound import build_gf
        from repro.spt.bfs import bfs_distances

        for f, d in ((1, 3), (2, 4), (3, 4)):
            graph, gadget = build_gf(f, d)
            dist = bfs_distances(graph, gadget.root)
            assert all(dist[z] == gadget.depth for z in gadget.leaves)


class TestSpannerEdgeCases:
    def test_sigma_one(self):
        from repro.spanners import ft_plus4_spanner, verify_spanner

        g = generators.connected_erdos_renyi(12, 0.3, seed=2)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, sigma=1, seed=1)
        # one center: almost nothing clusters; the spanner ~= the graph
        assert verify_spanner(g, spanner.edges, f=1)

    def test_sigma_equals_n(self):
        from repro.spanners import ft_plus4_spanner

        g = generators.cycle(8)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, sigma=8, seed=1)
        assert spanner.size <= g.m


class TestDistributedSpannerNode:
    def test_cluster_node_unit(self):
        from repro.distributed.congest import CongestSimulator
        from repro.distributed.spanner import ClusterNode

        g = generators.star(6)  # centre 0, leaves 1..5
        nodes = {
            v: ClusterNode(v, is_center=(v in {1, 2, 3}), f=1)
            for v in g.vertices()
        }
        sim = CongestSimulator(g)
        sim.run(nodes)
        # the hub sees 3 center neighbours >= f+1 = 2: clustered
        assert nodes[0].clustered
        assert len(nodes[0].kept_edges) == 2
        # leaves see at most the hub (not a center): unclustered
        assert not nodes[4].clustered
        assert nodes[4].kept_edges == {(0, 4)}


class TestWeightedViewEdgeCases:
    def test_view_vertices_passthrough(self):
        from repro.weighted import WeightedGraph

        wg = WeightedGraph(3, [(0, 1, 2), (1, 2, 2)])
        view = wg.without([(0, 1)])
        assert view.n == 3
        assert list(view.vertices()) == [0, 1, 2]
        assert view.has_vertex(2)
        assert sorted(view.arcs()) == [(1, 2), (2, 1)]
        assert view.sorted_neighbors(1) == [2]

    def test_add_vertex(self):
        from repro.weighted import WeightedGraph

        wg = WeightedGraph(1)
        v = wg.add_vertex()
        wg.add_edge(0, v, 3)
        assert wg.m == 1


class TestDagTiebreakingEdgeCases:
    def test_unreachable_pair(self):
        from repro.dag import DagTiebreaking, DirectedGraph

        dag = DirectedGraph(3, [(0, 1)])
        scheme = DagTiebreaking(dag, seed=0)
        assert scheme.path(0, 2) is None
        assert scheme.hop_distance(0, 2) is None
        assert scheme.backward_path(2, 1) is None

    def test_direction_matters(self):
        from repro.dag import DagTiebreaking
        from repro.dag.generators import path_dag

        scheme = DagTiebreaking(path_dag(4), seed=0)
        assert scheme.path(0, 3) is not None
        assert scheme.path(3, 0) is None
