"""CSRGraph/CSRFaultView structure tests + PR-1 bugfix regressions."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.base import Graph
from repro.graphs.csr import CSRGraph, CSRFaultView, as_csr
from repro.graphs.views import FaultView, GraphLike
from repro.graphs import generators
from repro.spt.bfs import bfs_distances, hop_distance


@pytest.fixture
def house():
    # 0-1-2 triangle with a 2-3-4 tail.
    return Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])


# ----------------------------------------------------------------------
# CSRGraph snapshot
# ----------------------------------------------------------------------
class TestCSRGraph:
    def test_mirrors_base_graph(self, house):
        snap = CSRGraph.from_graph(house)
        assert (snap.n, snap.m) == (house.n, house.m)
        assert list(snap.edges()) == sorted(house.edges())
        assert sorted(snap.arcs()) == sorted(house.arcs())
        for v in house.vertices():
            assert snap.sorted_neighbors(v) == house.sorted_neighbors(v)
            assert snap.degree(v) == house.degree(v)
            assert snap.neighbors(v) == tuple(house.sorted_neighbors(v))
        for u in house.vertices():
            for v in house.vertices():
                assert snap.has_edge(u, v) == house.has_edge(u, v)

    def test_satisfies_graphlike(self, house):
        assert isinstance(CSRGraph.from_graph(house), GraphLike)
        assert isinstance(CSRGraph.from_graph(house).without([(0, 1)]),
                          GraphLike)

    def test_rows_are_sorted(self):
        g = generators.connected_erdos_renyi(40, 0.2, seed=3)
        snap = CSRGraph.from_graph(g)
        for v in g.vertices():
            row = snap.sorted_neighbors(v)
            assert row == sorted(row)

    def test_vertex_validation(self, house):
        snap = CSRGraph.from_graph(house)
        for bad in (-1, 5, "x"):
            with pytest.raises(GraphError):
                snap.neighbors(bad)

    def test_is_connected(self, house):
        snap = CSRGraph.from_graph(house)
        assert snap.is_connected()
        assert not snap.without([(3, 4)]).is_connected()
        assert snap.without([(0, 1)]).is_connected()

    def test_graph_csr_cache_invalidates_on_mutation(self, house):
        first = house.csr()
        assert house.csr() is first  # cached while unchanged
        house.add_edge(0, 3)
        second = house.csr()
        assert second is not first
        assert second.has_edge(0, 3) and not first.has_edge(0, 3)
        house.add_vertex()
        assert house.csr().n == house.n

    def test_as_csr_dispatch(self, house):
        assert as_csr(house) is None
        assert as_csr(house.without([(0, 1)])) is None
        snap, mask = as_csr(house.csr())
        assert snap is house.csr() and mask is None
        view = house.csr().without([(0, 1)])
        snap, mask = as_csr(view)
        assert mask is not None and sum(mask) == len(snap.indices) - 2


# ----------------------------------------------------------------------
# CSRFaultView masking
# ----------------------------------------------------------------------
class TestCSRFaultView:
    def test_matches_reference_fault_view(self, house):
        faults = [(1, 0), (3, 2)]
        fast = house.csr().without(faults)
        ref = house.without(faults)
        assert (fast.n, fast.m) == (ref.n, ref.m)
        assert list(fast.edges()) == list(ref.edges())
        for v in house.vertices():
            assert fast.sorted_neighbors(v) == ref.sorted_neighbors(v)
            assert fast.degree(v) == ref.degree(v)
        for u in house.vertices():
            for v in house.vertices():
                assert fast.has_edge(u, v) == ref.has_edge(u, v)

    def test_absent_faults_ignored(self, house):
        view = house.csr().without([(0, 4), (1, 3)])
        assert view.m == house.m
        assert list(view.edges()) == sorted(house.edges())

    def test_compose_without_flattens(self, house):
        view = house.csr().without([(0, 1)]).without([(2, 3)])
        assert view.base is house.csr()
        assert view.faults == frozenset({(0, 1), (2, 3)})
        assert view.m == house.m - 2

    def test_isolated_after_masking(self, house):
        view = house.csr().without([(3, 4), (2, 3)])
        assert view.neighbors(3) == ()
        assert view.degree(3) == 0


# ----------------------------------------------------------------------
# satellite bugfix regressions
# ----------------------------------------------------------------------
class TestHopDistanceValidation:
    """hop_distance silently accepted bad sources (negative indexing)."""

    @pytest.mark.parametrize("source", [-1, -3, 7, 100])
    def test_bad_source_raises(self, house, source):
        with pytest.raises(GraphError):
            hop_distance(house, source, 0)

    @pytest.mark.parametrize("target", [-1, 7])
    def test_bad_target_raises(self, house, target):
        with pytest.raises(GraphError):
            hop_distance(house, 0, target)

    def test_bad_source_raises_on_views_and_csr(self, house):
        for g in (house.without([(0, 1)]), house.csr(),
                  house.csr().without([(0, 1)])):
            with pytest.raises(GraphError):
                hop_distance(g, -1, 0)
            with pytest.raises(GraphError):
                hop_distance(g, 0, house.n)

    def test_negative_source_does_not_corrupt_result(self, house):
        # The old bug: dist[-1] = 0 wrote to the *last* vertex, so
        # hop_distance(g, -1, v) could "succeed" with a bogus value.
        with pytest.raises(GraphError):
            hop_distance(house, -1, 4)
        # ... and the graph still answers correctly afterwards.
        assert hop_distance(house, 0, 4) == 3


class TestFaultViewM:
    """FaultView.m rescanned the fault set on every access."""

    def test_m_correct_and_stable(self, house):
        view = FaultView(house, [(0, 1), (2, 3), (0, 4)])  # (0,4) absent
        assert view.m == house.m - 2
        assert view.m == view.m  # repeated access, same answer

    def test_m_computed_once_at_init(self, house, monkeypatch):
        view = house.without([(0, 1)])
        calls = []
        original = Graph.has_edge

        def spy(self, u, v):
            calls.append((u, v))
            return original(self, u, v)

        monkeypatch.setattr(Graph, "has_edge", spy)
        for _ in range(100):
            assert view.m == house.m - 1
        assert calls == []  # no per-access rescans of the fault set


class TestNeighborsSnapshot:
    """Graph.neighbors returned a live set iterator; mutation raised."""

    def test_add_edge_inside_loop_regression(self):
        g = Graph(6, [(0, 1), (0, 2), (0, 3)])
        # Old behaviour: RuntimeError: Set changed size during iteration.
        for v in g.neighbors(0):
            g.add_edge(0, 4)
            g.add_edge(0, 5)
        assert g.degree(0) == 5

    def test_snapshot_is_detached(self, house):
        snap = house.neighbors(0)
        house.add_edge(0, 4)
        assert 4 not in snap
        assert 4 in house.neighbors(0)

    def test_bfs_still_correct_after_change(self, house):
        # The tuple snapshot must not change traversal semantics.
        assert bfs_distances(house, 0) == [0, 1, 1, 2, 3]
