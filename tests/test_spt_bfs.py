"""Unit tests for BFS primitives, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.spt.bfs import (
    UNREACHABLE,
    bfs_distances,
    bfs_layers,
    bfs_tree,
    hop_distance,
)


class TestBfsDistances:
    def test_path_graph(self):
        g = generators.path(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]
        assert bfs_distances(g, 2) == [2, 1, 0, 1, 2]

    def test_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distances(g, 0) == [0, 1, UNREACHABLE]

    def test_unknown_source(self):
        with pytest.raises(GraphError):
            bfs_distances(Graph(2), 5)

    def test_matches_networkx(self):
        g = generators.connected_erdos_renyi(40, 0.08, seed=9)
        nxg = g.to_networkx()
        for s in (0, 17, 39):
            ours = bfs_distances(g, s)
            theirs = nx.single_source_shortest_path_length(nxg, s)
            assert all(ours[v] == theirs[v] for v in g.vertices())

    def test_under_faults(self):
        g = generators.cycle(6)
        dist = bfs_distances(g.without([(0, 1)]), 0)
        assert dist[1] == 5  # forced the long way round


class TestBfsTree:
    def test_parent_of_source_is_none(self):
        g = generators.grid(3, 3)
        parent = bfs_tree(g, 4)
        assert parent[4] is None

    def test_deterministic_lexicographic(self):
        g = generators.complete(4)
        parent = bfs_tree(g, 2)
        assert all(parent[v] == 2 for v in (0, 1, 3))

    def test_tree_respects_layers(self):
        g = generators.connected_erdos_renyi(30, 0.1, seed=5)
        dist = bfs_distances(g, 0)
        parent = bfs_tree(g, 0)
        for v, p in parent.items():
            if p is not None:
                assert dist[v] == dist[p] + 1

    def test_unreached_absent(self):
        g = Graph(3, [(0, 1)])
        assert 2 not in bfs_tree(g, 0)


class TestLayersAndPairs:
    def test_layers_partition(self):
        g = generators.grid(3, 3)
        layers = bfs_layers(g, 0)
        assert layers[0] == [0]
        assert sorted(sum(layers, [])) == list(range(9))
        for d, layer in enumerate(layers):
            for v in layer:
                assert bfs_distances(g, 0)[v] == d

    def test_hop_distance_early_exit(self):
        g = generators.path(6)
        assert hop_distance(g, 0, 5) == 5
        assert hop_distance(g, 3, 3) == 0

    def test_hop_distance_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert hop_distance(g, 0, 2) == UNREACHABLE

    def test_hop_distance_unknown_target(self):
        with pytest.raises(GraphError):
            hop_distance(Graph(2, [(0, 1)]), 0, 9)
