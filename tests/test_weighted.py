"""Tests for the weighted-graph extension (Theorem 11, base sets)."""

import pytest

from repro.exceptions import DisconnectedError, GraphError
from repro.graphs import generators
from repro.spt.apsp import replacement_distance
from repro.spt.dijkstra import dijkstra
from repro.weighted import (
    BaseSet,
    WeightedGraph,
    restore_via_middle_edge,
    weighted_restoration_lemma_holds,
)


class TestWeightedGraph:
    def test_construction(self):
        wg = WeightedGraph(3, [(0, 1, 5), (1, 2, 3)])
        assert wg.n == 3 and wg.m == 2
        assert wg.weight(0, 1) == 5
        assert wg.weight(1, 0) == 5  # symmetric
        assert wg.total_weight() == 8

    def test_invalid_weight(self):
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 1, 0)])

    def test_readd_same_weight_idempotent(self):
        wg = WeightedGraph(3, [(0, 1, 5)])
        assert wg.add_edge(1, 0, 5) == (0, 1)  # either orientation
        assert wg.m == 1 and wg.weight(0, 1) == 5

    def test_readd_conflicting_weight_rejected(self):
        # regression: this used to silently overwrite the weight
        wg = WeightedGraph(3, [(0, 1, 5)])
        with pytest.raises(GraphError):
            wg.add_edge(0, 1, 7)
        with pytest.raises(GraphError):
            wg.add_edge(1, 0, 7)
        assert wg.weight(0, 1) == 5

    def test_csr_cached_and_invalidated(self):
        wg = WeightedGraph(4, [(0, 1, 5), (1, 2, 3)])
        snap = wg.csr()
        assert snap is wg.csr()  # cached while (n, m) is unchanged
        assert snap.arc_weight(0, 1) == 5 == snap.arc_weight(1, 0)
        wg.add_edge(2, 3, 9)
        fresh = wg.csr()
        assert fresh is not snap
        assert fresh.arc_weight(2, 3) == 9
        assert not snap.has_edge(2, 3)  # old snapshot is immutable

    def test_missing_edge_weight(self):
        wg = WeightedGraph(3, [(0, 1, 1)])
        with pytest.raises(GraphError):
            wg.weight(0, 2)

    def test_from_unit_graph(self):
        g = generators.cycle(5)
        wg = WeightedGraph.from_unit_graph(g)
        assert wg.m == 5
        assert all(wg.weight(u, v) == 1 for u, v in wg.edges())

    def test_random_connected(self):
        wg = WeightedGraph.random(20, 0.15, seed=3)
        assert wg.unit_graph().is_connected()
        assert all(1 <= wg.weight(u, v) <= 20 for u, v in wg.edges())

    def test_path_weight(self):
        from repro.spt.paths import Path

        wg = WeightedGraph(3, [(0, 1, 5), (1, 2, 3)])
        assert wg.path_weight(Path([0, 1, 2])) == 8

    def test_view_removes_edge(self):
        wg = WeightedGraph(3, [(0, 1, 5), (1, 2, 3), (0, 2, 9)])
        view = wg.without([(0, 1)])
        assert not view.has_edge(0, 1)
        assert view.weight(0, 2) == 9
        with pytest.raises(GraphError):
            view.weight(0, 1)

    def test_dijkstra_on_weighted(self):
        wg = WeightedGraph(4, [(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 1)])
        dist, _ = dijkstra(wg, 0, wg.arc_weight)
        assert dist[2] == 2  # through 1, not the weight-5 edge
        assert dist[3] == 3

    def test_perturbed_weights_unique_and_faithful(self):
        wg = WeightedGraph.random(15, 0.25, seed=5)
        arc_weight, scale = wg.perturbed_weight(seed=2)
        from repro.spt.dijkstra import count_min_weight_paths

        counts = count_min_weight_paths(wg, 0, arc_weight)
        assert all(c == 1 for c in counts.values())
        # perturbed distances round to true weighted distances
        true_dist, _ = dijkstra(wg, 0, wg.arc_weight)
        pert_dist, _ = dijkstra(wg, 0, arc_weight)
        for v, d in pert_dist.items():
            assert (d + scale // 2) // scale == true_dist[v]


class TestWeightedRestorationLemma:
    def test_holds_on_random_weighted_graphs(self):
        for seed in range(3):
            wg = WeightedGraph.random(14, 0.25, seed=seed)
            for e in list(wg.edges())[:8]:
                for s, t in ((0, 13), (3, 9)):
                    assert weighted_restoration_lemma_holds(wg, s, t, e)

    def test_holds_on_unit_graphs(self):
        wg = WeightedGraph.from_unit_graph(generators.grid(4, 4))
        for e in list(wg.edges())[:8]:
            assert weighted_restoration_lemma_holds(wg, 0, 15, e)

    def test_vacuous_on_disconnection(self):
        wg = WeightedGraph(3, [(0, 1, 2), (1, 2, 2)])
        assert weighted_restoration_lemma_holds(wg, 0, 2, (1, 2))


class TestRestoreViaMiddleEdge:
    def test_matches_dijkstra_truth(self):
        wg = WeightedGraph.random(18, 0.2, seed=7)
        tree_dist, parent = dijkstra(wg, 0, wg.arc_weight)
        for e in list(wg.edges())[:10]:
            view = wg.without([e])
            dist_after, _ = dijkstra(view, 0, view.arc_weight)
            if 17 not in dist_after:
                with pytest.raises(DisconnectedError):
                    restore_via_middle_edge(wg, 0, 17, e)
                continue
            path, weight = restore_via_middle_edge(wg, 0, 17, e)
            assert weight == dist_after[17]
            assert path.avoids([e])

    def test_shared_engine_across_fault_stream(self):
        from repro.scenarios import ScenarioEngine

        wg = WeightedGraph.random(18, 0.2, seed=7)
        engine = ScenarioEngine(wg)
        for e in list(wg.edges())[:6]:
            fresh = restore_via_middle_edge(wg, 0, 17, e)
            shared = restore_via_middle_edge(wg, 0, 17, e, engine=engine)
            assert fresh[1] == shared[1]
        # the perturbed trees were computed once, then reused
        assert len(engine._perturbed) == 1
        assert set(engine._perturbed_sssp) == {(0, 0), (0, 17)}

    def test_foreign_engine_rejected(self):
        from repro.scenarios import ScenarioEngine

        wg = WeightedGraph.random(10, 0.3, seed=1)
        other = ScenarioEngine(WeightedGraph.random(10, 0.3, seed=2))
        with pytest.raises(GraphError):
            restore_via_middle_edge(wg, 0, 9, next(iter(wg.edges())),
                                    engine=other)

    def test_weighted_path_structure(self):
        wg = WeightedGraph(4, [(0, 1, 1), (1, 3, 1), (0, 2, 2), (2, 3, 2)])
        path, weight = restore_via_middle_edge(wg, 0, 3, (0, 1))
        assert weight == 4
        assert path.vertices == (0, 2, 3)


class TestBaseSet:
    @pytest.fixture(scope="class")
    def base(self):
        g = generators.connected_erdos_renyi(20, 0.15, seed=9)
        return g, BaseSet(g, seed=2)

    def test_canonical_symmetric(self, base):
        g, bs = base
        for s, t in ((0, 10), (3, 17)):
            fwd = bs.canonical(s, t)
            bwd = bs.canonical(t, s)
            assert fwd.vertices == bwd.reverse().vertices

    def test_canonical_is_shortest(self, base):
        g, bs = base
        from repro.spt.bfs import bfs_distances

        dist = bfs_distances(g, 0)
        for t in range(1, g.n):
            assert bs.canonical(0, t).hops == dist[t]

    def test_count_below_bound(self, base):
        _g, bs = base
        assert bs.count_paths() <= bs.theoretical_bound()

    def test_restore_exact(self, base):
        g, bs = base
        path = bs.canonical(0, 19)
        for e in path.edges():
            truth = replacement_distance(g, 0, 19, [e])
            if truth == -1:
                with pytest.raises(DisconnectedError):
                    bs.restore(0, 19, e)
            else:
                restored = bs.restore(0, 19, e)
                assert restored.hops == truth
                assert restored.avoids([e])

    def test_restore_off_path_fault(self, base):
        g, bs = base
        path = bs.canonical(0, 19)
        off = next(e for e in g.edges() if not path.uses_edge(e))
        assert bs.restore(0, 19, off) == path

    def test_disconnected_canonical(self):
        from repro.graphs.base import Graph

        g = Graph(3, [(0, 1)])
        bs = BaseSet(g, seed=0)
        assert bs.canonical(0, 2) is None

    def test_foreign_engine_rejected(self):
        from repro.scenarios import ScenarioEngine

        g = generators.cycle(8)
        with pytest.raises(GraphError):
            BaseSet(g, engine=ScenarioEngine(generators.cycle(4)))

    def test_shared_engine_same_restoration(self, base):
        from repro.scenarios import ScenarioEngine

        g, bs = base
        engine = ScenarioEngine(g)
        shared = BaseSet(g, seed=2, engine=engine)
        path = bs.canonical(0, 19)
        for e in list(path.edges())[:3]:
            try:
                expect = bs.restore(0, 19, e)
            except DisconnectedError:
                with pytest.raises(DisconnectedError):
                    shared.restore(0, 19, e)
                continue
            assert shared.restore(0, 19, e).hops == expect.hops
