"""Tests for the exception hierarchy and public API surface."""

import pytest

import repro
from repro.exceptions import (
    CongestError,
    DisconnectedError,
    GraphError,
    LabelingError,
    ReproError,
    RestorationError,
    TiebreakingError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, DisconnectedError, TiebreakingError,
        RestorationError, CongestError, LabelingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_disconnected_is_graph_error(self):
        assert issubclass(DisconnectedError, GraphError)

    def test_disconnected_message_without_faults(self):
        err = DisconnectedError(3, 7)
        assert "3" in str(err) and "7" in str(err)
        assert "avoiding" not in str(err)
        assert err.faults == ()

    def test_disconnected_message_with_faults(self):
        err = DisconnectedError(0, 5, [(1, 2)])
        assert "avoiding" in str(err)
        assert err.faults == ((1, 2),)

    def test_one_except_catches_everything(self):
        caught = 0
        for exc in (GraphError("x"), TiebreakingError("x"),
                    RestorationError("x"), CongestError("x"),
                    LabelingError("x")):
            try:
                raise exc
            except ReproError:
                caught += 1
        assert caught == 5


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_core_entry_points_importable(self):
        from repro import (
            DistanceLabeling,
            MplsRouter,
            RestorableTiebreaking,
            ft_plus4_spanner,
            ft_ss_preserver,
            restore_by_concatenation,
            subset_replacement_paths,
        )

        assert callable(restore_by_concatenation)
        assert callable(subset_replacement_paths)
        assert callable(ft_ss_preserver)
        assert callable(ft_plus4_spanner)
        assert hasattr(RestorableTiebreaking, "build")
        assert hasattr(DistanceLabeling, "build")
        assert MplsRouter is not None

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.dag
        import repro.distributed
        import repro.graphs
        import repro.labeling
        import repro.oracles
        import repro.preservers
        import repro.replacement
        import repro.spanners
        import repro.spt
        import repro.weighted

    def test_docstring_example_runs(self):
        """The module docstring's quickstart must stay truthful."""
        from repro import RestorableTiebreaking, restore_by_concatenation
        from repro.graphs import generators

        g = generators.grid(4, 4)
        scheme = RestorableTiebreaking.build(g, f=1, seed=7)
        broken = next(iter(scheme.path(0, 15).edges()))
        result = restore_by_concatenation(scheme, 0, 15, [broken])
        assert result.path.hops == 6
