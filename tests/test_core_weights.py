"""Unit tests for antisymmetric tiebreaking weight functions."""

import pytest

from repro.exceptions import GraphError, TiebreakingError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.core.weights import AntisymmetricWeights
from repro.analysis.bounds import cor22_bits_per_edge


class TestConstructionValidation:
    def test_missing_edge_rejected(self):
        g = Graph(3, [(0, 1), (1, 2)])
        with pytest.raises(TiebreakingError):
            AntisymmetricWeights(g, {(0, 1): 1}, scale=100)

    def test_non_canonical_key_rejected(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(TiebreakingError):
            AntisymmetricWeights(g, {(1, 0): 1}, scale=100)

    def test_oversized_perturbation_rejected(self):
        g = Graph(2, [(0, 1)])
        # scale/(2n) = 100/4 = 25; 25 is not strictly less
        with pytest.raises(TiebreakingError):
            AntisymmetricWeights(g, {(0, 1): 25}, scale=100)

    def test_valid_construction(self):
        g = Graph(2, [(0, 1)])
        atw = AntisymmetricWeights(g, {(0, 1): 24}, scale=100)
        assert atw.weight(0, 1) == 124
        assert atw.weight(1, 0) == 76


class TestAntisymmetry:
    @pytest.mark.parametrize("method", ["random", "deterministic", "uniform"])
    def test_r_negates_under_reversal(self, method):
        g = generators.petersen()
        atw = getattr(AntisymmetricWeights, method)(g)
        for u, v in g.arcs():
            assert atw.r(u, v) == -atw.r(v, u)
        assert atw.verify_antisymmetry()

    def test_weights_positive(self):
        g = generators.grid(3, 3)
        atw = AntisymmetricWeights.random(g, f=1, seed=0)
        for u, v in g.arcs():
            assert atw.weight(u, v) > 0

    def test_r_on_non_edge_rejected(self):
        g = generators.path(3)
        atw = AntisymmetricWeights.random(g, f=1)
        with pytest.raises(GraphError):
            atw.r(0, 2)


class TestTiebreakingProperty:
    @pytest.mark.parametrize("method,kwargs", [
        ("random", {"f": 1, "seed": 3}),
        ("deterministic", {}),
        ("uniform", {"seed": 3}),
    ])
    def test_unique_shortest_paths_single_faults(self, method, kwargs):
        g = generators.grid(3, 3)  # heavily tied
        atw = getattr(AntisymmetricWeights, method)(g, **kwargs)
        assert atw.verify_tiebreaking()

    def test_two_fault_tiebreaking(self):
        g = generators.connected_erdos_renyi(12, 0.25, seed=4)
        atw = AntisymmetricWeights.random(g, f=2, seed=1)
        fault_sets = generators.fault_sample(g, 20, seed=2, size=2)
        assert atw.verify_tiebreaking(fault_sets=fault_sets)

    def test_violation_reporting_shape(self):
        # An adversarial zero perturbation ties everywhere on a cycle.
        g = generators.cycle(4)
        atw = AntisymmetricWeights(
            g, {e: 0 for e in g.edges()}, scale=100, name="null"
        )
        violations = atw.tiebreaking_violations(fault_sets=[()])
        assert violations  # the antipodal pair ties
        assert all(len(v) == 4 and v[3] == "tie" for v in violations)

    def test_deterministic_is_reproducible(self):
        g = generators.grid(3, 3)
        a = AntisymmetricWeights.deterministic(g)
        b = AntisymmetricWeights.deterministic(g)
        assert all(a.r(u, v) == b.r(u, v) for u, v in g.arcs())


class TestBitComplexity:
    def test_random_bits_match_corollary22(self):
        for n in (16, 64):
            g = generators.connected_erdos_renyi(n, 4.0 / n, seed=1)
            atw = AntisymmetricWeights.random(g, f=1, seed=0)
            # r values live in [-W, W] with W = n^(f+4+c): <= log2(W) + 1
            assert atw.bits_per_edge() <= cor22_bits_per_edge(n, 1) + 2

    def test_deterministic_bits_linear_in_m(self):
        g = generators.grid(4, 4)
        atw = AntisymmetricWeights.deterministic(g)
        # Theorem 23: O(|E|) bits; base 4 => exactly 2 bits per edge id
        assert atw.bits_per_edge() <= 2 * g.m + 2

    def test_base_below_four_rejected(self):
        with pytest.raises(TiebreakingError):
            AntisymmetricWeights.deterministic(generators.path(3), base=3)

    def test_negative_f_rejected(self):
        with pytest.raises(TiebreakingError):
            AntisymmetricWeights.random(generators.path(3), f=-1)


class TestHopRecovery:
    def test_hops_of_weight(self):
        g = generators.path(5)
        atw = AntisymmetricWeights.random(g, f=1, seed=2)
        total = sum(atw.weight(u, v) for u, v in zip(range(4), range(1, 5)))
        assert atw.hops_of_weight(total) == 4

    def test_repr_mentions_name(self):
        g = generators.path(3)
        atw = AntisymmetricWeights.deterministic(g)
        assert "deterministic" in repr(atw)
