"""Tests for the sourcewise distance sensitivity oracle (Section 4.3)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.core.scheme import RestorableTiebreaking
from repro.oracles import SourcewiseDSO
from repro.replacement import (
    naive_sourcewise_replacement_distances,
    sourcewise_replacement_distances,
)
from repro.spt.apsp import replacement_distance
from repro.spt.bfs import UNREACHABLE


@pytest.fixture(scope="module")
def setup():
    g = generators.connected_erdos_renyi(25, 0.18, seed=8)
    oracle = SourcewiseDSO(g, [0, 12], seed=3)
    return g, oracle


class TestQueries:
    def test_on_path_faults_exact(self, setup):
        g, oracle = setup
        for s in (0, 12):
            tree = oracle.scheme.tree(s)
            for v in g.vertices():
                if v == s:
                    continue
                for e in tree.path_to(v).edges():
                    assert oracle.query(s, v, e) == \
                        replacement_distance(g, s, v, [e])

    def test_off_path_faults_return_base(self, setup):
        g, oracle = setup
        tree = oracle.scheme.tree(0)
        off = next(e for e in g.edges() if e not in tree.edge_set())
        for v in (5, 17, 24):
            assert oracle.query(0, v, off) == \
                replacement_distance(g, 0, v, [off])

    def test_non_source_rejected(self, setup):
        _g, oracle = setup
        with pytest.raises(GraphError):
            oracle.query(1, 5, (0, 1))

    def test_unknown_vertex_rejected(self, setup):
        _g, oracle = setup
        with pytest.raises(GraphError):
            oracle.query(0, 999, (0, 1))

    def test_unknown_edge_rejected(self, setup):
        # regression: a non-edge "fault" used to silently return the
        # base distance instead of flagging the bad query
        g, oracle = setup
        non_edge = next(
            (u, v)
            for u in g.vertices() for v in g.vertices()
            if u < v and not g.has_edge(u, v)
        )
        with pytest.raises(GraphError):
            oracle.query(0, 5, non_edge)
        with pytest.raises(GraphError):
            oracle.query_many([(0, 5, non_edge)])

    def test_query_many_matches_scalar(self, setup):
        g, oracle = setup
        queries = []
        for s in (0, 12):
            tree = oracle.scheme.tree(s)
            for e in list(tree.edges())[:6]:
                for v in (1, 9, 20):
                    queries.append((s, v, e))
        assert oracle.query_many(queries) == [
            oracle.query(*q) for q in queries
        ]
        assert oracle.query_many([]) == []

    def test_shared_engine_identical_answers(self, setup):
        from repro.scenarios import ScenarioEngine

        g, oracle = setup
        engine = ScenarioEngine(g)
        shared = SourcewiseDSO(g, [0, 12], scheme=oracle.scheme,
                               engine=engine)
        tree = oracle.scheme.tree(0)
        for e in list(tree.edges())[:8]:
            for v in g.vertices():
                assert shared.query(0, v, e) == oracle.query(0, v, e)

    def test_foreign_engine_rejected(self):
        from repro.scenarios import ScenarioEngine

        g = generators.cycle(6)
        with pytest.raises(GraphError):
            SourcewiseDSO(g, [0], engine=ScenarioEngine(generators.cycle(7)))

    def test_query_source_itself(self, setup):
        g, oracle = setup
        e = next(iter(g.edges()))
        assert oracle.query(0, 0, e) == 0

    def test_disconnecting_fault(self):
        g = generators.path(5)
        oracle = SourcewiseDSO(g, [0], seed=1)
        assert oracle.query(0, 4, (2, 3)) == UNREACHABLE

    def test_unreachable_vertex(self):
        from repro.graphs.base import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        oracle = SourcewiseDSO(g, [0], seed=1)
        assert oracle.query(0, 3, (0, 1)) == UNREACHABLE


class TestPreserverSubstrate:
    def test_preserver_mode_same_answers(self):
        g = generators.connected_erdos_renyi(30, 0.3, seed=4)  # dense
        scheme = RestorableTiebreaking.build(g, f=1, seed=2)
        full = SourcewiseDSO(g, [0], scheme=scheme)
        slim = SourcewiseDSO(g, [0], scheme=scheme, use_preserver=True)
        tree = scheme.tree(0)
        for v in g.vertices():
            if v == 0:
                continue
            for e in tree.path_to(v).edges():
                assert full.query(0, v, e) == slim.query(0, v, e)

    def test_preserver_substrate_smaller_on_dense(self):
        g = generators.connected_erdos_renyi(40, 0.35, seed=9)
        scheme = RestorableTiebreaking.build(g, f=1, seed=1)
        full = SourcewiseDSO(g, [0], scheme=scheme)
        slim = SourcewiseDSO(g, [0], scheme=scheme, use_preserver=True)
        assert slim.substrate_edges < full.substrate_edges

    def test_space_accounting(self, setup):
        g, oracle = setup
        # one row per (source, tree edge) plus base rows
        expected_rows = oracle.preprocessed_edges + len(oracle.sources)
        assert oracle.space_entries() == expected_rows * g.n


class TestSourcewiseSolver:
    def test_matches_naive_entrywise(self):
        g = generators.connected_erdos_renyi(22, 0.2, seed=6)
        scheme = RestorableTiebreaking.build(g, f=1, seed=5)
        fast = sourcewise_replacement_distances(g, 0, scheme=scheme)
        for (v, e), d in fast.items():
            assert d == replacement_distance(g, 0, v, [e])

    def test_output_shape_matches_baseline(self):
        # same (v, e) key structure (paths may differ by tiebreak, so
        # compare coverage counts per vertex, not exact key sets)
        g = generators.grid(4, 4)
        fast = sourcewise_replacement_distances(g, 0, seed=2)
        naive = naive_sourcewise_replacement_distances(g, 0)
        fast_counts = {}
        naive_counts = {}
        for v, _e in fast:
            fast_counts[v] = fast_counts.get(v, 0) + 1
        for v, _e in naive:
            naive_counts[v] = naive_counts.get(v, 0) + 1
        # every vertex contributes exactly path-length entries: equal
        # per-vertex counts since all selections are shortest paths
        assert fast_counts == naive_counts

    def test_full_graph_mode(self):
        g = generators.connected_erdos_renyi(18, 0.25, seed=3)
        out = sourcewise_replacement_distances(
            g, 0, use_preserver=False, seed=4
        )
        for (v, e), d in out.items():
            assert d == replacement_distance(g, 0, v, [e])
