"""Tests for routing tables and the MPLS restoration workflow."""

import pytest

from repro.exceptions import DisconnectedError, GraphError, RestorationError
from repro.graphs import generators
from repro.core.routing import MplsRouter, RoutingTable, fault_patch
from repro.core.scheme import RestorableTiebreaking
from repro.spt.apsp import replacement_distance


class TestRoutingTable:
    def test_routes_reproduce_selected_paths(self, grid4, grid_scheme):
        table = RoutingTable.from_scheme(grid_scheme)
        for s in (0, 7, 12):
            for t in grid4.vertices():
                if s == t:
                    continue
                assert table.route(s, t) == grid_scheme.path(s, t)

    def test_next_hop_semantics(self, grid_scheme):
        table = RoutingTable.from_scheme(grid_scheme)
        assert table.next_hop(0, 0) is None
        nh = table.next_hop(0, 15)
        assert nh == grid_scheme.path(0, 15)[1]

    def test_disconnected_route(self):
        g = generators.path(3)
        # remove connectivity by building the table over a subgraph view
        scheme = RestorableTiebreaking.build(g, seed=0)
        table = RoutingTable.from_scheme(scheme)
        assert table.next_hop(0, 2) == 1
        bad = RoutingTable({}, 3)
        with pytest.raises(DisconnectedError):
            bad.route(0, 2)

    def test_loop_detection(self):
        table = RoutingTable({(0, 2): 1, (1, 2): 0}, 3)
        with pytest.raises(GraphError):
            table.route(0, 2)

    def test_entries_count(self, grid4, grid_scheme):
        table = RoutingTable.from_scheme(grid_scheme)
        assert table.entries() == grid4.n * (grid4.n - 1)


class TestMplsRouter:
    @pytest.fixture(scope="class")
    def router(self, grid_scheme):
        return MplsRouter(grid_scheme)

    def test_primary_path(self, router, grid_scheme):
        assert router.primary_path(0, 15) == grid_scheme.path(0, 15)

    def test_restore_off_path_fault_keeps_primary(self, router, grid4):
        primary = router.primary_path(0, 15)
        off = next(e for e in grid4.edges() if not primary.uses_edge(e))
        assert router.restore(0, 15, off) == primary

    def test_restore_every_on_path_fault(self, router, grid4):
        primary = router.primary_path(0, 15)
        for e in primary.edges():
            restored = router.restore(0, 15, e)
            assert restored.avoids([e])
            assert restored.hops == replacement_distance(grid4, 0, 15, [e])

    def test_restore_all_on_path(self, router):
        primary = router.primary_path(0, 15)
        table = router.restore_all_on_path(0, 15)
        assert set(table) == set(primary.edges())

    def test_disconnecting_fault_raises(self):
        g = generators.path(4)
        router = MplsRouter(RestorableTiebreaking.build(g, seed=3))
        with pytest.raises(DisconnectedError):
            router.restore(0, 3, (1, 2))

    def test_restore_never_recomputes(self, grid4, grid_scheme):
        # The router must answer restorations from precomputed trees:
        # tree cache size stays fixed across restores.
        router = MplsRouter(grid_scheme)
        before = grid_scheme.cache_size()
        primary = router.primary_path(0, 15)
        for e in primary.edges():
            router.restore(0, 15, e)
        assert grid_scheme.cache_size() == before

    def test_works_on_every_pair_of_er_graph(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, f=1, seed=13)
        router = MplsRouter(scheme)
        for s in range(0, er_small.n, 5):
            for t in range(1, er_small.n, 4):
                if s == t:
                    continue
                primary = router.primary_path(s, t)
                for e in primary.edges():
                    target = replacement_distance(er_small, s, t, [e])
                    if target == -1:
                        with pytest.raises(DisconnectedError):
                            router.restore(s, t, e)
                    else:
                        assert router.restore(s, t, e).hops == target


class TestFaultPatch:
    """The 'easy routing-table changes' claim, quantified."""

    def test_patch_only_touches_broken_paths(self, grid4, grid_scheme):
        fault = (5, 6)
        patch = fault_patch(grid_scheme, fault)
        for (s, t), (old, _new) in patch.items():
            primary = grid_scheme.path(s, t)
            # stability: a cell changes only if its path used the fault
            assert primary is not None
            assert primary.uses_edge(fault)
            assert old is not None

    def test_patch_covers_every_broken_path(self, grid4, grid_scheme):
        fault = (5, 6)
        patch = fault_patch(grid_scheme, fault)
        patched = set(patch)
        for s in grid4.vertices():
            for t in grid4.vertices():
                if s == t:
                    continue
                primary = grid_scheme.path(s, t)
                if primary.uses_edge(fault) and \
                        grid_scheme.path(s, t, [fault]) is not None:
                    new_hop = grid_scheme.path(s, t, [fault])[1]
                    if new_hop != primary[1]:
                        assert (s, t) in patched

    def test_patch_is_small(self, grid4, grid_scheme):
        fault = (5, 6)
        patch = fault_patch(grid_scheme, fault)
        assert len(patch) < grid4.n * (grid4.n - 1) / 4

    def test_unreachable_marked_none(self):
        g = generators.path(4)
        scheme = RestorableTiebreaking.build(g, seed=2)
        patch = fault_patch(scheme, (1, 2))
        # pairs split by the fault lose their cell entirely
        assert patch[(0, 3)][1] is None
        assert patch[(3, 0)][1] is None

    def test_diff_symmetric_roles(self):
        a = RoutingTable({(0, 1): 1}, 2)
        b = RoutingTable({(0, 1): 1}, 2)
        assert a.diff(b) == {}
        c = RoutingTable({}, 2)
        assert a.diff(c) == {(0, 1): (1, None)}
        assert c.diff(a) == {(0, 1): (None, 1)}
