"""Unit tests for all-pairs helpers."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.spt.apsp import (
    all_pairs_bfs_distances,
    diameter,
    distance_matrix,
    eccentricity,
    replacement_distance,
)


class TestApsp:
    def test_all_pairs_default_sources(self):
        g = generators.cycle(5)
        rows = all_pairs_bfs_distances(g)
        assert set(rows) == set(range(5))
        assert rows[0][2] == 2

    def test_restricted_sources(self):
        g = generators.path(4)
        rows = all_pairs_bfs_distances(g, sources=[1])
        assert set(rows) == {1}

    def test_duplicate_sources_deduplicated_in_order(self):
        g = generators.cycle(6)
        rows = all_pairs_bfs_distances(g, sources=[4, 2, 4, 2, 4])
        assert list(rows) == [4, 2]
        assert rows[4][1] == 3

    def test_matrix_symmetric(self):
        g = generators.connected_erdos_renyi(20, 0.15, seed=3)
        mat = distance_matrix(g)
        for u in range(20):
            for v in range(20):
                assert mat[u][v] == mat[v][u]

    def test_matches_networkx_diameter(self):
        g = generators.connected_erdos_renyi(30, 0.1, seed=8)
        assert diameter(g) == nx.diameter(g.to_networkx())


class TestEccentricity:
    def test_path_endpoints(self):
        g = generators.path(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert diameter(g) == 4

    def test_disconnected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            eccentricity(g, 0)

    def test_disconnected_contract_consistent(self):
        # max-valued helpers raise; distance-valued helpers encode -1.
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            diameter(g)
        assert distance_matrix(g)[0][2] == -1


class TestReplacementDistance:
    def test_cycle_detour(self):
        g = generators.cycle(6)
        assert replacement_distance(g, 0, 1, [(0, 1)]) == 5

    def test_disconnecting_fault(self):
        g = generators.path(3)
        assert replacement_distance(g, 0, 2, [(1, 2)]) == -1

    def test_irrelevant_fault(self):
        g = generators.grid(3, 3)
        assert replacement_distance(g, 0, 1, [(7, 8)]) == 1

    def test_works_on_views(self):
        g = generators.cycle(6)
        view = g.without([(2, 3)])
        # a second fault on the view
        assert replacement_distance(view, 0, 1, [(0, 1)]) == -1
