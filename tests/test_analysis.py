"""Tests for the bounds/experiments analysis layer."""

import math

import pytest

from repro.analysis import bounds
from repro.analysis.experiments import (
    figure1_experiment,
    format_table,
    timed,
)
from repro.backends.api import numpy_or_none


class TestBoundFormulas:
    def test_thm26_f0_is_sn(self):
        assert bounds.thm26_sv_preserver_bound(100, 5, 0) == 100 * 5

    def test_thm26_f1(self):
        assert bounds.thm26_sv_preserver_bound(100, 4, 1) == pytest.approx(
            100 ** 1.5 * 2
        )

    def test_thm31_shifts_f(self):
        assert bounds.thm31_ss_preserver_bound(100, 4, 1) == \
            bounds.thm26_sv_preserver_bound(100, 4, 0)

    def test_thm33_values(self):
        assert bounds.thm33_spanner_bound(100, 0) == pytest.approx(1000.0)
        assert bounds.thm33_spanner_bound(100, 1) == pytest.approx(
            100 ** (5 / 3)
        )

    def test_thm30_label_bound(self):
        assert bounds.thm30_label_bits_bound(16, 0) == pytest.approx(16 * 4)

    def test_thm3_runtime(self):
        assert bounds.thm3_subset_rp_time(100, 400, 5) == 5 * 400 + 25 * 100

    def test_thm27_matches_lowerbound_module(self):
        from repro.graphs.lowerbound import theoretical_lower_bound

        assert bounds.thm27_lower_bound(200, 1, 3) == pytest.approx(
            theoretical_lower_bound(200, 1, 3)
        )

    def test_cor22_bits(self):
        assert bounds.cor22_bits_per_edge(16, 1, c=2) == pytest.approx(7 * 4)

    def test_lemma36_rounds(self):
        assert bounds.lemma36_round_bound(5, 4, 16) == pytest.approx(9 * 4)


class TestFitExponent:
    def test_recovers_power_law(self):
        if numpy_or_none() is None:
            pytest.skip("fit_exponent needs numpy")
        xs = [10, 20, 40, 80]
        ys = [x ** 1.5 * 3 for x in xs]
        slope, intercept = bounds.fit_exponent(xs, ys)
        assert slope == pytest.approx(1.5, abs=1e-9)
        assert math.exp(intercept) == pytest.approx(3, rel=1e-9)

    def test_rejects_degenerate(self):
        if numpy_or_none() is None:
            pytest.skip("fit_exponent needs numpy")
        with pytest.raises(ValueError):
            bounds.fit_exponent([1], [1])
        with pytest.raises(ValueError):
            bounds.fit_exponent([1, -2], [1, 2])

    def test_clear_error_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with pytest.raises(RuntimeError, match="numpy"):
            bounds.fit_exponent([10, 20], [1, 2])


class TestExperimentHelpers:
    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "0.500" in text
        assert format_table([]) == "(no rows)"

    def test_figure1_rows_shape(self):
        rows = figure1_experiment(["grid"], 4, seed=1, limit=100)
        assert len(rows) == 2
        schemes = {r["scheme"] for r in rows}
        assert schemes == {"bfs-lex", "restorable"}
        restorable = next(r for r in rows if r["scheme"] == "restorable")
        assert restorable["failures"] == 0

    def test_timed(self):
        value, seconds = timed(sum, [1, 2, 3])
        assert value == 6
        assert seconds >= 0
