"""Scenario enumerators and the batched ScenarioEngine."""

import itertools

import pytest

from repro.core.restoration import midpoint_scan, tree_fault_free_vertices
from repro.core.scheme import BFSTiebreaking, RestorableTiebreaking
from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.preservers.verification import preserver_violations
from repro.scenarios import (
    ScenarioEngine,
    ScenarioResult,
    TreeFaultIndex,
    all_fault_subsets,
    random_fault_sets,
    single_edge_faults,
    tree_edge_faults,
)
from repro.spt.bfs import UNREACHABLE, bfs_distances


@pytest.fixture(scope="module")
def torus():
    return generators.torus(5, 5)


@pytest.fixture(scope="module")
def sparse():
    return generators.connected_erdos_renyi(60, 2.5 / 60, seed=9)


# ----------------------------------------------------------------------
# enumerators
# ----------------------------------------------------------------------
class TestEnumerators:
    def test_single_edge_faults(self, torus):
        scenarios = list(single_edge_faults(torus))
        assert len(scenarios) == torus.m
        assert all(len(f) == 1 for f in scenarios)
        assert scenarios == sorted(scenarios)

    def test_all_fault_subsets_exact_size(self, torus):
        f2 = list(all_fault_subsets(torus, 2))
        assert len(f2) == torus.m * (torus.m - 1) // 2
        assert all(len(f) == 2 for f in f2)

    def test_all_fault_subsets_include_smaller(self):
        g = generators.cycle(4)
        fs = list(all_fault_subsets(g, 2, include_smaller=True))
        assert fs[0] == ()  # empty scenario first
        assert len(fs) == 1 + 4 + 6

    def test_all_fault_subsets_negative_budget(self, torus):
        with pytest.raises(GraphError):
            list(all_fault_subsets(torus, -1))

    def test_random_fault_sets_deterministic(self, torus):
        a = random_fault_sets(torus, 2, 20, seed=4)
        b = random_fault_sets(torus, 2, 20, seed=4)
        c = random_fault_sets(torus, 2, 20, seed=5)
        assert a == b
        assert a != c
        assert len(a) == 20
        edge_set = set(torus.edges())
        for fs in a:
            assert len(fs) == 2
            assert set(fs) <= edge_set

    def test_random_fault_sets_budget_clamped(self):
        g = generators.cycle(3)
        (fs,) = random_fault_sets(g, 10, 1, seed=0)
        assert len(fs) == 3  # only 3 edges exist

    def test_tree_edge_faults_are_adversarial(self, torus):
        scheme = RestorableTiebreaking.build(torus, f=1, seed=2)
        tree = scheme.tree(0)
        scenarios = list(tree_edge_faults(tree))
        assert len(scenarios) == torus.n - 1  # spanning tree edges
        tree_edges = tree.edge_set()
        assert all(f[0] in tree_edges for f in scenarios)


# ----------------------------------------------------------------------
# TreeFaultIndex
# ----------------------------------------------------------------------
class TestTreeFaultIndex:
    def test_matches_reference_on_all_faults(self, torus):
        scheme = RestorableTiebreaking.build(torus, f=1, seed=1)
        tree = scheme.tree(7)
        index = TreeFaultIndex(tree)
        for faults in itertools.chain(single_edge_faults(torus),
                                      random_fault_sets(torus, 3, 30, 8)):
            assert (index.fault_free_vertices(faults)
                    == tree_fault_free_vertices(tree, faults))

    def test_empty_faults_returns_all_reached(self, torus):
        tree = BFSTiebreaking(torus).tree(0)
        index = TreeFaultIndex(tree)
        assert index.fault_free_vertices(()) == set(tree.reached_vertices())


# ----------------------------------------------------------------------
# ScenarioEngine
# ----------------------------------------------------------------------
class TestScenarioEngine:
    def test_replacement_distances_match_naive(self, sparse):
        engine = ScenarioEngine(sparse)
        scenarios = list(single_edge_faults(sparse))
        scenarios += random_fault_sets(sparse, 2, 40, seed=1)
        s, t = 0, sparse.n - 1
        fast = engine.replacement_distances(s, t, scenarios)
        naive = [
            bfs_distances(sparse.without(f), s)[t] for f in scenarios
        ]
        assert fast == naive

    def test_pair_query_validates_vertices(self, torus):
        engine = ScenarioEngine(torus)
        for s, t in ((0, -1), (0, torus.n), (-2, 5), (torus.n + 3, 5)):
            with pytest.raises(GraphError):
                engine.pair_replacement_distance(s, t, [(0, 1)])
            with pytest.raises(GraphError):
                engine.faults_touch_pair(s, t, [(0, 1)])

    def test_out_of_range_fault_edges_tolerated(self, torus):
        # Fault edges naming unknown vertices behave like absent edges,
        # matching the without() convention.
        engine = ScenarioEngine(torus)
        base = bfs_distances(torus, 0)[12]
        assert engine.pair_replacement_distance(
            0, 12, [(0, 999), (-5, 3)]
        ) == base
        assert not engine.faults_touch_pair(0, 12, [(0, 999)])

    def test_scratch_mask_restored_between_scenarios(self, torus):
        engine = ScenarioEngine(torus)
        scenarios = list(single_edge_faults(torus))
        expected = [
            bfs_distances(torus.without(f), 0)[12] for f in scenarios
        ]
        # Interleave different query types; a leaked mask bit from any
        # earlier scenario would corrupt a later answer.
        for f, want in zip(scenarios, expected):
            assert engine.pair_replacement_distance(0, 12, f) == want
            assert engine.connectivity([f])[0] == (
                torus.without(f).is_connected()
            )
        assert all(engine._scratch_mask)  # fully restored

    def test_disconnected_base_pair(self):
        g = Graph(4, [(0, 1), (2, 3)])
        engine = ScenarioEngine(g)
        assert engine.pair_replacement_distance(0, 3, [(0, 1)]) == UNREACHABLE

    def test_touch_filter_has_no_false_negatives(self, sparse):
        engine = ScenarioEngine(sparse)
        s, t = 0, sparse.n - 1
        base = bfs_distances(sparse, s)[t]
        for faults in single_edge_faults(sparse):
            if not engine.faults_touch_pair(s, t, faults):
                # untouched scenario => distance provably unchanged
                assert bfs_distances(sparse.without(faults), s)[t] == base

    def test_connectivity_matches_naive(self, sparse):
        engine = ScenarioEngine(sparse)
        scenarios = random_fault_sets(sparse, 2, 60, seed=2)
        assert engine.connectivity(scenarios) == [
            sparse.without(f).is_connected() for f in scenarios
        ]

    def test_distance_vectors_match_naive(self, torus):
        engine = ScenarioEngine(torus)
        scenarios = random_fault_sets(torus, 2, 10, seed=3)
        vectors = engine.distance_vectors(4, scenarios)
        for faults, vec in zip(scenarios, vectors):
            assert vec == bfs_distances(torus.without(faults), 4)

    def test_midpoint_scan_matches_core(self, torus):
        scheme = RestorableTiebreaking.build(torus, f=1, seed=4)
        engine = ScenarioEngine(torus)
        for faults in list(single_edge_faults(torus))[:25]:
            ref = midpoint_scan(scheme, 0, 12, faults)
            fast = engine.midpoint_scan(scheme, 0, 12, faults)
            assert ref == fast

    def test_restoration_sweep_restorable_never_fails(self, torus):
        scheme = RestorableTiebreaking.build(torus, f=1, seed=6)
        engine = ScenarioEngine(torus)
        path = scheme.path(0, 12)
        instances = [(0, 12, e) for e in path.edges()]
        for item in engine.restoration_sweep(scheme, instances):
            assert item.value is not None
            target, result = item.value
            assert result is not None and result.path.hops == target

    def test_preserver_violations_match_reference(self, torus):
        # The full graph trivially preserves itself; a spanning tree
        # of a torus does not.
        scenarios = list(single_edge_faults(torus))[:15]
        sources = [0, 7, 13]
        engine = ScenarioEngine(torus)
        full = engine.preserver_violations(
            torus.edges(), sources, scenarios
        )
        assert full == []
        tree = BFSTiebreaking(torus).tree(0)
        fast = engine.preserver_violations(
            tree.edges(), sources, scenarios
        )
        ref = preserver_violations(
            torus, tree.edges(), sources, fault_sets=scenarios
        )
        assert fast == ref
        assert fast  # the tree really does lose distances

    def test_run_serial_and_results_aligned(self, torus):
        engine = ScenarioEngine(torus)
        scenarios = random_fault_sets(torus, 1, 12, seed=5)
        results = engine.run(_surviving_edges, scenarios)
        assert [r.index for r in results] == list(range(12))
        for r in results:
            assert isinstance(r, ScenarioResult)
            assert r.value == torus.m - len(r.faults)

    def test_run_evaluator_may_reenter_engine(self):
        # An evaluator calling back into the engine must not corrupt
        # the scenario view it holds (the scratch mask is loaned out),
        # and the inner query must see only its own fault set.
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)])
        engine = ScenarioEngine(g)

        def reentrant(view, faults):
            inner = engine.pair_replacement_distance(0, 1, faults)
            outer = bfs_distances(view, 0)[1]
            return (inner, outer)

        (result,) = engine.run(reentrant, [[(0, 1)]])
        assert result.value == (2, 2)  # both see G \ {(0, 1)}
        assert all(engine._scratch_mask)

    def test_run_evaluator_exception_propagates_from_pool(self, torus):
        # A buggy evaluator must fail loudly, not fall back to a
        # silent serial re-run of the stream.
        engine = ScenarioEngine(torus)
        scenarios = random_fault_sets(torus, 1, 4, seed=7)
        with pytest.raises(TypeError):
            engine.run(_buggy_evaluator, scenarios, processes=2)

    def test_run_with_process_pool(self, torus):
        engine = ScenarioEngine(torus)
        scenarios = random_fault_sets(torus, 1, 8, seed=6)
        serial = engine.run(_surviving_edges, scenarios)
        pooled = engine.run(_surviving_edges, scenarios, processes=2)
        assert [r.value for r in pooled] == [r.value for r in serial]


def _surviving_edges(view, faults):
    """Top-level evaluator so the pool test can pickle it."""
    return view.m


def _buggy_evaluator(view, faults):
    """Top-level evaluator raising the classic evaluator bug."""
    return view.m + "oops"  # TypeError

# ----------------------------------------------------------------------
# CacheInfo aggregation and the pool-degradation contract
# ----------------------------------------------------------------------
class TestCacheInfoMerge:
    def test_merge_sums_counters_and_unions_backends(self):
        from repro.scenarios import CacheInfo

        a = CacheInfo(hits=3, misses=1, evictions=0, vector_hits=2,
                      vector_misses=5, vector_evictions=1, delta_hits=4,
                      delta_fallbacks=2, size=7, maxsize=64,
                      wave_backends=(("pyloops", 3), ("vectorized", 1)),
                      pool_fallbacks=1)
        b = CacheInfo(hits=10, misses=2, evictions=3, vector_hits=0,
                      vector_misses=1, vector_evictions=0, delta_hits=0,
                      delta_fallbacks=1, size=5, maxsize=64,
                      wave_backends=(("vectorized", 6),))
        merged = CacheInfo.merge([a, b])
        assert merged.hits == 13 and merged.misses == 3
        assert merged.evictions == 3
        assert merged.vector_hits == 2 and merged.vector_misses == 6
        assert merged.delta_hits == 4 and merged.delta_fallbacks == 3
        assert merged.size == 12 and merged.maxsize == 128
        assert merged.pool_fallbacks == 1
        assert merged.wave_backends == (
            ("pyloops", 3), ("vectorized", 7))
        # componentwise: merging is exactly field-by-field summation
        for name in a.keys():
            if name == "wave_backends":
                continue
            assert merged[name] == a[name] + b[name]

    def test_merge_of_nothing_is_zero(self):
        from repro.scenarios import CacheInfo

        zero = CacheInfo.merge([])
        assert dict(zero) == dict(CacheInfo(
            hits=0, misses=0, evictions=0, vector_hits=0,
            vector_misses=0, vector_evictions=0, delta_hits=0,
            delta_fallbacks=0, size=0, maxsize=0,
        ))

    def test_merge_matches_live_engines(self, torus):
        from repro.scenarios import CacheInfo

        engines = [ScenarioEngine(torus) for _ in range(2)]
        for i, engine in enumerate(engines):
            for faults in random_fault_sets(torus, 1, 4, seed=i):
                engine.source_vectors([0, 7], faults)
        merged = CacheInfo.merge(e.cache_info() for e in engines)
        assert merged.size == sum(e.cache_info().size for e in engines)
        assert merged.vector_misses == sum(
            e.cache_info().vector_misses for e in engines)


class TestPoolFallback:
    def test_pool_failure_warns_and_counts(self, torus, monkeypatch):
        import pickle

        import repro.scenarios.engine as engine_mod

        def _broken_pool(graph, evaluator, processes):
            raise pickle.PicklingError("evaluator does not pickle")

        monkeypatch.setattr(engine_mod, "_make_pool", _broken_pool)
        engine = ScenarioEngine(torus)
        scenarios = random_fault_sets(torus, 1, 6, seed=3)
        serial = engine.run(_surviving_edges, scenarios)
        assert engine.pool_fallbacks == 0
        with pytest.warns(RuntimeWarning,
                          match="process pool unavailable"):
            degraded = engine.run(_surviving_edges, scenarios,
                                  processes=2)
        # results are still produced, the degradation is just counted
        assert [r.value for r in degraded] == [r.value for r in serial]
        assert engine.pool_fallbacks == 1
        assert engine.cache_info().pool_fallbacks == 1

    def test_serial_runs_never_count(self, torus):
        engine = ScenarioEngine(torus)
        engine.run(_surviving_edges, random_fault_sets(torus, 1, 3,
                                                       seed=1))
        assert engine.pool_fallbacks == 0
        assert engine.cache_info().pool_fallbacks == 0
