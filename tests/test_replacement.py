"""Tests for replacement-path algorithms (Section 4.2)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.core.scheme import RestorableTiebreaking
from repro.core.weights import AntisymmetricWeights
from repro.replacement import (
    naive_single_pair_replacement_distances,
    naive_sourcewise_replacement_distances,
    naive_subset_replacement_paths,
    single_pair_replacement_distances,
    subset_replacement_paths,
)
from repro.spt.apsp import replacement_distance
from repro.spt.bfs import UNREACHABLE


class TestSinglePair:
    def test_matches_naive_on_er(self):
        g = generators.connected_erdos_renyi(30, 0.1, seed=6)
        path, dists = single_pair_replacement_distances(g, 0, 17, seed=2)
        naive = naive_single_pair_replacement_distances(g, 0, 17, path)
        assert dists == naive

    def test_matches_naive_on_grid(self):
        g = generators.grid(5, 5)
        path, dists = single_pair_replacement_distances(g, 0, 24, seed=1)
        naive = naive_single_pair_replacement_distances(g, 0, 24, path)
        assert dists == naive

    def test_unreachable_reported(self):
        g = generators.path(5)
        path, dists = single_pair_replacement_distances(g, 0, 4, seed=0)
        # every edge of a path graph disconnects the pair
        assert all(d == UNREACHABLE for d in dists.values())
        assert len(dists) == 4

    def test_disconnected_pair_rejected(self):
        from repro.graphs.base import Graph

        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            single_pair_replacement_distances(g, 0, 2)

    def test_cycle_exact(self):
        g = generators.cycle(8)
        path, dists = single_pair_replacement_distances(g, 0, 3, seed=4)
        assert path.hops == 3
        assert all(d == 5 for d in dists.values())


class TestSubsetRP:
    @pytest.fixture(scope="class")
    def instance(self):
        g = generators.connected_erdos_renyi(40, 0.1, seed=12)
        return g, [0, 7, 15, 22, 33]

    def test_exact_against_bfs_oracle(self, instance):
        g, sources = instance
        result = subset_replacement_paths(g, sources, seed=5)
        assert len(result.paths) == 10  # all C(5,2) pairs connected
        for (s1, s2), per_edge in result.distances.items():
            for e, d in per_edge.items():
                assert d == replacement_distance(g, s1, s2, [e])

    def test_selected_paths_are_shortest(self, instance):
        g, sources = instance
        result = subset_replacement_paths(g, sources, seed=5)
        from repro.spt.bfs import bfs_distances

        for (s1, s2), path in result.paths.items():
            assert path.hops == bfs_distances(g, s1)[s2]
            assert path.is_valid_in(g)

    def test_tree_unions_linear_size(self, instance):
        g, sources = instance
        result = subset_replacement_paths(g, sources, seed=5)
        for size in result.union_sizes.values():
            assert size <= 2 * (g.n - 1)

    def test_query_interface(self, instance):
        g, sources = instance
        result = subset_replacement_paths(g, sources, seed=5)
        (s1, s2), path = next(iter(result.paths.items()))
        e = next(iter(path.edges()))
        assert result.query(s1, s2, e) == replacement_distance(g, s1, s2, [e])
        # off-path faults leave the distance unchanged
        off = next(edge for edge in g.edges() if not path.uses_edge(edge))
        assert result.query(s1, s2, off) == path.hops
        with pytest.raises(GraphError):
            result.query(0, 0, e)

    def test_scheme_reuse(self, instance):
        g, sources = instance
        scheme = RestorableTiebreaking.build(g, f=1, seed=3)
        a = subset_replacement_paths(g, sources, scheme=scheme)
        b = subset_replacement_paths(g, sources, scheme=scheme)
        assert a.paths == b.paths

    def test_unknown_source_rejected(self, instance):
        g, _ = instance
        with pytest.raises(GraphError):
            subset_replacement_paths(g, [0, g.n + 5])

    def test_matches_naive_subset_baseline_distances(self, instance):
        # The two solvers may pick different tied paths, so compare the
        # ground truth they imply for a *shared* set of fault queries.
        g, sources = instance
        fast = subset_replacement_paths(g, sources, seed=5)
        naive = naive_subset_replacement_paths(g, sources)
        assert set(fast.paths) == set(naive)
        for key, per_edge in naive.items():
            for e, d in per_edge.items():
                assert fast.query(*key, e) == d if e in fast.distances[key] \
                    else d == replacement_distance(g, *key, [e])


class TestSourcewiseBaseline:
    def test_oracle_consistency(self):
        g = generators.grid(4, 4)
        table = naive_sourcewise_replacement_distances(g, 0)
        for (v, e), d in table.items():
            assert d == replacement_distance(g, 0, v, [e])

    def test_covers_all_tree_paths(self):
        g = generators.grid(3, 3)
        table = naive_sourcewise_replacement_distances(g, 0)
        # every non-root vertex contributes at least one (v, e) entry
        vertices = {v for v, _e in table}
        assert vertices == set(range(1, 9))
