"""Failure-injection suite: randomized fault storms, oracle-checked.

Rather than hand-picked faults, these tests drive the user-facing
components (router, oracle, labels, subset-rp results) through seeded
random failure storms and validate every response against brute-force
BFS — the closest thing a library like this has to chaos testing.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DisconnectedError
from repro.graphs import generators
from repro.core.routing import MplsRouter, fault_patch
from repro.core.scheme import RestorableTiebreaking
from repro.labeling import DistanceLabeling
from repro.oracles import SourcewiseDSO
from repro.spt.apsp import replacement_distance
from repro.spt.bfs import UNREACHABLE, bfs_distances


@pytest.fixture(scope="module")
def network():
    g = generators.connected_erdos_renyi(32, 0.12, seed=77)
    scheme = RestorableTiebreaking.build(g, f=2, seed=77)
    return g, scheme


class TestRouterStorm:
    def test_sequential_link_failures(self, network):
        g, scheme = network
        router = MplsRouter(scheme)
        rng = random.Random(1)
        lsps = [tuple(rng.sample(range(g.n), 2)) for _ in range(10)]
        for trial in range(25):
            link = rng.choice(list(g.edges()))
            for s, t in lsps:
                truth = replacement_distance(g, s, t, [link])
                if truth == UNREACHABLE:
                    with pytest.raises(DisconnectedError):
                        router.restore(s, t, link)
                else:
                    restored = router.restore(s, t, link)
                    assert restored.hops == truth
                    assert restored.avoids([link])
                    assert restored.is_valid_in(g)

    def test_patch_storm_consistency(self, network):
        g, scheme = network
        rng = random.Random(2)
        for _ in range(6):
            link = rng.choice(list(g.edges()))
            patch = fault_patch(scheme, link)
            # applying the patch yields the post-fault next hops
            for (s, t), (_old, new) in patch.items():
                post = scheme.path(s, t, [link])
                if post is None:
                    assert new is None
                else:
                    assert new == post[1]


class TestOracleStorm:
    def test_random_queries_vs_bfs(self, network):
        g, scheme = network
        oracle = SourcewiseDSO(g, [0, 15], scheme=scheme)
        rng = random.Random(3)
        edges = list(g.edges())
        for _ in range(300):
            s = rng.choice([0, 15])
            v = rng.randrange(g.n)
            e = rng.choice(edges)
            assert oracle.query(s, v, e) == \
                replacement_distance(g, s, v, [e])


class TestLabelStorm:
    def test_two_fault_label_queries(self):
        g = generators.connected_erdos_renyi(16, 0.25, seed=55)
        lab = DistanceLabeling.build(g, f=1, seed=55)
        rng = random.Random(4)
        edges = list(g.edges())
        for _ in range(60):
            faults = rng.sample(edges, 2)
            s, t = rng.sample(range(g.n), 2)
            truth = bfs_distances(g.without(faults), s)[t]
            assert lab.distance(s, t, faults) == truth


class TestDistributedEnumerationCharge:
    def test_charged_rounds_strictly_higher(self):
        from repro.distributed import distributed_ss_preserver

        g = generators.connected_erdos_renyi(14, 0.25, seed=9)
        S = [0, 7]
        plain = distributed_ss_preserver(g, S, faults_tolerated=2, seed=1)
        charged = distributed_ss_preserver(
            g, S, faults_tolerated=2, seed=1, charge_enumeration=True
        )
        assert charged.preserver.edges == plain.preserver.edges
        assert charged.total_rounds > plain.total_rounds

    def test_single_fault_uncharged(self):
        from repro.distributed import distributed_ss_preserver

        g = generators.torus(4, 4)
        S = [0, 5]
        plain = distributed_ss_preserver(g, S, faults_tolerated=1, seed=2)
        charged = distributed_ss_preserver(
            g, S, faults_tolerated=1, seed=2, charge_enumeration=True
        )
        # Lemma 36 needs no enumeration: one wave, no next-wave naming
        assert charged.total_rounds == plain.total_rounds


class TestMultiFaultRestorationStorm:
    def test_random_double_faults(self, network):
        g, scheme = network
        from repro.core.restoration import restore_by_concatenation

        rng = random.Random(5)
        edges = list(g.edges())
        tried = 0
        for _ in range(40):
            faults = tuple(rng.sample(edges, 2))
            s, t = rng.sample(range(g.n), 2)
            truth = replacement_distance(g, s, t, list(faults))
            if truth == UNREACHABLE:
                continue
            tried += 1
            result = restore_by_concatenation(scheme, s, t, faults)
            assert result.path.hops == truth
        assert tried > 10  # the storm actually exercised restorations
