"""Tests for the observability plane (repro.obs).

Covers the registry (get-or-create instruments, label identity,
bucket ladders, snapshots), the switch contract (disabled by default,
helpers no-op while off, ``span()`` yields None), the tracing plane
(parent links, context currency, portable TraceContext, the bounded
span buffer, cross-process ingest), the exporters (Prometheus text,
JSON-lines, the scrape server), and the thin-view ``publish`` seam on
CacheInfo / SessionStats.  The cross-process chains themselves are
asserted where they happen: test_fleet.py (pickle seam) and
test_service.py (frames + coalescer).
"""

import io
import json
import urllib.request

import pytest

from repro import obs
from repro.obs import SIZE_BUCKETS, TIME_BUCKETS, MetricsRegistry
from repro.obs.export import render_prometheus, write_jsonl
from repro.obs.metrics import Histogram
from repro.obs.trace import TraceContext
from repro.query import DistanceQuery, Session, VectorQuery


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with the plane off and empty."""
    obs.reset()
    yield
    obs.reset()


def _by_name(records, name):
    return [r for r in records if r["name"] == name]


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_instruments_are_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("repro_waves_total", kernel="bfs")
        c2 = reg.counter("repro_waves_total", kernel="bfs")
        assert c1 is c2
        c1.inc()
        c1.inc(2.5)
        assert c2.value == 3.5
        assert len(reg) == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("repro_waves_total", kernel="bfs").inc()
        reg.counter("repro_waves_total", kernel="dial").inc(4)
        records = reg.snapshot()
        assert [r["labels"]["kernel"] for r in records] == ["bfs", "dial"]
        assert [r["value"] for r in records] == [1.0, 4.0]

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_fleet_capacity_used_bytes", worker="w0")
        g.set(128.0)
        g.inc(64.0)
        assert g.value == 192.0
        g.set(0.0)
        assert reg.snapshot()[0]["value"] == 0.0

    def test_histogram_ladder_chosen_by_name(self):
        reg = MetricsRegistry()
        assert reg.histogram("repro_coalescer_batch_size").bounds == \
            SIZE_BUCKETS
        assert reg.histogram("repro_wave_seconds").bounds == TIME_BUCKETS
        explicit = reg.histogram("custom_thing", buckets=(1.0, 2.0))
        assert explicit.bounds == (1.0, 2.0)

    def test_histogram_observation_lands_in_buckets(self):
        h = Histogram("x_size", (), (1.0, 4.0, 16.0))
        for v in (0.5, 1.0, 3.0, 20.0):
            h.observe(v)
        # bisect_left: a value equal to a bound counts in that bucket
        assert h.counts == [2, 1, 0, 1]
        assert h.count == 4 and h.sum == 24.5

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", (), (4.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", (), ())

    def test_snapshot_is_json_ready_and_sorted(self):
        reg = MetricsRegistry()
        reg.histogram("z_seconds").observe(0.01)
        reg.gauge("a_level").set(7)
        reg.counter("m_total").inc()
        records = reg.snapshot()
        assert [r["name"] for r in records] == \
            ["a_level", "m_total", "z_seconds"]
        json.dumps(records)  # plain data all the way down
        reg.clear()
        assert reg.snapshot() == [] and len(reg) == 0


# ----------------------------------------------------------------------
# the switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_disabled_by_default_and_helpers_noop(self):
        assert obs.ENABLED is False and obs.enabled() is False
        obs.inc("repro_waves_total")
        obs.set_gauge("repro_backend_threshold", 9, kernel="bfs")
        obs.observe("repro_wave_seconds", 0.01)
        obs.emit_span("wave", 0.01)
        assert obs.snapshot() == [] and obs.span_records() == []

    def test_span_yields_none_while_disabled(self):
        with obs.span("planner.execute") as span_obj:
            assert span_obj is None
        assert obs.span_records() == []

    def test_enable_records_and_reset_clears(self):
        obs.enable()
        assert obs.ENABLED
        obs.inc("repro_waves_total", kernel="bfs")
        with obs.span("wave") as span_obj:
            assert span_obj is not None
        assert len(obs.snapshot()) == 1
        assert len(obs.span_records()) == 1
        obs.reset()
        assert not obs.ENABLED
        assert obs.snapshot() == [] and obs.span_records() == []

    def test_disable_keeps_recorded_data(self):
        obs.enable()
        obs.inc("repro_plans_total")
        obs.disable()
        obs.inc("repro_plans_total")  # dropped — switch is off
        assert obs.snapshot()[0]["value"] == 1.0


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_nested_spans_share_trace_and_parent_link(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        outer_rec, = [r for r in obs.span_records()
                      if r["name"] == "outer"]
        inner_rec, = [r for r in obs.span_records()
                      if r["name"] == "inner"]
        # children finish first; both carry start <= end
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert outer_rec["start"] <= outer_rec["end"]

    def test_currency_restored_after_block(self):
        obs.enable()
        assert obs.current_context() is None
        with obs.span("outer") as outer:
            assert obs.current_context() == outer.context()
        assert obs.current_context() is None

    def test_emit_span_backdates_start(self):
        obs.enable()
        obs.emit_span("wave", 1.5, kernel="bfs")
        record, = obs.span_records()
        assert record["end"] - record["start"] == pytest.approx(1.5,
                                                                abs=0.1)
        assert record["attrs"] == {"kernel": "bfs"}

    def test_activate_reparents_to_carried_context(self):
        obs.enable()
        ctx = TraceContext(trace_id="t" * 16, span_id="s" * 16)
        with obs.activate(ctx):
            with obs.span("worker.execute") as span_obj:
                assert span_obj.trace_id == ctx.trace_id
                assert span_obj.parent_id == ctx.span_id
        assert obs.current_context() is None

    def test_take_spans_drains_and_ingest_adopts(self):
        obs.enable()
        obs.emit_span("wave", 0.01)
        drained = obs.take_spans()
        assert len(drained) == 1 and obs.span_records() == []
        assert obs.ingest(drained + ["not-a-record", None]) == 1
        assert obs.span_records() == drained

    def test_span_buffer_is_bounded(self):
        obs.enable()
        limit = obs._SPAN_LIMIT
        for i in range(limit + 10):
            obs.emit_span("wave", 0.0, seq=i)
        records = obs.span_records()
        assert len(records) == limit
        assert records[-1]["attrs"]["seq"] == limit + 9
        assert records[0]["attrs"]["seq"] == 10  # oldest evicted


class TestTraceContext:
    def test_dict_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 8, span_id="cd" * 8)
        back = TraceContext.from_dict(ctx.to_dict())
        assert back == ctx
        assert TraceContext.from_dict(ctx) is ctx

    @pytest.mark.parametrize("wire", [
        None, "garbage", 42, {}, {"trace_id": "x"},
        {"trace_id": 1, "span_id": 2},
        {"trace_id": "x", "span_id": None},
    ])
    def test_malformed_wire_degrades_to_untraced(self, wire):
        assert TraceContext.from_dict(wire) is None


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_prometheus_counters_and_gauges(self):
        obs.enable()
        obs.inc("repro_waves_total", 3, kernel="bfs", backend="pyloops")
        obs.set_gauge("repro_backend_threshold", 512, kernel="bfs")
        text = obs.render_prometheus()
        assert "# TYPE repro_waves_total counter" in text
        assert ('repro_waves_total{backend="pyloops",kernel="bfs"} 3'
                in text)
        assert "# TYPE repro_backend_threshold gauge" in text
        assert 'repro_backend_threshold{kernel="bfs"} 512' in text

    def test_prometheus_histogram_is_cumulative(self):
        obs.enable()
        obs.observe("repro_coalescer_batch_size", 2.0)
        obs.observe("repro_coalescer_batch_size", 3.0)
        obs.observe("repro_coalescer_batch_size", 5000.0)  # overflow
        text = obs.render_prometheus()
        assert ('repro_coalescer_batch_size_bucket{le="2"} 1' in text)
        assert ('repro_coalescer_batch_size_bucket{le="4"} 2' in text)
        assert ('repro_coalescer_batch_size_bucket{le="1024"} 2'
                in text)
        assert ('repro_coalescer_batch_size_bucket{le="+Inf"} 3'
                in text)
        assert "repro_coalescer_batch_size_count 3" in text

    def test_prometheus_escapes_label_values(self):
        text = render_prometheus([{
            "kind": "counter", "name": "odd",
            "labels": {"path": 'a"b\\c\nd'}, "value": 1.0,
        }])
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_jsonl_dump_round_trips(self):
        obs.enable()
        obs.inc("repro_plans_total")
        obs.emit_span("wave", 0.01, kernel="bfs")
        buf = io.StringIO()
        assert obs.write_jsonl(buf) == 2
        records = [json.loads(line)
                   for line in buf.getvalue().splitlines()]
        assert [r["kind"] for r in records] == ["counter", "span"]
        assert records[1]["attrs"] == {"kernel": "bfs"}
        assert write_jsonl(io.StringIO(), [], []) == 0

    def test_metrics_server_serves_live_render(self):
        obs.enable()
        obs.inc("repro_scrapes_total")
        with obs.MetricsServer(obs.render_prometheus) as server:
            url = f"http://{server.host}:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as reply:
                body = reply.read().decode("utf-8")
                assert reply.headers["Content-Type"].startswith(
                    "text/plain")
            assert "repro_scrapes_total 1" in body
            obs.inc("repro_scrapes_total")  # live: next GET sees it
            with urllib.request.urlopen(url, timeout=5) as reply:
                assert "repro_scrapes_total 2" in \
                    reply.read().decode("utf-8")


# ----------------------------------------------------------------------
# the instrumented stack: engine seams and the thin-view publish
# ----------------------------------------------------------------------
class TestInstrumentedSession:
    def test_enabled_session_records_at_the_seams(self, grid4):
        obs.enable()
        session = Session(grid4, delta=False)
        answers = session.answer([DistanceQuery(0, 15, [(0, 1)]),
                                  VectorQuery(1, [(0, 1)])])
        assert all(a.value is not None for a in answers)
        records = obs.snapshot()
        assert _by_name(records, "repro_plans_total")[0]["value"] >= 1
        waves = _by_name(records, "repro_waves_total")
        assert waves and all(r["labels"]["backend"] for r in waves)
        sizes = _by_name(records, "repro_wave_batch_size")
        assert sizes and sizes[0]["count"] >= 1
        by_prov = _by_name(records, "repro_answers_total")
        assert sum(r["value"] for r in by_prov) == len(answers)
        names = {r["name"] for r in obs.span_records()}
        assert {"planner.execute", "wave"} <= names

    def test_disabled_session_records_nothing(self, grid4):
        session = Session(grid4)
        session.answer([DistanceQuery(0, 15)])
        assert obs.snapshot() == [] and obs.span_records() == []

    def test_publish_mirrors_stats_and_cache_info(self, grid4):
        obs.enable()
        session = Session(grid4, delta=False)
        session.answer([DistanceQuery(0, 15, [(0, 1)])])
        session.stats.publish(client="t0")
        session.cache_info().publish()
        records = obs.snapshot()
        answers_gauge, = _by_name(records, "repro_session_answers")
        assert answers_gauge["value"] == float(session.stats.answers)
        assert answers_gauge["labels"] == {"client": "t0"}
        maxsize, = _by_name(records, "repro_cache_maxsize")
        assert maxsize["value"] == float(session.cache_info().maxsize)
        backends = _by_name(records, "repro_cache_wave_backends")
        assert backends and all(r["labels"]["backend"]
                                for r in backends)

    def test_publish_is_noop_while_disabled(self, grid4):
        session = Session(grid4)
        session.answer([DistanceQuery(0, 15)])
        session.stats.publish()
        session.cache_info().publish()
        assert obs.snapshot() == []
