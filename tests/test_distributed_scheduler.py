"""Tests for random-delay scheduling (Theorem 35)."""

import pytest

from repro.graphs import generators
from repro.core.weights import AntisymmetricWeights
from repro.distributed.scheduler import (
    run_concurrent_bfs,
    run_concurrent_instances,
    theorem35_bound,
)
from repro.spt.apsp import diameter
from repro.spt.trees import ShortestPathTree


@pytest.fixture(scope="module")
def setup():
    g = generators.torus(4, 4)
    atw = AntisymmetricWeights.random(g, f=1, seed=3)
    return g, atw


class TestConcurrentBFS:
    def test_all_trees_correct(self, setup):
        g, atw = setup
        sources = [0, 5, 10, 15]
        trees, _stats = run_concurrent_bfs(
            g, sources, atw.weight, atw.scale, seed=7
        )
        for s in sources:
            central = ShortestPathTree.compute(g, s, atw.weight, atw.scale)
            assert trees[s].edge_set() == central.edge_set()

    def test_makespan_within_theorem35(self, setup):
        g, atw = setup
        sources = list(range(0, g.n, 2))
        trees, stats = run_concurrent_bfs(
            g, sources, atw.weight, atw.scale, seed=1
        )
        bound = theorem35_bound(
            stats.max_edge_congestion, diameter(g) + len(sources), g.n
        )
        assert stats.rounds <= bound

    def test_contention_recorded(self, setup):
        g, atw = setup
        sources = [0, 1, 2, 3]  # clustered sources collide
        _trees, stats = run_concurrent_bfs(
            g, sources, atw.weight, atw.scale, seed=2
        )
        assert stats.max_edge_congestion >= 1
        assert stats.max_queue_delay >= 0

    def test_single_source_degenerates(self, setup):
        g, atw = setup
        trees, stats = run_concurrent_bfs(
            g, [0], atw.weight, atw.scale, seed=5, max_delay=0
        )
        central = ShortestPathTree.compute(g, 0, atw.weight, atw.scale)
        assert trees[0].edge_set() == central.edge_set()


class TestConcurrentInstances:
    def test_faulted_instances(self, setup):
        g, atw = setup
        fault = (0, 1)
        instances = [
            ("plain", 0, (), 0),
            ("faulted", 0, (fault,), 1),
        ]
        trees, _stats = run_concurrent_instances(
            g, instances, atw.weight, atw.scale
        )
        assert fault in trees["plain"].edge_set() or True  # may or may not use it
        assert fault not in trees["faulted"].edge_set()
        central = ShortestPathTree.compute(
            g.without([fault]), 0, atw.weight, atw.scale
        )
        assert trees["faulted"].edge_set() == central.edge_set()

    def test_duplicate_sources_different_tags(self, setup):
        g, atw = setup
        instances = [("a", 0, (), 0), ("b", 0, (), 3)]
        trees, _stats = run_concurrent_instances(
            g, instances, atw.weight, atw.scale
        )
        assert trees["a"].edge_set() == trees["b"].edge_set()


class TestBound:
    def test_formula(self):
        assert theorem35_bound(10, 5, 16) == 10 + 5 * 4
        assert theorem35_bound(0, 1, 2) == 1.0
