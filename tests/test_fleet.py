"""The engine fleet (repro.fleet): protocol spawn-safety, routing,
capacity accounting, worker lifecycle, and FleetSession conformance.

The general Session-surface conformance lives in test_query_api.py
(the facade tests parametrised over the `make_session` factory); this
module covers what is fleet-specific — the pickle seam, the router's
affinity guarantees, the registry's degradation ladder, and the
merged reports.
"""

import io
import pickle
import warnings
from multiprocessing.reduction import ForkingPickler

import pytest

from repro.exceptions import FleetError, QueryError
from repro.graphs import generators
from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    PairQuery,
    Session,
    VectorQuery,
)
from repro.fleet import (
    FleetSession,
    Router,
    TenantSpec,
    WorkerCapacity,
    WorkerRegistry,
    fault_hash,
)
from repro.fleet.protocol import (
    ErrorReply,
    ExecuteReply,
    ExecuteRequest,
    InitRequest,
    JobRequest,
    PingRequest,
    ReportRequest,
    ShutdownRequest,
    raise_reply,
    request_weight,
)
from repro import obs
from repro.obs import TraceContext
from repro.scenarios import CacheInfo, random_fault_sets


def _spawn_roundtrip(obj):
    """Round-trip through the reducer multiprocessing actually uses.

    Connection.send pickles with ForkingPickler under every start
    method, so this is the exact seam a message must survive — under
    ``spawn`` there is no inherited state to hide behind.
    """
    buf = io.BytesIO()
    ForkingPickler(buf, pickle.HIGHEST_PROTOCOL).dump(obj)
    return pickle.loads(buf.getvalue())


def _mixed_stream(g, seed=0, scenarios=5):
    stream = []
    for F in random_fault_sets(g, 2, scenarios, seed=seed):
        stream += [
            DistanceQuery(0, g.n - 1, F),
            PairQuery(1, g.n - 2, F),
            VectorQuery(2, F),
            EccentricityQuery(3, F),
            ConnectivityQuery(F),
        ]
    return stream


# ----------------------------------------------------------------------
# spawn-safety: everything that crosses the worker boundary pickles
# ----------------------------------------------------------------------
class TestSpawnSafety:
    def test_tenant_spec_roundtrips(self, grid4, grid_scheme):
        spec = TenantSpec(name="t", graph=grid4, memoize=128,
                          delta=False, scheme=grid_scheme,
                          warm_sources=(0, 5))
        back = _spawn_roundtrip(spec)
        assert back.name == "t" and back.memoize == 128
        assert back.graph.n == grid4.n and back.graph.m == grid4.m
        assert back.warm_sources == (0, 5)

    def test_requests_roundtrip(self, grid4):
        for request in (
            InitRequest(tenants=(TenantSpec("d", grid4),)),
            ExecuteRequest(tenant="d",
                           queries=(DistanceQuery(0, 15, [(0, 1)]),
                                    VectorQuery(1),
                                    ConnectivityQuery())),
            JobRequest(tenant="d", method="preserver_violations",
                       args=(((0, 1),), (0,), ((),), None)),
            ReportRequest(),
            PingRequest(),
            ShutdownRequest(),
        ):
            assert _spawn_roundtrip(request) == request

    def test_queries_and_answers_roundtrip(self, grid4):
        stream = _mixed_stream(grid4, seed=2, scenarios=3)
        assert _spawn_roundtrip(stream) == stream
        answers = Session(grid4).answer(stream)
        back = _spawn_roundtrip(answers)
        assert [a.value for a in back] == [a.value for a in answers]
        assert [a.provenance for a in back] == [
            a.provenance for a in answers]

    def test_engine_construction_args_roundtrip(self, grid4):
        # what a worker actually builds its engines from
        kwargs = {"memoize": 64, "delta": True}
        graph, kwargs2 = _spawn_roundtrip((grid4, kwargs))
        session = Session(graph, **kwargs2)
        assert session.answer_one(DistanceQuery(0, 15)).value == 6

    def test_cache_info_and_stats_roundtrip(self, grid4):
        session = Session(grid4)
        session.answer(_mixed_stream(grid4, seed=1, scenarios=2))
        info = session.cache_info()
        assert _spawn_roundtrip(info) == info
        stats = _spawn_roundtrip(session.stats)
        assert stats.answers == session.stats.answers

    def test_trace_and_span_fields_roundtrip(self, grid4):
        ctx = TraceContext(trace_id="ab" * 8, span_id="cd" * 8)
        request = ExecuteRequest(tenant="d",
                                 queries=(ConnectivityQuery(),),
                                 trace=ctx.to_dict())
        back = _spawn_roundtrip(request)
        assert back == request
        assert TraceContext.from_dict(back.trace) == ctx
        assert _spawn_roundtrip(ctx) == ctx  # the context itself too
        record = {"kind": "span", "name": "worker.execute",
                  "trace_id": ctx.trace_id, "span_id": "ee" * 8,
                  "parent_id": ctx.span_id, "start": 0.0, "end": 1.0,
                  "attrs": {"worker": "w0"}}
        reply = _spawn_roundtrip(ExecuteReply(worker="w0", answers=(),
                                              spans=(record,)))
        assert reply.spans == (record,)

    def test_untraced_protocol_defaults(self):
        # pre-obs shape: no trace on the way out, no spans back
        assert ExecuteRequest(tenant="d", queries=()).trace is None
        assert ExecuteReply(worker="w0", answers=()).spans == ()

    def test_error_reply_reraises_repro_types(self):
        reply = ErrorReply(worker="w0", exc_type="QueryError",
                           message="bad stream")
        with pytest.raises(QueryError, match="bad stream"):
            raise_reply(reply)
        with pytest.raises(FleetError, match="ZeroDivisionError"):
            raise_reply(ErrorReply(worker="w0",
                                   exc_type="ZeroDivisionError",
                                   message="boom"))

    def test_request_weight(self):
        assert request_weight(PingRequest()) == 1
        assert request_weight(
            ExecuteRequest(tenant="d",
                           queries=(ConnectivityQuery(),) * 5)
        ) == 5


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
class TestRouter:
    def test_fault_hash_is_process_stable(self):
        # pinned value: crc32 of the repr, no interpreter salt
        key = ((0, 1), (2, 3))
        assert fault_hash(key) == fault_hash(key)
        import zlib

        assert fault_hash(key) == zlib.crc32(repr(key).encode())

    def test_fault_affinity(self, grid4):
        router = Router("faults")
        stream = _mixed_stream(grid4, seed=4)
        shards = router.shard(stream, ["w0", "w1", "w2"])
        owner = {}
        for worker, indices in shards.items():
            for i in indices:
                key = stream[i].fault_key
                assert owner.setdefault(key, worker) == worker, (
                    "one fault set split across workers")

    def test_deterministic_across_instances(self, grid4):
        stream = _mixed_stream(grid4, seed=7)
        a = Router("faults").shard(stream, ["w0", "w1"])
        b = Router("faults").shard(stream, ["w0", "w1"])
        assert a == b

    def test_routes_around_full_workers(self, grid4):
        stream = _mixed_stream(grid4, seed=4)
        shards = Router("faults").shard(stream, ["w1", "w2"])
        assert "w0" not in shards
        assert sorted(i for idx in shards.values() for i in idx) == \
            list(range(len(stream)))

    def test_source_policy_partitions_by_range(self):
        router = Router("source", n=100)
        stream = [VectorQuery(s, [(0, 1)]) for s in range(100)]
        shards = router.shard(stream, ["w0", "w1"])
        assert shards["w0"] == list(range(50))
        assert shards["w1"] == list(range(50, 100))

    def test_auto_prefers_source_for_vector_heavy_streams(self):
        router = Router("auto", n=100)
        # one fault set, many sources: fault-hashing would idle w1
        stream = [VectorQuery(s, [(0, 1)]) for s in range(0, 100, 5)]
        assert router.resolve(stream, ["w0", "w1"]) == "source"
        assert len(router.shard(stream, ["w0", "w1"])) == 2
        # sourceless queries force fault sharding
        assert router.resolve([ConnectivityQuery()], ["w0", "w1"]) \
            == "faults"

    def test_unknown_policy_raises(self):
        with pytest.raises(FleetError, match="unknown routing policy"):
            Router("roundrobin")

    def test_zero_eligible_raises(self):
        with pytest.raises(FleetError, match="zero eligible"):
            Router("faults").shard([ConnectivityQuery()], [])


# ----------------------------------------------------------------------
# capacity accounting
# ----------------------------------------------------------------------
class TestCapacity:
    def test_over_commit_math(self):
        cap = WorkerCapacity(worker="w0", total_bytes=1000,
                             used_bytes=900, wave_bytes=50,
                             in_flight=2, over_commit=1.5)
        assert cap.committed_bytes == 1500
        assert cap.booked_bytes == 1000
        assert cap.available_bytes == 500
        assert cap.has_room

    def test_full_worker_has_no_room(self):
        cap = WorkerCapacity(worker="w0", total_bytes=1000,
                             used_bytes=1000, wave_bytes=0,
                             in_flight=0, over_commit=1.0)
        assert not cap.has_room

    def test_unreported_worker_has_room(self):
        cap = WorkerCapacity(worker="w0", total_bytes=0, used_bytes=0,
                             wave_bytes=0, in_flight=0, over_commit=1.0)
        assert cap.has_room

    def test_in_flight_books_against_capacity(self):
        cap = WorkerCapacity(worker="w0", total_bytes=1000,
                             used_bytes=500, wave_bytes=100,
                             in_flight=5, over_commit=1.0)
        assert cap.available_bytes == 0 and not cap.has_room

    def test_registry_reports_fill_the_book(self, grid4):
        with WorkerRegistry([TenantSpec("d", grid4, memoize=32)],
                            workers=2) as registry:
            registry.reports()
            caps = registry.capacities()
            assert set(caps) == {"w0", "w1"}
            vector_bytes = grid4.n * 8
            assert all(c.total_bytes == 32 * vector_bytes
                       for c in caps.values())
            assert all(c.wave_bytes == vector_bytes
                       for c in caps.values())

    def test_saturated_fleet_keeps_all_workers_eligible(self, grid4):
        with WorkerRegistry([TenantSpec("d", grid4, memoize=4)],
                            workers=2) as registry:
            # drive both workers' tiny caches to capacity
            for name in registry.workers:
                registry.dispatch({name: ExecuteRequest(
                    tenant="d",
                    queries=tuple(VectorQuery(s, [(0, 1)])
                                  for s in range(8)),
                )})
            registry.reports()
            assert all(not c.has_room
                       for c in registry.capacities().values())
            assert sorted(registry.routing_candidates()) == ["w0", "w1"]


# ----------------------------------------------------------------------
# registry lifecycle and degradation
# ----------------------------------------------------------------------
class TestRegistry:
    def test_configuration_errors(self, grid4):
        spec = TenantSpec("d", grid4)
        with pytest.raises(FleetError, match="at least one worker"):
            WorkerRegistry([spec], workers=0)
        with pytest.raises(FleetError, match="at least one tenant"):
            WorkerRegistry([], workers=1)
        with pytest.raises(FleetError, match="duplicate tenant"):
            WorkerRegistry([spec, TenantSpec("d", grid4)])
        with pytest.raises(FleetError, match="over_commit"):
            WorkerRegistry([spec], over_commit=0)

    def test_ping_and_close(self, grid4):
        registry = WorkerRegistry([TenantSpec("d", grid4)], workers=2)
        assert registry.ping() == {"w0": True, "w1": True}
        registry.close()
        assert not any(h.alive for h in registry._handles.values())
        registry.close()  # idempotent

    def test_respawn_after_worker_death(self, grid4):
        with WorkerRegistry([TenantSpec("d", grid4)],
                            workers=2) as registry:
            registry.start()
            victim = registry._handles["w0"]
            victim.process.terminate()
            victim.process.join()
            with pytest.warns(RuntimeWarning, match="respawning"):
                replies = registry.dispatch({
                    "w0": ExecuteRequest(
                        tenant="d",
                        queries=(DistanceQuery(0, 15, [(0, 1)]),)),
                })
            assert replies["w0"].answers[0].value == 6
            assert registry.respawns == 1
            assert registry.serial_fallbacks == 0
            assert registry.ping()["w0"]

    def test_serial_fallback_when_respawn_fails(self, grid4,
                                                monkeypatch):
        with WorkerRegistry([TenantSpec("d", grid4)],
                            workers=2) as registry:
            registry.start()
            victim = registry._handles["w1"]
            victim.process.terminate()
            victim.process.join()

            def _no_respawn(handle):
                raise OSError("no processes left")

            monkeypatch.setattr(registry, "_respawn", _no_respawn)
            with pytest.warns(RuntimeWarning, match="serial fallback"):
                replies = registry.dispatch({
                    "w1": ExecuteRequest(
                        tenant="d",
                        queries=(DistanceQuery(0, 15, [(0, 1)]),)),
                })
            answer = replies["w1"].answers[0]
            assert answer.value == 6
            assert answer.provenance.worker == "serial"
            assert registry.serial_fallbacks == 1


# ----------------------------------------------------------------------
# FleetSession
# ----------------------------------------------------------------------
class TestFleetSession:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_answers_equal_local_session(self, er_medium, workers):
        stream = _mixed_stream(er_medium, seed=3, scenarios=6)
        reference = Session(er_medium).answer(stream)
        with FleetSession(er_medium, workers=workers) as fleet:
            answers = fleet.answer(stream)
        assert len(answers) == len(stream)
        for a, b in zip(answers, reference):
            assert a.query == b.query
            assert a.value == b.value

    def test_worker_provenance_and_shares(self, er_medium):
        stream = _mixed_stream(er_medium, seed=3, scenarios=8)
        with FleetSession(er_medium, workers=2) as fleet:
            answers = fleet.answer(stream)
            names = {a.provenance.worker for a in answers}
            assert names <= {"w0", "w1"} and len(names) == 2
            shares = fleet.stats.by_worker
            assert sum(shares.values()) == len(stream)

    def test_merged_cache_info_is_sum_of_worker_reports(self,
                                                        er_medium):
        with FleetSession(er_medium, workers=2) as fleet:
            fleet.answer(_mixed_stream(er_medium, seed=5, scenarios=6))
            reports = fleet.worker_reports()
            per_worker = [info for rep in reports.values()
                          for _, info in rep.cache_infos]
            merged = fleet.cache_info()
            assert merged == CacheInfo.merge(per_worker)
            for name in merged.keys():
                if name == "wave_backends":
                    continue
                assert merged[name] == sum(i[name] for i in per_worker)

    def test_multi_tenant_budgets_and_isolation(self, grid4, torus4):
        with FleetSession(graphs={"a": grid4, "b": torus4},
                          budgets={"b": 8}, workers=2) as fleet:
            a = fleet.answer_one(DistanceQuery(0, 15, [(0, 1)]),
                                 tenant="a")
            assert a.value == 6
            # hammer tenant b's tiny budget
            fleet.answer([VectorQuery(s, [(0, 1)])
                          for s in range(torus4.n)], tenant="b")
            for report in fleet.worker_reports().values():
                infos = dict(report.cache_infos)
                assert infos["b"].maxsize == 8
                assert infos["a"].maxsize == 4096
                # b's evictions never touch a's cache
                assert infos["a"].evictions == 0
                assert infos["a"].vector_evictions == 0

    def test_tenant_validation(self, grid4, torus4):
        with pytest.raises(FleetError, match="exactly one"):
            FleetSession(grid4, graphs={"a": grid4})
        with pytest.raises(FleetError, match="exactly one"):
            FleetSession()
        with pytest.raises(FleetError, match="no graph"):
            FleetSession(graphs={"a": grid4}, budgets={"zzz": 4})
        with FleetSession(graphs={"a": grid4, "b": torus4},
                          workers=1) as fleet:
            with pytest.raises(FleetError, match="pass tenant"):
                fleet.answer([ConnectivityQuery()])
            with pytest.raises(FleetError, match="unknown tenant"):
                fleet.answer([ConnectivityQuery()], tenant="c")
            with pytest.raises(FleetError, match="use tenant_graph"):
                fleet.graph
            assert fleet.tenant_graph("a") is grid4

    def test_query_error_propagates_and_queue_drains(self, grid4):
        with FleetSession(grid4, workers=2) as fleet:
            fleet.submit(DistanceQuery(0, 99))  # unknown vertex
            with pytest.raises(QueryError, match="unknown"):
                fleet.gather()
            assert fleet.pending == 0
            # the fleet is not poisoned
            assert fleet.answer_one(DistanceQuery(0, 15)).value == 6

    def test_mixed_weightedness_caught_before_sharding(self, grid4):
        # the two contradicting queries have different fault sets, so
        # sharding could send each to a different worker where both
        # shards would look internally consistent — the parent-side
        # check must catch it first
        with FleetSession(grid4, workers=2) as fleet:
            with pytest.raises(QueryError, match="mixed"):
                fleet.answer([
                    DistanceQuery(0, 1, weighted=False),
                    DistanceQuery(0, 2, [(0, 1)], weighted=True),
                ])

    def test_spawn_start_method_end_to_end(self, grid4):
        with FleetSession(grid4, workers=2,
                          start_method="spawn") as fleet:
            stream = _mixed_stream(grid4, seed=1, scenarios=3)
            answers = fleet.answer(stream)
            reference = Session(grid4).answer(stream)
            assert [a.value for a in answers] == [
                a.value for a in reference]

    def test_warm_sources_preload_base_vectors(self, grid4):
        with FleetSession(grid4, workers=1,
                          warm_sources=(0, 5)) as fleet:
            fleet.registry.start()
            # the warm vectors were computed at init, before any query
            (report,) = fleet.worker_reports().values()
            assert report.capacity.used_bytes == 0  # LRU still empty
            a = fleet.answer_one(VectorQuery(0))
            assert a.value[15] == 6

    def test_preserver_and_midpoint_jobs(self, grid4, grid_scheme):
        with FleetSession(grid4, workers=2) as fleet:
            edges = list(grid4.edges())
            targets = list(grid4.vertices())
            local = Session(grid4)
            assert fleet.preserver_violations(
                edges, [0, 15], [()], targets=targets
            ) == local.preserver_violations(
                edges, [0, 15], [()], targets)
            fault = edges[0]
            assert fleet.midpoint_scan(
                grid_scheme, 0, 15, [fault]
            ) == local.midpoint_scan(grid_scheme, 0, 15, [fault])

    def test_gathers_counter_and_repr(self, grid4):
        with FleetSession(grid4, workers=1) as fleet:
            fleet.submit(ConnectivityQuery()).gather()
            assert fleet.gathers == 1
            assert "FleetSession(" in repr(fleet)
            assert fleet.tenants == ("default",)


# ----------------------------------------------------------------------
# cross-process tracing through the fleet
# ----------------------------------------------------------------------
class TestTracedFleet:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        obs.reset()
        yield
        obs.reset()

    def test_worker_spans_link_into_one_cross_process_chain(self,
                                                            grid4):
        obs.enable()
        with FleetSession(grid4, workers=2) as fleet:
            with obs.span("test.root") as root:
                answers = fleet.answer(
                    [DistanceQuery(0, 15, [(0, 1)]),
                     DistanceQuery(0, 15, [(1, 2)])])
        assert [a.value for a in answers] == [6, 6]
        records = obs.span_records()
        by_id = {r["span_id"]: r for r in records}
        # everything — parent-side gather AND worker-side execution,
        # brought home via ExecuteReply.spans — shares the root trace
        assert {r["trace_id"] for r in records} == {root.trace_id}
        gathers = [r for r in records if r["name"] == "fleet.gather"]
        executes = [r for r in records
                    if r["name"] == "worker.execute"]
        assert len(gathers) == 1 and executes
        assert gathers[0]["parent_id"] == root.span_id
        for record in executes:
            assert record["parent_id"] == gathers[0]["span_id"]
            assert record["attrs"]["worker"] in ("w0", "w1")
        # the worker-side planner/wave spans chain under the execute
        plans = [r for r in records if r["name"] == "planner.execute"]
        assert plans
        assert {r["parent_id"] for r in plans} <= set(
            r["span_id"] for r in executes)
        waves = [r for r in records if r["name"] == "wave"]
        assert waves
        for record in waves:
            assert by_id[record["parent_id"]]["name"] == \
                "planner.execute"

    def test_untraced_fleet_returns_no_spans(self, grid4):
        # obs disabled: requests go out untraced, workers stay quiet
        with FleetSession(grid4, workers=1) as fleet:
            fleet.answer([DistanceQuery(0, 15)])
        assert obs.span_records() == []
