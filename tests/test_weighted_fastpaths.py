"""Randomized cross-checks: weighted flat kernels == reference Dijkstra.

The dict-and-heap loop (:func:`repro.spt.dijkstra.dijkstra_reference`)
is the reference; the flat-array kernels behind the weight-carrying CSR
snapshots must agree with it *exactly* — distances always, parents too
under unique (perturbed antisymmetric) weights.  Hypothesis drives
random connected weighted graphs and random fault sets through both
code paths, and through the weighted :class:`ScenarioEngine`.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import GraphError
from repro.scenarios.engine import ScenarioEngine
from repro.spt.bfs import UNREACHABLE
from repro.spt.dijkstra import (
    count_min_weight_paths,
    dijkstra,
    dijkstra_reference,
)
from repro.spt.fastpaths import (
    csr_count_min_weight_paths,
    csr_dijkstra_flat,
    csr_weighted_distance,
    csr_weighted_distances,
)
from repro.weighted.graph import WeightedGraph

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_graphs_with_faults(draw, min_n=3, max_n=14, max_faults=3):
    """(weighted graph, fault set) with random integer weights."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    wg = WeightedGraph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        wg.add_edge(order[i], order[rng.randrange(i)], rng.randint(1, 9))
    for _ in range(draw(st.integers(0, 2 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not wg.has_edge(u, v):
            wg.add_edge(u, v, rng.randint(1, 9))
    edges = list(wg.edges())
    k = draw(st.integers(0, min(max_faults, len(edges))))
    faults = rng.sample(edges, k)
    return wg, faults


def _vector(dist_map, n):
    return [dist_map.get(v, UNREACHABLE) for v in range(n)]


@given(weighted_graphs_with_faults())
@settings(max_examples=80, **COMMON)
def test_flat_dijkstra_distances_bit_identical(case):
    """dispatch -> flat kernel == reference, full graph and masked view."""
    wg, faults = case
    csr, mask = wg._as_csr()
    assert csr.weights is not None and mask is None
    for s in range(min(wg.n, 4)):
        fast, _ = dijkstra(wg, s, wg.arc_weight)
        ref, _ = dijkstra_reference(wg, s, wg.arc_weight)
        assert fast == ref
    view = wg.without(faults)
    for s in range(min(wg.n, 4)):
        fast, _ = dijkstra(view, s, view.arc_weight)
        ref, _ = dijkstra_reference(view, s, view.arc_weight)
        assert fast == ref


@given(weighted_graphs_with_faults(max_faults=2))
@settings(max_examples=60, **COMMON)
def test_flat_dijkstra_perturbed_antisymmetric_identical(case):
    """Antisymmetric perturbed weights: dist AND parent maps match."""
    wg, _faults = case
    arc_weight, _scale = wg.perturbed_weight(seed=7)
    pcsr = wg.csr().with_arc_weights(arc_weight)
    # the flat array stores both orientations separately
    u, v = next(iter(wg.edges()))
    assert pcsr.arc_weight(u, v) != pcsr.arc_weight(v, u)
    for s in range(min(wg.n, 3)):
        fast_dist, fast_parent = dijkstra(pcsr, s, pcsr.arc_weight)
        ref_dist, ref_parent = dijkstra_reference(wg, s, arc_weight)
        assert fast_dist == ref_dist
        assert fast_parent == ref_parent
    counts = count_min_weight_paths(pcsr, 0, pcsr.arc_weight)
    assert all(c == 1 for c in counts.values())


@given(weighted_graphs_with_faults())
@settings(max_examples=60, **COMMON)
def test_weighted_vector_kernels_match_flat(case):
    """Dense-vector and pairwise kernels agree with the dict kernel."""
    wg, faults = case
    csr = wg.csr()
    mask = csr.without(faults)._as_csr()[1]
    for m in (None, mask):
        dist, _ = csr_dijkstra_flat(csr, m, 0)
        assert csr_weighted_distances(csr, m, 0) == _vector(dist, wg.n)
        for t in (0, wg.n - 1, wg.n // 2):
            assert csr_weighted_distance(csr, m, 0, t) == \
                dist.get(t, UNREACHABLE)


@given(weighted_graphs_with_faults(max_faults=2))
@settings(max_examples=60, **COMMON)
def test_count_min_weight_paths_flat_vs_reference(case):
    """Forward-push flat counting == reference backward DP, with ties."""
    wg, faults = case
    csr = wg.csr()
    mask = csr.without(faults)._as_csr()[1]
    view = wg.without(faults)

    def plain_weight(u, v):
        return wg.weight(u, v)

    assert csr_count_min_weight_paths(csr, mask, 0) == \
        count_min_weight_paths(view, 0, plain_weight)
    assert count_min_weight_paths(wg, 0, wg.arc_weight) == \
        count_min_weight_paths(wg, 0, plain_weight)


@given(weighted_graphs_with_faults())
@settings(max_examples=60, **COMMON)
def test_weighted_engine_matches_reference(case):
    """Engine pair queries and vectors == naive per-scenario Dijkstra."""
    wg, faults = case
    engine = ScenarioEngine(wg)
    assert engine.weighted
    s, t = 0, wg.n - 1
    view = wg.without(faults)
    ref, _ = dijkstra_reference(view, s, view.arc_weight)
    assert engine.pair_replacement_distance(s, t, faults) == \
        ref.get(t, UNREACHABLE)
    assert engine.distance_vectors(s, [faults])[0] == _vector(ref, wg.n)


@given(weighted_graphs_with_faults(max_faults=1))
@settings(max_examples=40, **COMMON)
def test_weighted_touch_filter_no_false_negatives(case):
    """A filtered-out scenario never changes the pair distance."""
    wg, faults = case
    engine = ScenarioEngine(wg, memoize=0)
    s, t = 0, wg.n - 1
    if not engine.faults_touch_pair(s, t, faults):
        view = wg.without(faults)
        ref, _ = dijkstra_reference(view, s, view.arc_weight)
        assert ref.get(t, UNREACHABLE) == engine.base_distances(s)[t]


class TestScenarioMemo:
    def _engine(self, memoize=4096):
        wg = WeightedGraph.random(30, 0.15, seed=4)
        return wg, ScenarioEngine(wg, memoize=memoize)

    def test_repeats_hit_and_match(self):
        wg, engine = self._engine()
        scenarios = [((e),) for e in list(wg.edges())[:10]]
        stream = scenarios * 3
        dists = engine.replacement_distances(0, wg.n - 1, stream)
        info = engine.cache_info()
        assert info["misses"] == len(scenarios)
        assert info["hits"] == 2 * len(scenarios)
        assert dists[:len(scenarios)] * 3 == dists

    def test_orientation_and_duplicates_canonicalised(self):
        wg, engine = self._engine()
        (u, v) = next(iter(wg.edges()))
        d1 = engine.pair_replacement_distance(0, wg.n - 1, [(u, v)])
        d2 = engine.pair_replacement_distance(0, wg.n - 1,
                                              [(v, u), (u, v)])
        assert d1 == d2
        assert engine.cache_info()["hits"] == 1

    def test_bounded_eviction(self):
        wg, engine = self._engine(memoize=4)
        edges = list(wg.edges())[:8]
        for e in edges:
            engine.pair_replacement_distance(0, wg.n - 1, [e])
        assert engine.cache_info()["size"] == 4

    def test_disabled(self):
        wg = WeightedGraph.random(30, 0.15, seed=4)
        # delta=False keeps the delta counters deterministically zero;
        # the memo-disabled contract is what this test pins.
        engine = ScenarioEngine(wg, memoize=0, delta=False)
        e = next(iter(wg.edges()))
        for _ in range(3):
            engine.pair_replacement_distance(0, wg.n - 1, [e])
        info = engine.cache_info()
        assert info == {
            "hits": 0, "misses": 0, "evictions": 0,
            "vector_hits": 0, "vector_misses": 0, "vector_evictions": 0,
            "delta_hits": 0, "delta_fallbacks": 0,
            "pool_fallbacks": 0,
            "size": 0, "maxsize": 0,
            # pair_replacement_distance runs single-source kernels, so
            # no batched wave (and no backend tally) ever fires here
            "wave_backends": (),
        }


class TestAntisymmetricEngine:
    def test_touch_filter_disabled_not_wrong(self):
        # regression: the touch filter reads dist_t[x] as x -> t, which
        # is only valid for symmetric weights; an adopted antisymmetric
        # snapshot used to return stale base distances (and memoise
        # them).  With w(1->0) = 5 != w(0->1) = 1, faulting (0, 1)
        # must surface the weight-10 detour.
        wg = WeightedGraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 10)])
        asym = {(0, 1): 1, (1, 0): 5, (1, 2): 1, (2, 1): 5,
                (0, 2): 10, (2, 0): 10}
        acsr = wg.csr().with_arc_weights(lambda u, v: asym[(u, v)])
        engine = ScenarioEngine(acsr)
        assert engine.weighted and not engine._symmetric_weights
        assert engine.pair_replacement_distance(0, 2, [(0, 1)]) == 10
        assert engine.pair_replacement_distance(0, 2, []) == 2

    @given(weighted_graphs_with_faults(max_faults=2))
    @settings(max_examples=40, **COMMON)
    def test_perturbed_snapshot_engine_matches_kernel(self, case):
        wg, faults = case
        arc_weight, _scale = wg.perturbed_weight(seed=5)
        pcsr = wg.csr().with_arc_weights(arc_weight)
        engine = ScenarioEngine(pcsr)
        mask = pcsr.without(faults)._as_csr()[1]
        s, t = 0, wg.n - 1
        assert engine.pair_replacement_distance(s, t, faults) == \
            csr_weighted_distance(pcsr, mask, s, t)

    def test_symmetric_engine_keeps_filter(self):
        wg = WeightedGraph.random(20, 0.2, seed=3)
        assert ScenarioEngine(wg)._symmetric_weights


class TestWeightedEngineGuards:
    def test_scheme_queries_rejected(self):
        wg = WeightedGraph.random(12, 0.3, seed=1)
        engine = ScenarioEngine(wg)
        try:
            engine.restoration_sweep(None, [])
        except GraphError as err:
            assert "weighted" in str(err)
        else:  # pragma: no cover - regression guard
            raise AssertionError("weighted engine accepted a scheme query")

    def test_perturbed_requires_weighted(self):
        from repro.graphs import generators

        engine = ScenarioEngine(generators.cycle(5))
        try:
            engine.perturbed_csr()
        except GraphError:
            pass
        else:  # pragma: no cover - regression guard
            raise AssertionError("unweighted engine built perturbed CSR")
