"""Tests for serialization (graphs.io) and the CLI."""

import json

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.graphs.io import (
    edgelist_string,
    labeling_from_json,
    labeling_to_json,
    preserver_from_json,
    preserver_to_json,
    read_edgelist,
    write_edgelist,
)


class TestEdgelist:
    def test_round_trip(self, tmp_path):
        g = generators.connected_erdos_renyi(15, 0.2, seed=2)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path) == g

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph(5, [(0, 1)])
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert back.n == 5 and back.m == 1

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# a comment\n3\n\n0 1\n# another\n1 2\n")
        g = read_edgelist(path)
        assert g.n == 3 and g.m == 2

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("3\n0 1 9\n")
        with pytest.raises(GraphError):
            read_edgelist(path)
        path.write_text("")
        with pytest.raises(GraphError):
            read_edgelist(path)
        path.write_text("zebra\n0 1\n")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_string_form(self):
        g = Graph(3, [(0, 1)])
        assert edgelist_string(g) == "3\n0 1"


class TestPreserverJson:
    def test_round_trip(self):
        from repro.preservers import ft_ss_preserver

        g = generators.connected_erdos_renyi(14, 0.2, seed=5)
        p = ft_ss_preserver(g, [0, 7], faults_tolerated=1, seed=1)
        payload = preserver_to_json(p)
        back = preserver_from_json(payload, g)
        assert back.edges == p.edges
        assert back.sources == p.sources
        assert back.faults_tolerated == p.faults_tolerated

    def test_wrong_graph_rejected(self):
        from repro.preservers import ft_ss_preserver

        g = generators.cycle(6)
        p = ft_ss_preserver(g, [0, 3], faults_tolerated=1, seed=1)
        payload = preserver_to_json(p)
        with pytest.raises(GraphError):
            preserver_from_json(payload, generators.cycle(8))

    def test_wrong_kind_rejected(self):
        with pytest.raises(GraphError):
            preserver_from_json(
                json.dumps({"kind": "other"}), generators.cycle(4)
            )


class TestLabelingJson:
    def test_round_trip_preserves_answers_and_sizes(self):
        from repro.labeling import DistanceLabeling
        from repro.spt.bfs import bfs_distances

        g = generators.connected_erdos_renyi(12, 0.3, seed=7)
        lab = DistanceLabeling.build(g, f=0, seed=2)
        back = labeling_from_json(labeling_to_json(lab))
        assert back.faults_tolerated == lab.faults_tolerated
        assert back.max_label_bits() == lab.max_label_bits()
        e = next(iter(g.edges()))
        dist = bfs_distances(g.without([e]), 0)
        for t in range(1, g.n):
            assert back.distance(0, t, [e]) == dist[t]

    def test_wrong_kind_rejected(self):
        with pytest.raises(GraphError):
            labeling_from_json(json.dumps({"kind": "preserver"}))


class TestCli:
    def test_demo(self, capsys):
        from repro.cli import main

        assert main(["demo", "--family", "grid", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "restored via midpoint" in out

    def test_verify(self, capsys):
        from repro.cli import main

        assert main(["verify", "--family", "torus", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 4

    def test_preserver_with_check_and_output(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "p.json"
        code = main([
            "preserver", "--family", "er", "--size", "14",
            "--sources", "0,5,9", "--check", "--output", str(out_file),
        ])
        assert code == 0
        assert "verification: OK" in capsys.readouterr().out
        data = json.loads(out_file.read_text())
        assert data["sources"] == [0, 5, 9]

    def test_labels(self, capsys):
        from repro.cli import main

        assert main(["labels", "--family", "cycle", "--size", "8"]) == 0
        assert "bits" in capsys.readouterr().out

    def test_input_file(self, tmp_path, capsys):
        from repro.cli import main

        g = generators.cycle(6)
        path = tmp_path / "c6.edges"
        write_edgelist(g, path)
        assert main(["demo", "--input", str(path)]) == 0
        assert "n=6" in capsys.readouterr().out

    def test_demo_disconnected_exit_code(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "disc.edges"
        path.write_text("3\n0 1\n")
        assert main(["demo", "--input", str(path)]) == 1

    def test_query(self, capsys):
        from repro.cli import main

        code = main(["query", "--family", "grid", "--size", "4",
                     "--pairs", "5", "--scenarios", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "query stream:" in out
        assert "batched waves" in out
        assert "Session(" in out

    def test_family_choices_cover_by_name(self):
        from repro.cli import FAMILIES

        for family in FAMILIES:
            g = generators.by_name(family, 4, seed=0)
            assert g.n > 0

    def test_unknown_family_exits_2(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["demo", "--family", "zebra"])
        assert exc.value.code == 2
        assert "zebra" in capsys.readouterr().err

    def test_graph_error_exits_2_with_message(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.edges"
        bad.write_text("zebra\n0 1\n")
        assert main(["demo", "--input", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
