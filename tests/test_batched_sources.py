"""Batched multi-source kernels and the cross-pair scenario cache.

The per-source kernels in :mod:`repro.spt.fastpaths` are the reference;
the batched kernels in :mod:`repro.spt.batched` must be bit-identical
to mapping them over the source batch — for every graph, every arc
mask, and every ragged source batch (empty, singleton, all vertices,
duplicates).  Hypothesis drives random graphs and fault choices through
both code paths, and the engine-level batching (``source_vectors``,
``evaluate_pairs``, ``run_pairs``, the shared-LRU vector cache) is
checked against the per-pair reference flow.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.weights import AntisymmetricWeights
from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.scenarios import ScenarioEngine, random_fault_sets, single_edge_faults
from repro.spt.apsp import (
    all_pairs_bfs_distances,
    diameter,
    distance_matrix,
    eccentricities,
    eccentricity,
)
from repro.spt.batched import (
    csr_bfs_distances_many,
    csr_dijkstra_flat_many,
    csr_weighted_distances_many,
)
from repro.spt.bfs import bfs_distances
from repro.spt.fastpaths import (
    csr_bfs_distances,
    csr_dijkstra_flat,
    csr_weighted_distances,
)
from repro.weighted import WeightedGraph

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Suites taking the `backend` fixture (pinning the kernel-backend seam)
# also suppress the function-scoped-fixture health check: the pin is
# idempotent across hypothesis examples.
BACKEND_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


@st.composite
def batched_cases(draw, min_n=2, max_n=14, max_faults=3):
    """(graph, faults, ragged source batch) for the cross-checks."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    g = Graph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    for _ in range(draw(st.integers(0, 2 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    edges = list(g.edges())
    k = draw(st.integers(0, min(max_faults, len(edges))))
    faults = rng.sample(edges, k)
    kind = draw(st.sampled_from(["empty", "single", "all", "duplicates",
                                 "random"]))
    if kind == "empty":
        sources = []
    elif kind == "single":
        sources = [rng.randrange(n)]
    elif kind == "all":
        sources = list(range(n))
    elif kind == "duplicates":
        s = rng.randrange(n)
        sources = [s] * draw(st.integers(2, 4)) + [rng.randrange(n)]
    else:
        sources = [rng.randrange(n)
                   for _ in range(draw(st.integers(1, 2 * n)))]
    return g, faults, sources


@given(batched_cases())
@settings(max_examples=120, **BACKEND_COMMON)
def test_bfs_many_bit_identical(backend, case):
    g, faults, sources = case
    csr = g.csr()
    for mask in (None, csr.without(faults)._as_csr()[1]):
        assert csr_bfs_distances_many(csr, mask, sources) == [
            csr_bfs_distances(csr, mask, s) for s in sources
        ]


@given(batched_cases())
@settings(max_examples=80, **BACKEND_COMMON)
def test_weighted_many_bit_identical(backend, case):
    g, faults, sources = case
    rng = random.Random(11)
    weight = {}
    for u, v in g.edges():
        weight[(u, v)] = weight[(v, u)] = rng.randint(1, 9)
    csr = g.csr().with_arc_weights(lambda u, v: weight[(u, v)])
    for mask in (None, csr.without(faults)._as_csr()[1]):
        assert csr_weighted_distances_many(csr, mask, sources) == [
            csr_weighted_distances(csr, mask, s) for s in sources
        ]


@given(batched_cases())
@settings(max_examples=60, **BACKEND_COMMON)
def test_dijkstra_flat_many_bit_identical(backend, case):
    """Antisymmetric (tiebreaking) weights: dist *and* parents agree."""
    g, faults, sources = case
    atw = AntisymmetricWeights.random(g, f=1, seed=7)
    csr = g.csr().with_arc_weights(atw.weight)
    for mask in (None, csr.without(faults)._as_csr()[1]):
        assert csr_dijkstra_flat_many(csr, mask, sources) == [
            csr_dijkstra_flat(csr, mask, s) for s in sources
        ]


@given(batched_cases())
@settings(max_examples=60, **COMMON)
def test_engine_evaluate_pairs_matches_per_pair(case):
    g, faults, sources = case
    if not sources:
        return
    rng = random.Random(3)
    stream = [
        (s, rng.randrange(g.n), faults) for s in sources
    ] + [(sources[0], g.n - 1, ())]
    batched = ScenarioEngine(g).evaluate_pairs(stream)
    per_pair_engine = ScenarioEngine(g)
    per_pair = [
        per_pair_engine.pair_replacement_distance(s, t, f)
        for s, t, f in stream
    ]
    naive = [
        bfs_distances(g.without(f), s)[t] for s, t, f in stream
    ]
    assert batched == per_pair == naive


class TestKernelEdgeCases:
    def test_empty_batch(self):
        csr = generators.cycle(4).csr()
        assert csr_bfs_distances_many(csr, None, []) == []

    def test_unknown_source_raises(self):
        csr = generators.cycle(4).csr()
        with pytest.raises(GraphError):
            csr_bfs_distances_many(csr, None, [0, 4])

    def test_duplicate_rows_are_independent(self):
        csr = generators.cycle(5).csr()
        a, b = csr_bfs_distances_many(csr, None, [2, 2])
        assert a == b
        wcsr = WeightedGraph.random(8, 0.5, seed=1).csr()
        wa, wb = csr_weighted_distances_many(wcsr, None, [3, 3])
        assert wa == wb and wa is not wb
        (da, pa), (db, pb) = csr_dijkstra_flat_many(wcsr, None, [3, 3])
        assert (da, pa) == (db, pb)
        assert da is not db and pa is not pb

    def test_weighted_many_requires_weights(self):
        csr = generators.cycle(4).csr()
        with pytest.raises(GraphError):
            csr_weighted_distances_many(csr, None, [0])


class TestEngineVectorCache:
    def test_source_vectors_match_reference_and_cache(self):
        g = generators.connected_erdos_renyi(40, 0.1, seed=2)
        engine = ScenarioEngine(g)
        faults = [(0, 1), (3, 7)]
        sources = [0, 5, 5, 9]
        rows = engine.source_vectors(sources, faults)
        ref = [bfs_distances(g.without(faults), s) for s in sources]
        assert rows == ref
        info = engine.cache_info()
        assert info["vector_misses"] == 3  # misses count traversals
        assert info["vector_hits"] == 0
        again = engine.source_vectors(sources, faults)
        assert again == ref
        # ...while hits count served lookups (the duplicate counts).
        assert engine.cache_info()["vector_hits"] == 4
        assert engine.cache_info()["vector_misses"] == 3

    def test_fault_free_batch_shares_base_cache(self):
        g = generators.torus(4, 4)
        engine = ScenarioEngine(g)
        rows = engine.source_vectors([1, 2, 1])
        assert rows == [bfs_distances(g, s) for s in [1, 2, 1]]
        assert engine.cache_info()["size"] == 0  # no LRU churn
        assert engine.base_distances(1) is rows[0]

    def test_pair_query_reuses_cached_vector(self):
        g = generators.connected_erdos_renyi(40, 0.1, seed=5)
        engine = ScenarioEngine(g)
        faults = [next(iter(g.edges()))]
        engine.source_vectors([0], faults)
        before = engine.cache_info()["vector_hits"]
        d = engine.pair_replacement_distance(0, g.n - 1, faults)
        assert d == bfs_distances(g.without(faults), 0)[g.n - 1]
        assert engine.cache_info()["vector_hits"] == before + 1

    def test_shared_eviction_policy_and_counters(self):
        g = generators.cycle(8)
        # delta=False: this test counts raw LRU insertions, and the
        # delta path would add patched-vector entries of its own.
        engine = ScenarioEngine(g, memoize=3, delta=False)
        for e in list(g.edges())[:5]:
            engine.source_vectors([0], [e])
        info = engine.cache_info()
        assert info["size"] == 3
        assert info["vector_evictions"] == 2
        # pair entries now churn the same LRU
        for e in list(g.edges())[:5]:
            engine.pair_replacement_distance(0, 4, [e])
        info = engine.cache_info()
        assert info["size"] == 3
        assert info["vector_evictions"] + info["evictions"] == 7

    def test_memoize_zero_disables_vector_cache(self):
        g = generators.cycle(6)
        engine = ScenarioEngine(g, memoize=0)
        faults = [(0, 1)]
        assert engine.source_vectors([2], faults) == \
            engine.source_vectors([2], faults)
        engine.evaluate_pairs([(2, 4, faults)])
        info = engine.cache_info()
        # disabled memo keeps every counter at zero, like the pair memo
        assert info["size"] == 0
        assert info["vector_hits"] == info["vector_misses"] == 0
        assert info["vector_evictions"] == 0

    def test_run_pairs_alignment(self):
        g = generators.torus(4, 4)
        engine = ScenarioEngine(g)
        stream = [(0, 5, [(0, 1)]), (2, 9, [(1, 0)]), (0, 5, ())]
        results = engine.run_pairs(stream)
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].faults == ((0, 1),)
        for r, (s, t, f) in zip(results, stream):
            assert r.value == (
                s, t, bfs_distances(g.without(f), s)[t]
            )

    def test_evaluate_pairs_validates_target(self):
        engine = ScenarioEngine(generators.cycle(4))
        with pytest.raises(GraphError):
            engine.evaluate_pairs([(0, 99, ())])

    def test_repr_carries_counters(self):
        engine = ScenarioEngine(generators.cycle(5))
        engine.pair_replacement_distance(0, 2, [(0, 1)])
        text = repr(engine)
        assert "pairs=0h/1m" in text and "vectors=" in text


class TestBatchedApsp:
    def test_all_pairs_deduplicates_preserving_order(self):
        g = generators.path(5)
        rows = all_pairs_bfs_distances(g, sources=[3, 1, 3, 1, 4])
        assert list(rows) == [3, 1, 4]
        for s, row in rows.items():
            assert row == bfs_distances(g, s)

    def test_distance_matrix_batched_matches_reference(self):
        g = generators.connected_erdos_renyi(25, 0.15, seed=6)
        assert distance_matrix(g) == [
            bfs_distances(g, s) for s in g.vertices()
        ]

    def test_diameter_on_masked_view(self):
        g = generators.cycle(8)
        view = g.csr().without([(0, 7)])  # cycle minus an edge = path
        assert diameter(view) == 7

    def test_eccentricities_match_per_vertex(self):
        g = generators.torus(4, 5)
        assert eccentricities(g) == [
            eccentricity(g, v) for v in g.vertices()
        ]

    def test_diameter_matches_networkx(self):
        g = generators.connected_erdos_renyi(30, 0.12, seed=9)
        assert diameter(g) == nx.diameter(g.to_networkx())

    def test_disconnected_contract(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            diameter(g)
        with pytest.raises(GraphError):
            eccentricities(g)
        with pytest.raises(GraphError):
            eccentricity(g, 0)
        # ...while the distance-valued helpers encode -1 instead.
        assert distance_matrix(g)[0][2] == -1
        assert all_pairs_bfs_distances(g)[0][3] == -1

    def test_empty_graph_diameter(self):
        assert diameter(Graph(0)) == 0


class TestConsumerEquivalence:
    def test_restoration_sweep_unchanged_by_batching(self):
        g = generators.torus(4, 4)
        from repro.core.scheme import RestorableTiebreaking

        scheme = RestorableTiebreaking.build(g, f=1, seed=3)
        engine = ScenarioEngine(g)
        path = scheme.path(0, 9)
        instances = [(0, 9, e) for e in path.edges()]
        instances += [(1, 9, e) for e in path.edges()]
        for item in engine.restoration_sweep(scheme, instances):
            s, t, e = instances[item.index]
            want = bfs_distances(g.without([e]), s)[t]
            if item.value is None:
                assert want == -1
            else:
                assert item.value[0] == want

    def test_preserver_violations_batched_wave(self):
        g = generators.torus(4, 4)
        engine = ScenarioEngine(g)
        scenarios = list(single_edge_faults(g))[:10]
        sources = [0, 3, 9]
        bad = engine.preserver_violations(g.edges(), sources, scenarios)
        assert bad == []

    def test_dso_rows_unchanged(self):
        from repro.oracles.dso import SourcewiseDSO
        from repro.spt.apsp import replacement_distance

        g = generators.connected_erdos_renyi(30, 0.12, seed=12)
        dso = SourcewiseDSO(g, [0, 7, 19])
        rng = random.Random(0)
        edges = list(g.edges())
        for _ in range(60):
            s = rng.choice([0, 7, 19])
            v = rng.randrange(g.n)
            e = rng.choice(edges)
            assert dso.query(s, v, e) == replacement_distance(g, s, v, [e])

    def test_subset_rp_matches_oracle(self):
        from repro.replacement.subset_rp import subset_replacement_paths
        from repro.spt.apsp import replacement_distance

        g = generators.grid(4, 4)
        result = subset_replacement_paths(g, [0, 5, 15], seed=2)
        for (s1, s2), per_edge in result.distances.items():
            for e, d in per_edge.items():
                assert d == replacement_distance(g, s1, s2, [e])
