"""Tests for restoration-by-concatenation and the restoration lemmas."""

import pytest

from repro.exceptions import DisconnectedError, RestorationError
from repro.graphs import generators
from repro.core.restoration import (
    midpoint_scan,
    restore_by_concatenation,
    tree_fault_free_vertices,
    verify_restoration_lemma,
    verify_weighted_restoration_lemma,
)
from repro.core.scheme import RestorableTiebreaking
from repro.spt.apsp import replacement_distance
from repro.spt.paths import is_replacement_path


class TestTreeFaultFreeVertices:
    def test_marks_subtree_below_fault(self, grid_scheme):
        tree = grid_scheme.tree(0)
        fault = next(iter(tree.edges()))
        good = tree_fault_free_vertices(tree, [fault])
        assert 0 in good
        for v in good:
            assert tree.path_to(v).avoids([fault])
        for v in tree.reached_vertices():
            if v not in good:
                assert not tree.path_to(v).avoids([fault])

    def test_no_faults_everything_good(self, grid_scheme):
        tree = grid_scheme.tree(0)
        good = tree_fault_free_vertices(tree, [])
        assert good == set(tree.reached_vertices())

    def test_off_tree_fault_harmless(self, grid4, grid_scheme):
        tree = grid_scheme.tree(0)
        off_tree = next(e for e in grid4.edges() if e not in tree.edge_set())
        assert tree_fault_free_vertices(tree, [off_tree]) == set(
            tree.reached_vertices()
        )


class TestRestoreByConcatenation:
    def test_single_fault_every_pair_every_edge(self, grid4, grid_scheme):
        for s in (0, 5, 10):
            for t in (15, 3):
                path = grid_scheme.path(s, t)
                for e in path.edges():
                    target = replacement_distance(grid4, s, t, [e])
                    result = restore_by_concatenation(grid_scheme, s, t, [e])
                    assert result.path.hops == target
                    assert is_replacement_path(grid4, result.path, [e], target)
                    assert result.subset == ()

    def test_two_faults_uses_proper_subsets(self, er_small, er_scheme):
        fault_sets = generators.fault_sample(er_small, 12, seed=4, size=2)
        for faults in fault_sets:
            target = replacement_distance(er_small, 0, 9, list(faults))
            if target == -1:
                continue
            result = restore_by_concatenation(er_scheme, 0, 9, faults)
            assert result.path.hops == target
            assert len(result.subset) <= 1  # a *proper* subset of |F|=2

    def test_empty_faults_rejected(self, grid_scheme):
        with pytest.raises(RestorationError):
            restore_by_concatenation(grid_scheme, 0, 15, [])

    def test_disconnecting_fault(self):
        g = generators.path(4)
        scheme = RestorableTiebreaking.build(g, seed=1)
        with pytest.raises(DisconnectedError):
            restore_by_concatenation(scheme, 0, 3, [(1, 2)])

    def test_result_candidate_count(self, grid_scheme):
        result = restore_by_concatenation(grid_scheme, 0, 15, [(0, 1)])
        assert 1 <= result.candidates <= 16


class TestMidpointScan:
    def test_returns_none_when_no_midpoint(self):
        g = generators.path(3)
        scheme = RestorableTiebreaking.build(g, seed=0)
        # fault on the only path: every pi(0, x) or pi(2, x) crosses it
        assert midpoint_scan(scheme, 0, 2, [(1, 2)]) is None

    def test_best_midpoint_optimal_for_restorable(self, grid4, grid_scheme):
        path = grid_scheme.path(0, 15)
        e = next(iter(path.edges()))
        result = midpoint_scan(grid_scheme, 0, 15, [e])
        assert result.path.hops == replacement_distance(grid4, 0, 15, [e])


class TestRestorationLemma:
    """Theorem 1 holds for every instance in undirected unweighted graphs."""

    @pytest.mark.parametrize("family,size", [
        ("grid", 4), ("torus", 4), ("cycle", 7), ("er", 15),
    ])
    def test_theorem1_sweep(self, family, size):
        g = generators.by_name(family, size, seed=2)
        for e in g.edges():
            for s in range(0, g.n, 3):
                for t in range(1, g.n, 4):
                    if s != t:
                        assert verify_restoration_lemma(g, s, t, e)

    def test_vacuous_when_disconnected(self):
        g = generators.path(3)
        assert verify_restoration_lemma(g, 0, 2, (1, 2))


class TestWeightedRestorationLemma:
    """Theorem 11 (specialised to unit weights) holds instance-wise."""

    @pytest.mark.parametrize("family,size", [
        ("grid", 4), ("cycle", 6), ("er", 14),
    ])
    def test_theorem11_sweep(self, family, size):
        g = generators.by_name(family, size, seed=3)
        for e in g.edges():
            for s in range(0, g.n, 4):
                for t in range(2, g.n, 5):
                    if s != t:
                        assert verify_weighted_restoration_lemma(g, s, t, e)

    def test_vacuous_when_disconnected(self):
        g = generators.path(3)
        assert verify_weighted_restoration_lemma(g, 0, 2, (1, 2))
