"""Tests for the declarative query API (repro.query).

Covers the algebra contract (canonical fault keys, frozen value
objects), planner validation (mixed weightedness must raise
QueryError, never silently serve the wrong kernels), answer equality
against the engine's per-call paths, provenance consistency with
cache_info() deltas, and the target-side batching cost model.
"""

import asyncio
import warnings

import pytest

from repro.exceptions import GraphError, QueryError
from repro.graphs import generators
from repro.query import (
    Answer,
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    PairQuery,
    PairReport,
    Planner,
    RestorationQuery,
    Session,
    VectorQuery,
)
from repro.scenarios import CacheInfo, ScenarioEngine, random_fault_sets
from repro.spt.bfs import UNREACHABLE
from repro.weighted.graph import WeightedGraph


def _quiet_engine(graph, **kwargs) -> ScenarioEngine:
    return ScenarioEngine(graph, **kwargs)


def _reference_value(engine, q):
    """The per-call engine answer for one query (deprecated surface)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if isinstance(q, DistanceQuery):
            return engine.pair_replacement_distance(
                q.source, q.target, q.faults
            )
        if isinstance(q, PairQuery):
            return PairReport(
                base=engine.base_distances(q.source)[q.target],
                distance=engine.pair_replacement_distance(
                    q.source, q.target, q.faults
                ),
            )
        if isinstance(q, VectorQuery):
            return engine.source_vector(q.source, q.faults)
        if isinstance(q, EccentricityQuery):
            vec = engine.source_vector(q.source, q.faults)
            return UNREACHABLE if UNREACHABLE in vec else max(vec)
        if isinstance(q, ConnectivityQuery):
            return engine.connectivity([q.faults])[0]
        raise AssertionError(q)


class TestQueryObjects:
    def test_fault_sets_canonicalized(self):
        a = DistanceQuery(0, 5, [(3, 1), (2, 4), (1, 3)])
        b = DistanceQuery(0, 5, (((4, 2)), (1, 3)))
        assert a.faults == ((1, 3), (2, 4))
        assert a == b and hash(a) == hash(b)
        assert a.fault_key == b.fault_key

    def test_frozen(self):
        q = VectorQuery(0, [(0, 1)])
        with pytest.raises(Exception):
            q.source = 3

    def test_usable_as_dict_keys(self):
        memo = {DistanceQuery(0, 1, [(1, 2)]): 7}
        assert memo[DistanceQuery(0, 1, [(2, 1)])] == 7

    def test_restoration_requires_single_fault(self):
        with pytest.raises(QueryError):
            RestorationQuery(0, 5, ())
        with pytest.raises(QueryError):
            RestorationQuery(0, 5, ((0, 1), (1, 2)))
        q = RestorationQuery(0, 5, ((1, 0),))
        assert q.fault_edge == (0, 1)

    def test_malformed_fault_set(self):
        with pytest.raises(QueryError):
            DistanceQuery(0, 1, [(1,)])

    def test_pair_report(self):
        ok = PairReport(base=3, distance=5)
        assert ok.stretch == 2 and not ok.disconnected
        cut = PairReport(base=3, distance=UNREACHABLE)
        assert cut.stretch is None and cut.disconnected


class TestPlannerValidation:
    def test_mixed_weightedness_raises(self, grid4):
        session = Session(grid4)
        with pytest.raises(QueryError, match="mixed"):
            session.answer([
                DistanceQuery(0, 1, weighted=False),
                DistanceQuery(0, 2, weighted=True),
            ])

    def test_weighted_flag_must_match_engine(self, grid4):
        session = Session(grid4)
        with pytest.raises(QueryError, match="unweighted"):
            session.answer([DistanceQuery(0, 1, weighted=True)])
        wg = WeightedGraph(3)
        wg.add_edge(0, 1, 2)
        wg.add_edge(1, 2, 3)
        wsession = Session(wg)
        with pytest.raises(QueryError, match="weighted"):
            wsession.answer([DistanceQuery(0, 1, weighted=False)])
        # matching declarations are served
        assert wsession.answer_one(
            DistanceQuery(0, 2, weighted=True)
        ).value == 5

    def test_unknown_vertex_raises(self, grid4):
        session = Session(grid4)
        with pytest.raises(QueryError, match="target"):
            session.answer([DistanceQuery(0, 99)])
        with pytest.raises(QueryError, match="source"):
            session.answer([VectorQuery(-1)])

    def test_fault_edge_with_unknown_vertex_raises(self, grid4):
        session = Session(grid4)
        # a typo'd fault endpoint must not silently read as
        # "touches nothing" (base distance with filter provenance)
        with pytest.raises(QueryError, match="fault edge"):
            session.answer([DistanceQuery(0, 15, [(99, 100)])])
        # ...but an absent edge between existing vertices is a no-op,
        # matching the engine-wide without() convention
        assert session.answer_one(
            DistanceQuery(0, 15, [(0, 15)])
        ).value == 6

    def test_non_query_rejected(self, grid4):
        session = Session(grid4)
        with pytest.raises(QueryError):
            session.answer([(0, 1, ())])

    def test_restoration_needs_scheme_and_unweighted(self, grid4,
                                                     grid_scheme):
        q = RestorationQuery(0, 15, (next(iter(grid4.edges())),))
        with pytest.raises(QueryError, match="scheme"):
            Session(grid4).answer([q])
        wg = WeightedGraph(3)
        wg.add_edge(0, 1, 2)
        wg.add_edge(1, 2, 3)
        with pytest.raises(QueryError, match="weighted"):
            Session(wg).answer([RestorationQuery(0, 2, ((0, 1),))])
        # A structurally equal copy of the scheme's graph is fine —
        # that is exactly what a scheme looks like after crossing a
        # pickle boundary (fleet shard, service payload)...
        copy = generators.grid(4, 4)
        answered = Session(copy).answer([q], scheme=grid_scheme)
        assert len(answered) == 1
        # ...but a genuinely different graph still raises.
        other = generators.torus(4, 4)
        qo = RestorationQuery(0, 15, (next(iter(other.edges())),))
        with pytest.raises(QueryError, match="same base graph"):
            Session(other).answer([qo], scheme=grid_scheme)

    def test_session_graph_engine_mismatch(self, grid4, torus4):
        engine = _quiet_engine(torus4)
        with pytest.raises(QueryError):
            Session(grid4, engine=engine)
        with pytest.raises(QueryError):
            Session()


class TestAnswerEquality:
    def test_mixed_stream_matches_per_call_paths(self, er_medium):
        g = er_medium
        faults = random_fault_sets(g, 2, 6, seed=5)
        stream = []
        for F in faults:
            stream += [DistanceQuery(s, t, F)
                       for s in (0, 1, 2) for t in (g.n - 1, g.n - 2)]
            stream += [
                PairQuery(3, g.n - 1, F),
                VectorQuery(4, F),
                EccentricityQuery(5, F),
                ConnectivityQuery(F),
            ]
        session = Session(g)
        answers = session.answer(stream)
        reference = _quiet_engine(g)
        assert len(answers) == len(stream)
        for q, a in zip(stream, answers):
            assert a.query is q
            assert a.value == _reference_value(reference, q)

    def test_disconnecting_faults(self):
        g = generators.path(4)
        session = Session(g)
        d, e, c = session.answer([
            DistanceQuery(0, 3, [(1, 2)]),
            EccentricityQuery(0, [(1, 2)]),
            ConnectivityQuery([(1, 2)]),
        ])
        assert d.value == UNREACHABLE
        assert e.value == UNREACHABLE
        assert c.value is False

    def test_duplicates_and_order(self, grid4):
        session = Session(grid4)
        q = DistanceQuery(0, 15, [(0, 1)])
        answers = session.answer([q, VectorQuery(0, [(0, 1)]), q])
        assert answers[0].value == answers[2].value
        assert answers[1].value[15] == answers[0].value

    def test_restoration_matches_engine_sweep(self, grid4, grid_scheme):
        path = grid_scheme.path(0, 15)
        instances = [(0, 15, e) for e in path.edges()]
        session = Session(grid4, scheme=grid_scheme)
        answers = session.answer(
            RestorationQuery(s, t, (e,)) for s, t, e in instances
        )
        ref = _quiet_engine(grid4).restoration_sweep(grid_scheme,
                                                     instances)
        assert [a.value for a in answers] == [r.value for r in ref]
        assert all(a.provenance.kernel == "restoration_sweep"
                   for a in answers)


class TestProvenanceAndCaches:
    def test_replay_is_all_cache_and_counts_match_cache_info(self,
                                                             er_medium):
        g = er_medium
        faults = random_fault_sets(g, 1, 4, seed=9)
        stream = []
        for F in faults:
            stream += [DistanceQuery(s, g.n - 1, F) for s in range(6)]
            stream += [VectorQuery(7, F), EccentricityQuery(8, F)]
        session = Session(g)
        before = dict(session.cache_info())
        first = session.answer(stream)
        mid = dict(session.cache_info())
        # every pair query either hit or missed the pair memo exactly
        # once; no pair was cached yet, so misses == pair queries
        n_pairs = sum(isinstance(q, DistanceQuery) for q in stream)
        assert mid["misses"] - before["misses"] == n_pairs
        assert mid["hits"] - before["hits"] == 0
        assert all(not a.cached for a in first)
        second = session.answer(stream)
        after = dict(session.cache_info())
        assert all(a.cached for a in second)
        # replayed pair queries are pure pair-memo hits...
        assert after["hits"] - mid["hits"] == n_pairs
        assert after["misses"] == mid["misses"]
        # ...and replayed vector/eccentricity queries are vector-cache
        # hits, one counted hit per replayed vector-backed answer.
        n_vec = sum(isinstance(q, (VectorQuery, EccentricityQuery))
                    for q in stream)
        assert after["vector_hits"] - mid["vector_hits"] == n_vec
        assert after["vector_misses"] == mid["vector_misses"]

    def test_wave_provenance_records_kernel_and_size(self, er_medium):
        g = er_medium
        e = next(iter(g.edges()))
        # delta=False: this test pins the *wave* provenance; with the
        # delta path on, a small orphaned region would legitimately
        # serve these vectors as "delta" instead.
        session = Session(g, delta=False)
        answers = session.answer([VectorQuery(0, (e,)),
                                  VectorQuery(1, (e,))])
        for a in answers:
            assert a.waved
            assert a.provenance.kernel == "csr_bfs_distances_many"
            assert a.provenance.wave_size == 2
        assert session.stats.waves == 1

    def test_touch_filter_provenance(self, grid4):
        session = Session(grid4)
        # a fault on the far corner cannot touch dist(0, 1)
        a = session.answer_one(DistanceQuery(0, 1, [(11, 15)]))
        assert a.provenance.source == "filter"
        assert a.value == 1

    def test_vector_left_by_wave_serves_pairs_from_cache(self, grid4):
        session = Session(grid4)
        F = ((0, 1),)
        session.answer([VectorQuery(0, F)])
        a = session.answer_one(DistanceQuery(0, 15, F))
        assert a.cached and a.provenance.detail == "vector-cache"

    def test_cache_info_is_frozen_dataclass(self, grid4):
        info = _quiet_engine(grid4).cache_info()
        assert isinstance(info, CacheInfo)
        assert info.hits == 0 and info["hits"] == 0
        assert dict(info)["maxsize"] == info.maxsize
        assert "hits" in info and "nope" not in info
        assert list(info) == list(info.keys())
        with pytest.raises(KeyError):
            info["nope"]
        with pytest.raises(Exception):
            info.hits = 5
        assert info == dict(info)  # PR-2 raw-dict idiom still compares

    def test_missing_scheme_raises_before_any_kernel_runs(self, grid4):
        session = Session(grid4)
        e = next(iter(grid4.edges()))
        with pytest.raises(QueryError, match="scheme"):
            session.answer([
                DistanceQuery(0, 15, (e,)),
                RestorationQuery(0, 15, (e,)),
            ])
        # the distance group must not have run: caches untouched
        assert dict(session.cache_info()) == dict(
            _quiet_engine(grid4).cache_info()
        )

    def test_connectivity_rides_any_cached_vector(self, grid4):
        session = Session(grid4)
        F = ((0, 1),)
        session.answer([VectorQuery(5, F)])
        waves_before = session.stats.waves
        d, c = session.answer([DistanceQuery(5, 15, F),
                               ConnectivityQuery(F)])
        assert d.cached and c.value is True
        assert session.stats.waves == waves_before  # no extra traversal
        # a connectivity-only gather also finds the (5, F) vector,
        # even though it is not cached under source 0
        c2 = session.answer_one(ConnectivityQuery(F))
        assert c2.cached and session.stats.waves == waves_before


class TestTargetSideBatching:
    def test_skewed_group_waves_from_targets(self, er_medium):
        g = er_medium
        e = next(iter(g.edges()))
        # many sources, one target: waving from the target costs one
        # traversal instead of eight.
        stream = [DistanceQuery(s, g.n - 1, (e,)) for s in range(8)]
        planner = Planner(_quiet_engine(g))
        plan = planner.plan(stream)
        (group,) = plan.groups
        assert group.side == "target"
        assert group.cost_target == 1 and group.cost_source == 8
        answers = planner.execute(plan)
        ref = _quiet_engine(g)
        for q, a in zip(stream, answers):
            assert a.value == _reference_value(ref, q)
        waved = [a for a in answers if a.waved]
        assert all(a.provenance.side == "target" for a in waved)
        assert group.wave_size <= 1  # at most the one target traversal

    def test_unskewed_group_stays_on_source_side(self, er_medium):
        g = er_medium
        e = next(iter(g.edges()))
        stream = [DistanceQuery(0, t, (e,)) for t in range(5, 13)]
        plan = Planner(_quiet_engine(g)).plan(stream)
        assert plan.groups[0].side == "source"

    def test_pinned_vector_sources_enter_the_cost_model(self, er_medium):
        g = er_medium
        e = next(iter(g.edges()))
        # 3 pair-sources + the same 3 pinned by vector queries vs 2
        # targets: target side still needs the pinned sources, so
        # source side (3) beats target side (2 + 3).
        stream = [DistanceQuery(s, g.n - 1 - s % 2, (e,))
                  for s in range(3)]
        stream += [VectorQuery(s, (e,)) for s in range(3)]
        plan = Planner(_quiet_engine(g)).plan(stream)
        (group,) = plan.groups
        assert group.cost_source == 3 and group.cost_target == 5
        assert group.side == "source"

    def test_antisymmetric_weights_never_flip(self):
        g = generators.cycle(6)
        csr = g.csr().with_arc_weights(
            lambda u, v: 1 if u < v else 2  # antisymmetric
        )
        engine = _quiet_engine(csr)
        assert engine.weighted and not engine.symmetric_weights
        stream = [DistanceQuery(s, 3, ((0, 1),)) for s in (0, 1, 2)]
        plan = Planner(engine).plan(stream)
        assert plan.groups[0].side == "source"


@pytest.fixture(params=["local", "fleet-1", "fleet-2", "service"])
def make_session(request):
    """A session factory covering every `Session`-shaped surface.

    ``local`` builds the in-process :class:`Session`; ``fleet-N``
    builds a :class:`repro.fleet.FleetSession` over N worker
    processes; ``service`` serves a local session through a
    :class:`repro.service.BackgroundServer` and hands back the
    blocking :class:`repro.service.ServiceClient`.  The facade tests
    parametrised over this fixture *are* the conformance suite for
    the session dialect: whatever the local session answers, a
    sharded fleet and a served client must answer identically.
    """
    built = []

    def build(graph):
        if request.param == "local":
            session = Session(graph)
        elif request.param == "service":
            from repro.service import BackgroundServer, ServiceClient

            server = BackgroundServer(Session(graph))
            built.append(server)
            session = ServiceClient(*server.address)
        else:
            from repro.fleet import FleetSession

            workers = int(request.param.rsplit("-", 1)[1])
            session = FleetSession(graph, workers=workers)
        built.append(session)
        return session

    yield build
    # clients before their servers: built in server-then-client order
    for session in reversed(built):
        closer = getattr(session, "close", None)
        if closer is not None:
            closer()


class TestSessionFacade:
    def test_submit_gather_drains_in_order(self, grid4, make_session):
        session = make_session(grid4)
        session.submit(DistanceQuery(0, 15))
        session.submit([VectorQuery(1)], ConnectivityQuery())
        assert session.pending == 3
        answers = session.gather()
        assert session.pending == 0
        assert [type(a.query) for a in answers] == [
            DistanceQuery, VectorQuery, ConnectivityQuery
        ]
        assert answers[0].value == 6 and answers[2].value is True

    def test_submit_rejects_non_queries(self, grid4, make_session):
        session = make_session(grid4)
        with pytest.raises(QueryError):
            session.submit(42)

    def test_answer_async(self, grid4, make_session):
        session = make_session(grid4)

        async def go():
            return await session.answer_async(
                [DistanceQuery(0, 15, [(0, 1)])]
            )

        (a,) = asyncio.run(go())
        assert a.value == 6

    def test_answer_async_uses_one_private_worker(self, grid4):
        """Concurrent awaits must not burn a default-executor thread
        each: the session owns one lazily-built single worker (gathers
        serialize on the planner lock anyway, so one thread *is* the
        true concurrency), and close() releases it."""
        session = Session(grid4)

        async def go():
            answers = await asyncio.gather(*[
                session.answer_async([DistanceQuery(0, 15, [(0, 1)])])
                for _ in range(4)
            ])
            loop = asyncio.get_running_loop()
            # the event loop's shared default executor stayed unused
            assert getattr(loop, "_default_executor", None) is None
            return answers

        results = asyncio.run(go())
        assert [a.value for (a,) in results] == [6] * 4
        executor = session._executor()
        assert executor is session._executor()  # one, cached
        assert executor._max_workers == 1
        assert all(t.name.startswith("repro-session")
                   for t in executor._threads)
        session.close()
        assert session._async_executor is None

    def test_adopts_existing_engine(self, grid4):
        engine = _quiet_engine(grid4)
        engine.base_distances(0)  # warm
        session = Session(engine=engine)
        assert session.engine is engine
        assert session.answer_one(DistanceQuery(0, 15)).value == 6

    def test_adopt_resolves_the_consumer_idiom(self, grid4, torus4):
        fresh = Session.adopt(grid4)
        assert fresh.graph is grid4
        engine = _quiet_engine(grid4)
        wrapped = Session.adopt(grid4, engine=engine)
        assert wrapped.engine is engine
        reused = Session.adopt(grid4, engine=engine, session=wrapped)
        assert reused is wrapped
        with pytest.raises(GraphError):
            Session.adopt(torus4, engine=engine)
        with pytest.raises(GraphError):
            Session.adopt(torus4, session=wrapped)
        with pytest.raises(GraphError):  # disagreeing pair
            Session.adopt(grid4, engine=_quiet_engine(grid4),
                          session=wrapped)

    def test_preserver_violations_facade(self, grid4, make_session):
        session = make_session(grid4)
        edges = list(grid4.edges())
        targets = list(grid4.vertices())
        bad = session.preserver_violations(
            edges[:-1], [0, 15], [()], targets=targets,
        )
        assert bad  # dropping a grid edge loses some S x V distance
        full = session.preserver_violations(edges, [0, 15], [()],
                                            targets=targets)
        assert full == []

    def test_stats_and_repr(self, grid4, make_session):
        session = make_session(grid4)
        session.answer([DistanceQuery(0, 15, [(0, 1)])])
        assert session.stats.answers == 1
        # Session / FleetSession / ServiceClient each name themselves
        assert "Session(" in repr(session) or "Client(" in repr(session)

    def test_deprecated_engine_methods_still_work_and_warn(self, grid4):
        engine = _quiet_engine(grid4)
        with pytest.warns(DeprecationWarning):
            dists = engine.replacement_distances(0, 15, [((0, 1),)])
        assert dists == [6]
        with pytest.warns(DeprecationWarning):
            assert engine.connectivity([()]) == [True]


class TestSessionStatsMerge:
    def test_merge_sums_counters_and_unions_tallies(self):
        from repro.query.session import SessionStats

        a = SessionStats(answers=10, gathers=2, waves=3, cache=4,
                         filter=1, delta=2, wave=3,
                         by_backend={"pyloops": 3},
                         by_worker={"w0": 10})
        b = SessionStats(answers=5, gathers=1, waves=1, cache=0,
                         filter=2, delta=0, wave=3,
                         by_backend={"pyloops": 1, "vectorized": 2},
                         by_worker={"w1": 5})
        merged = SessionStats.merge([a, b])
        assert merged.answers == 15 and merged.gathers == 3
        assert merged.waves == 4
        assert (merged.cache, merged.filter, merged.delta,
                merged.wave) == (4, 3, 2, 6)
        assert merged.by_backend == {"pyloops": 4, "vectorized": 2}
        assert merged.by_worker == {"w0": 10, "w1": 5}
        # inputs are untouched (merge builds a fresh snapshot)
        assert a.by_backend == {"pyloops": 3}

    def test_merge_of_nothing_is_zero(self):
        from repro.query.session import SessionStats

        merged = SessionStats.merge([])
        assert merged.answers == 0 and merged.by_backend == {}

    def test_record_tallies_workers(self, grid4):
        from dataclasses import replace

        session = Session(grid4)
        answers = session.answer([DistanceQuery(0, 15, [(0, 1)]),
                                  VectorQuery(3)])
        stamped = [
            replace(a, provenance=replace(a.provenance, worker="w7"))
            for a in answers
        ]
        from repro.query.session import SessionStats

        stats = SessionStats()
        stats.record(session.planner.plan([q.query for q in stamped]),
                     stamped)
        assert stats.by_worker == {"w7": 2}
