"""Unit tests for ShortestPathTree."""

import pytest

from repro.exceptions import DisconnectedError, GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.spt.bfs import bfs_distances
from repro.spt.trees import ShortestPathTree


def unit(u, v):
    return 1


@pytest.fixture
def grid_tree():
    return ShortestPathTree.compute(generators.grid(3, 3), 0, unit)


class TestBasics:
    def test_root_and_reach(self, grid_tree):
        assert grid_tree.root == 0
        assert grid_tree.reaches(8)
        assert 8 in grid_tree
        assert len(grid_tree.reached_vertices()) == 9

    def test_path_to(self, grid_tree):
        path = grid_tree.path_to(8)
        assert path.source == 0 and path.target == 8
        assert path.hops == 4

    def test_hop_vs_weighted_distance(self, grid_tree):
        assert grid_tree.hop_distance(8) == 4
        assert grid_tree.weighted_distance(8) == 4

    def test_depth(self, grid_tree):
        assert grid_tree.depth() == 4

    def test_unreachable_raises(self):
        g = Graph(3, [(0, 1)])
        tree = ShortestPathTree.compute(g, 0, unit)
        assert not tree.reaches(2)
        with pytest.raises(DisconnectedError):
            tree.path_to(2)
        with pytest.raises(DisconnectedError):
            tree.hop_distance(2)

    def test_bad_parent_map_rejected(self):
        with pytest.raises(GraphError):
            ShortestPathTree(0, {0: 1, 1: 0}, {0: 0, 1: 1})


class TestScaledWeights:
    def test_hop_recovery_under_perturbation(self):
        from repro.core.weights import AntisymmetricWeights

        g = generators.connected_erdos_renyi(25, 0.12, seed=6)
        atw = AntisymmetricWeights.random(g, f=1, seed=1)
        tree = ShortestPathTree.compute(g, 0, atw.weight, atw.scale)
        bfs = bfs_distances(g, 0)
        for v in tree.reached_vertices():
            assert tree.hop_distance(v) == bfs[v]


class TestStructure:
    def test_edges_form_tree(self, grid_tree):
        edges = list(grid_tree.edges())
        assert len(edges) == 8  # n - 1 for a connected graph
        assert len(grid_tree.edge_set()) == 8

    def test_paths_stay_in_tree(self, grid_tree):
        edge_set = grid_tree.edge_set()
        for v in range(9):
            for e in grid_tree.path_to(v).edges():
                assert e in edge_set

    def test_next_hop(self, grid_tree):
        assert grid_tree.next_hop(0) is None
        nh = grid_tree.next_hop(8)
        assert nh in (1, 3)  # the first step off the root
        assert grid_tree.path_to(8)[1] == nh

    def test_next_hop_unreachable(self):
        g = Graph(3, [(0, 1)])
        tree = ShortestPathTree.compute(g, 0, unit)
        with pytest.raises(DisconnectedError):
            tree.next_hop(2)
