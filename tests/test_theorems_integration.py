"""Integration tests: one test per paper theorem, at sweep scale.

These are the library-level statements of the paper's results — each
test exercises several modules together and checks the claim the way
the paper states it.  The benchmark suite re-runs the same experiments
at larger scale for the size/round *shape*; here the claims are checked
for exact correctness on exhaustively-verifiable instances.
"""

import pytest

from repro.graphs import generators
from repro.core import properties
from repro.core.restoration import restore_by_concatenation
from repro.core.scheme import BFSTiebreaking, RestorableTiebreaking
from repro.spt.apsp import replacement_distance
from repro.spt.bfs import UNREACHABLE


GRAPHS = {
    "grid4": generators.grid(4, 4),
    "torus4": generators.torus(4, 4),
    "hypercube3": generators.hypercube(3),
    "petersen": generators.petersen(),
    "er16": generators.connected_erdos_renyi(16, 0.18, seed=17),
}


class TestTheorem2MainResult:
    """For every graph, pair, and single fault: the selected-path
    concatenation through some midpoint is a replacement shortest path."""

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_full_sweep(self, name):
        g = GRAPHS[name]
        scheme = RestorableTiebreaking.build(g, f=1, seed=hash(name) % 1000)
        assert properties.is_restorable(scheme)


class TestTheorem19SchemeProperties:
    """ATW-generated schemes are stable, consistent, and restorable."""

    @pytest.mark.parametrize("method", ["random", "deterministic"])
    def test_all_three_properties(self, method):
        g = GRAPHS["grid4"]
        scheme = RestorableTiebreaking.build(g, f=1, method=method, seed=5)
        assert properties.is_consistent(scheme)
        assert properties.is_stable(scheme)
        assert properties.is_restorable(scheme)

    def test_consistency_under_each_fault(self):
        g = GRAPHS["petersen"]
        scheme = RestorableTiebreaking.build(g, f=1, seed=2)
        for e in list(g.edges())[:5]:
            assert properties.is_consistent(scheme, faults=[e])


class TestFigure1Sensitivity:
    """BFS tiebreaking breaks restoration-by-concatenation somewhere;
    restorable tiebreaking never does."""

    def test_bfs_scheme_fails_somewhere(self):
        # A graph family engineered to punish lexicographic selection:
        # look across several ER graphs until a failure shows (the
        # phenomenon of Figure 1 is generic but not universal per graph).
        from repro.analysis.experiments import (
            restoration_success_rate,
            sensitivity_instances,
        )

        failures = 0
        for seed in range(6):
            g = generators.connected_erdos_renyi(14, 0.2, seed=seed)
            scheme = BFSTiebreaking(g)
            counts = restoration_success_rate(
                scheme, sensitivity_instances(g, scheme)
            )
            failures += counts["failures"]
        assert failures > 0

    def test_restorable_never_fails(self):
        from repro.analysis.experiments import (
            restoration_success_rate,
            sensitivity_instances,
        )

        for seed in range(3):
            g = generators.connected_erdos_renyi(14, 0.2, seed=seed)
            scheme = RestorableTiebreaking.build(g, f=1, seed=seed)
            counts = restoration_success_rate(
                scheme, sensitivity_instances(g, scheme)
            )
            assert counts["failures"] == 0


class TestTheorem37Impossibility:
    def test_c4(self):
        assert properties.theorem37_holds_on(generators.cycle(4))

    def test_c4_asymmetric_possible(self):
        """The contrast that makes Theorem 2 interesting: asymmetric
        restorable schemes exist even on C4."""
        scheme = RestorableTiebreaking.build(generators.cycle(4), seed=3)
        assert properties.is_restorable(scheme)
        assert not properties.is_symmetric(scheme)


class TestTheorem3SubsetRP:
    def test_exact_and_fast_structure(self):
        from repro.replacement import subset_replacement_paths

        g = generators.connected_erdos_renyi(36, 0.12, seed=21)
        S = list(range(0, 36, 6))
        result = subset_replacement_paths(g, S, seed=4)
        # exactness
        for (s1, s2), per_edge in result.distances.items():
            for e, d in per_edge.items():
                assert d == replacement_distance(g, s1, s2, [e])
        # the structural reason for the runtime: O(n)-edge unions
        assert all(m <= 2 * (g.n - 1) for m in result.union_sizes.values())


class TestTheorem31Preservers:
    @pytest.mark.parametrize("ft", [1, 2])
    def test_sxs_preserver(self, ft):
        from repro.preservers import ft_ss_preserver, verify_preserver

        g = generators.connected_erdos_renyi(13, 0.25, seed=31)
        S = [0, 6, 12]
        p = ft_ss_preserver(g, S, faults_tolerated=ft, seed=7)
        assert verify_preserver(g, p.edges, S, f=ft)


class TestTheorem33Spanner:
    def test_1ft_plus4(self):
        from repro.spanners import ft_plus4_spanner, verify_spanner

        g = generators.connected_erdos_renyi(15, 0.22, seed=9)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, seed=2)
        assert verify_spanner(g, spanner.edges, f=1, additive=4)


class TestTheorem30Labels:
    def test_labels_answer_under_faults(self):
        from repro.labeling import DistanceLabeling
        from repro.spt.bfs import bfs_distances

        g = GRAPHS["hypercube3"]
        lab = DistanceLabeling.build(g, f=0, seed=11)
        for e in g.edges():
            view = g.without([e])
            for s in g.vertices():
                dist = bfs_distances(view, s)
                for t in g.vertices():
                    if s != t:
                        assert lab.distance(s, t, [e]) == dist[t]


class TestTheorem8Distributed:
    def test_1ft_preserver_lemma36(self):
        from repro.distributed import distributed_ss_preserver
        from repro.preservers import verify_preserver

        g = GRAPHS["torus4"]
        S = [0, 3, 12]
        result = distributed_ss_preserver(g, S, faults_tolerated=1, seed=1)
        assert verify_preserver(g, result.preserver.edges, S, f=1)
        assert result.preserver.size <= len(S) * (g.n - 1)


class TestTheorem27LowerBound:
    def test_forced_edges_meet_omega_shape(self):
        from repro.graphs.lowerbound import (
            build_lower_bound_instance,
            forced_preserver_edges,
        )

        small = build_lower_bound_instance(80, 1)
        large = build_lower_bound_instance(240, 1)
        forced_small = len(forced_preserver_edges(small))
        forced_large = len(forced_preserver_edges(large))
        # superlinear growth: tripling n should much more than triple
        # the forced edge count (the bound is ~ n^1.5)
        assert forced_large > 2.2 * forced_small


class TestMultiFaultRestoration:
    """Definition 17 exercised at f = 3 on a small dense graph."""

    def test_three_faults(self):
        g = generators.connected_erdos_renyi(11, 0.4, seed=13)
        scheme = RestorableTiebreaking.build(g, f=3, seed=5)
        for faults in generators.fault_sample(g, 12, seed=3, size=3):
            target = replacement_distance(g, 0, 10, list(faults))
            if target == UNREACHABLE:
                continue
            result = restore_by_concatenation(scheme, 0, 10, faults)
            assert result.path.hops == target
            assert len(result.subset) < 3


class TestConsistencyStabilityNotEnough:
    """The conceptual heart of the paper, on one concrete instance:
    lexicographic BFS on the 5x5 grid is consistent and stable, yet
    restoration-by-concatenation fails for (s, t, e) = (0, 1, (0,1)) —
    so consistency + stability do NOT imply restorability (cf. Theorem
    27's lower bound for preservers), and Theorem 2's antisymmetric
    weights add something genuinely new."""

    @pytest.fixture(scope="class")
    def instance(self):
        g = generators.grid(5, 5)
        return g, BFSTiebreaking(g)

    def test_scheme_is_consistent(self, instance):
        g, scheme = instance
        pairs = [(0, 1), (0, 6), (1, 5), (0, 12), (6, 0)]
        assert properties.is_consistent(scheme, pairs=pairs)

    def test_scheme_is_stable(self, instance):
        g, scheme = instance
        pairs = [(0, 1), (0, 6), (0, 12)]
        assert properties.is_stable(scheme, pairs=pairs)

    def test_yet_restoration_fails(self, instance):
        from repro.analysis.experiments import (
            restoration_success_rate,
            sensitivity_instances,
        )

        g, scheme = instance
        counts = restoration_success_rate(
            scheme, sensitivity_instances(g, scheme)
        )
        assert counts["failures"] >= 20

    def test_specific_failing_instance(self, instance):
        from repro.core.restoration import midpoint_scan

        g, scheme = instance
        # fault (0,1) on the selected 0 ~> 1 path: BFS-lex selects
        # every pi(0, x) and pi(1, x) through the broken edge's
        # corner, so no midpoint survives at all
        result = midpoint_scan(scheme, 0, 1, [(0, 1)])
        assert result is None or result.path.hops > 3

    def test_restorable_scheme_fixes_it(self, instance):
        from repro.core.restoration import restore_by_concatenation

        g, _ = instance
        scheme = RestorableTiebreaking.build(g, f=1, seed=5)
        result = restore_by_concatenation(scheme, 0, 1, [(0, 1)])
        assert result.path.hops == 3
