"""Unit tests for the Path algebra."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.base import Graph
from repro.spt.paths import Path, is_replacement_path, join_at_midpoint


class TestConstruction:
    def test_basic(self):
        p = Path([0, 1, 2])
        assert p.source == 0 and p.target == 2
        assert p.hops == 2 and len(p) == 3
        assert list(p) == [0, 1, 2]
        assert p[1] == 1

    def test_trivial(self):
        p = Path.trivial(5)
        assert p.hops == 0
        assert p.source == p.target == 5

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            Path([])

    def test_consecutive_duplicate_rejected(self):
        with pytest.raises(GraphError):
            Path([0, 0, 1])

    def test_equality_and_hash(self):
        assert Path([0, 1]) == Path([0, 1])
        assert Path([0, 1]) != Path([1, 0])
        assert len({Path([0, 1]), Path([0, 1]), Path([1, 0])}) == 2


class TestEdgeViews:
    def test_arcs_ordered(self):
        assert list(Path([2, 1, 0]).arcs()) == [(2, 1), (1, 0)]

    def test_edges_canonical(self):
        assert list(Path([2, 1, 0]).edges()) == [(1, 2), (0, 1)]

    def test_uses_edge_both_orientations(self):
        p = Path([0, 1, 2])
        assert p.uses_edge((1, 0))
        assert p.uses_edge((0, 1))
        assert not p.uses_edge((0, 2))

    def test_uses_arc_is_oriented(self):
        p = Path([0, 1, 2])
        assert p.uses_arc((0, 1))
        assert not p.uses_arc((1, 0))

    def test_avoids(self):
        p = Path([0, 1, 2])
        assert p.avoids([(0, 2)])
        assert not p.avoids([(2, 1)])
        assert p.avoids([])


class TestAlgebra:
    def test_reverse(self):
        assert Path([0, 1, 2]).reverse() == Path([2, 1, 0])
        assert Path([3]).reverse() == Path([3])

    def test_concat(self):
        combined = Path([0, 1]).concat(Path([1, 2]))
        assert combined == Path([0, 1, 2])

    def test_concat_mismatch(self):
        with pytest.raises(GraphError):
            Path([0, 1]).concat(Path([2, 3]))

    def test_concat_with_trivial(self):
        assert Path([0, 1]).concat(Path.trivial(1)) == Path([0, 1])

    def test_prefix_suffix_subpath(self):
        p = Path([0, 1, 2, 3])
        assert p.prefix_to(2) == Path([0, 1, 2])
        assert p.suffix_from(2) == Path([2, 3])
        assert p.subpath(1, 3) == Path([1, 2, 3])

    def test_subpath_order_enforced(self):
        with pytest.raises(GraphError):
            Path([0, 1, 2]).subpath(2, 0)

    def test_precedes(self):
        p = Path([0, 1, 2])
        assert p.precedes(0, 2)
        assert p.precedes(1, 1)
        assert not p.precedes(2, 0)
        assert not p.precedes(0, 9)

    def test_missing_vertex(self):
        with pytest.raises(GraphError):
            Path([0, 1]).prefix_to(7)


class TestValidity:
    def test_is_simple(self):
        assert Path([0, 1, 2]).is_simple()
        assert not Path([0, 1, 0]).is_simple()

    def test_is_valid_in(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert Path([0, 1, 2]).is_valid_in(g)
        assert not Path([0, 2]).is_valid_in(g)

    def test_weight(self):
        p = Path([0, 1, 2])
        assert p.weight(lambda u, v: 10) == 20
        assert p.weight(lambda u, v: u + v) == 1 + 3


class TestJoinAtMidpoint:
    def test_theorem2_shape(self):
        # pi(s, x) = 0->1->2 and pi(t, x) = 4->3->2, midpoint x = 2
        joined = join_at_midpoint(Path([0, 1, 2]), Path([4, 3, 2]))
        assert joined == Path([0, 1, 2, 3, 4])

    def test_midpoint_mismatch(self):
        with pytest.raises(GraphError):
            join_at_midpoint(Path([0, 1]), Path([2, 3]))

    def test_trivial_midpoint_at_target(self):
        joined = join_at_midpoint(Path([0, 1, 2]), Path.trivial(2))
        assert joined == Path([0, 1, 2])


class TestIsReplacementPath:
    def test_accepts_valid(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        q = Path([0, 3, 2])
        assert is_replacement_path(g, q, [(0, 1)], required_hops=2)

    def test_rejects_wrong_length(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not is_replacement_path(g, Path([0, 3, 2]), [(0, 1)], 3)

    def test_rejects_fault_use(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not is_replacement_path(g, Path([0, 1, 2]), [(0, 1)], 2)

    def test_rejects_nonexistent_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not is_replacement_path(g, Path([0, 2]), [(0, 1)], 1)
