"""Tests for the Definition 13-17 property verifiers."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.core.properties import (
    all_shortest_paths,
    consistency_violations,
    enumerate_symmetric_schemes,
    is_consistent,
    is_restorable,
    is_stable,
    is_symmetric,
    restorability_violations,
    stability_violations,
    symmetry_violations,
    theorem37_holds_on,
)
from repro.core.scheme import BFSTiebreaking, ExplicitScheme, RestorableTiebreaking
from repro.spt.paths import Path


class TestAllShortestPaths:
    def test_counts_on_grid(self):
        g = generators.grid(3, 3)
        assert len(all_shortest_paths(g, 0, 8)) == 6
        assert len(all_shortest_paths(g, 0, 2)) == 1

    def test_disconnected_empty(self):
        from repro.graphs.base import Graph

        g = Graph(3, [(0, 1)])
        assert all_shortest_paths(g, 0, 2) == []

    def test_all_are_shortest_and_distinct(self):
        g = generators.grid(3, 3)
        paths = all_shortest_paths(g, 0, 8)
        assert len(set(paths)) == len(paths)
        assert all(p.hops == 4 and p.is_valid_in(g) for p in paths)

    def test_limit_guard(self):
        g = generators.biclique_chain(6, 4)  # 4^6 tied paths
        with pytest.raises(GraphError):
            all_shortest_paths(g, 0, g.n - 1, limit=100)


class TestSymmetry:
    def test_explicit_symmetric(self):
        g = generators.cycle(4)
        table = {}
        for (s, t), p in {
            (0, 2): Path([0, 1, 2]), (1, 3): Path([1, 2, 3]),
            (0, 1): Path([0, 1]), (1, 2): Path([1, 2]),
            (2, 3): Path([2, 3]), (0, 3): Path([0, 3]),
        }.items():
            table[(s, t)] = p
            table[(t, s)] = p.reverse()
        scheme = ExplicitScheme(g, table)
        assert is_symmetric(scheme)

    def test_restorable_is_asymmetric_on_tied_graphs(self, grid4, grid_scheme):
        # Antisymmetric perturbation forces pi(s,t) != reverse(pi(t,s))
        # somewhere on a graph with ties.
        assert symmetry_violations(grid_scheme)

    def test_violation_reports_pairs(self):
        g = generators.cycle(4)
        scheme = ExplicitScheme(g, {
            (0, 2): Path([0, 1, 2]), (2, 0): Path([2, 3, 0]),
        })
        assert (0, 2) in symmetry_violations(scheme, pairs=[(0, 2)])


class TestConsistency:
    def test_weighted_schemes_consistent(self, grid_scheme):
        assert is_consistent(grid_scheme)

    def test_weighted_consistent_under_faults(self, grid_scheme):
        assert is_consistent(grid_scheme, faults=[(5, 6)])

    def test_bfs_scheme_consistency_status(self, grid4):
        # Lexicographic BFS from each source picks smallest parent; this
        # is consistent on the grid (all sources agree on slicing).
        scheme = BFSTiebreaking(grid4)
        assert isinstance(consistency_violations(scheme), list)

    def test_inconsistent_table_detected(self):
        g = generators.cycle(4)
        scheme = ExplicitScheme(g, {
            (0, 2): Path([0, 1, 2]),
            (0, 1): Path([0, 3, 2, 1]),  # not the 0..1 slice, not even short
        })
        # the (0,1) selection is length-3 (not shortest), so the subpath
        # property of pi(0,2) must flag (0, 2, 0, 1)
        bad = consistency_violations(scheme, pairs=[(0, 2)])
        assert (0, 2, 0, 1) in bad


class TestStability:
    def test_restorable_stable(self, grid_scheme):
        assert is_stable(grid_scheme)

    def test_stability_beyond_one_fault(self, er_scheme, er_small):
        base_sets = [((0, next(iter(er_small.neighbors(0)))),)]
        pairs = [(1, 5), (2, 9)]
        assert not stability_violations(
            er_scheme, base_fault_sets=base_sets, pairs=pairs,
        )

    def test_unstable_table_detected(self):
        # A table with no fault entries: under any off-path fault the
        # selection vanishes (None), which violates Definition 16.
        g = generators.cycle(4)
        scheme = ExplicitScheme(g, {(0, 2): Path([0, 1, 2])})
        bad = stability_violations(scheme, pairs=[(0, 2)])
        flagged_edges = {entry[3] for entry in bad}
        assert flagged_edges == {(0, 3), (2, 3)}  # the off-path edges

    def test_stable_table_passes(self):
        g = generators.cycle(4)
        keep = Path([0, 1, 2])
        fault_table = {
            (0, 2, frozenset({(0, 3)})): keep,
            (0, 2, frozenset({(2, 3)})): keep,
        }
        scheme = ExplicitScheme(g, {(0, 2): keep}, fault_table=fault_table)
        assert not stability_violations(scheme, pairs=[(0, 2)])


class TestRestorability:
    def test_restorable_scheme_passes(self, grid_scheme):
        assert is_restorable(grid_scheme)

    def test_two_fault_restorability_sampled(self, er_scheme, er_small):
        fault_sets = generators.fault_sample(er_small, 15, seed=1, size=2)
        pairs = [(0, 9), (3, 14)]
        assert not restorability_violations(
            er_scheme, fault_sets=fault_sets, pairs=pairs,
        )

    def test_empty_fault_set_rejected(self, grid_scheme):
        with pytest.raises(GraphError):
            restorability_violations(grid_scheme, fault_sets=[()])

    def test_symmetric_scheme_on_c4_fails(self, c4):
        # hand-pick the symmetric scheme from the Theorem 37 proof
        table = {}
        for (s, t), p in {
            (0, 1): Path([0, 1]), (1, 2): Path([1, 2]),
            (2, 3): Path([2, 3]), (0, 3): Path([0, 3]),
            (0, 2): Path([0, 1, 2]), (1, 3): Path([1, 0, 3]),
        }.items():
            table[(s, t)] = p
            table[(t, s)] = p.reverse()
        scheme = ExplicitScheme(c4, table)
        assert is_symmetric(scheme)
        assert not is_restorable(scheme)


class TestTheorem37:
    def test_c4_impossibility_exhaustive(self, c4):
        assert theorem37_holds_on(c4)

    def test_enumeration_counts_on_c4(self, c4):
        # ties only on the two diagonals: 2 * 2 = 4 symmetric schemes
        schemes = list(enumerate_symmetric_schemes(c4))
        assert len(schemes) == 4
        assert all(s.is_symmetric_table() for s in schemes)

    def test_path_graph_has_restorable_symmetric_scheme(self):
        # no ties at all => the unique scheme is symmetric; on a tree,
        # single-edge faults disconnect, so 1-restorability is vacuous.
        g = generators.path(4)
        assert not theorem37_holds_on(g)

    def test_limit_guard(self):
        g = generators.biclique_chain(4, 4)
        with pytest.raises(GraphError):
            list(enumerate_symmetric_schemes(g, limit=10))
