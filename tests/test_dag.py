"""Tests for the DAG extension study (Section 1.2 future work)."""

import pytest

from repro.exceptions import GraphError
from repro.dag import (
    DagTiebreaking,
    DirectedGraph,
    dag_restorability_violations,
    random_layered_dag,
    verify_dag_restoration_lemma,
)
from repro.dag.generators import diamond_stack, path_dag


class TestDirectedGraph:
    def test_construction(self):
        d = DirectedGraph(3, [(0, 1), (1, 2)])
        assert d.n == 3 and d.m == 2
        assert d.has_arc(0, 1)
        assert not d.has_arc(1, 0)

    def test_duplicate_arc_ignored(self):
        d = DirectedGraph(2, [(0, 1), (0, 1)])
        assert d.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            DirectedGraph(2, [(1, 1)])

    def test_neighbors_directional(self):
        d = DirectedGraph(3, [(0, 1), (2, 1)])
        assert sorted(d.neighbors(0)) == [1]
        assert sorted(d.neighbors(1)) == []
        assert sorted(d.in_neighbors(1)) == [0, 2]
        assert d.out_degree(0) == 1

    def test_reverse(self):
        d = DirectedGraph(3, [(0, 1), (1, 2)])
        r = d.reverse()
        assert r.has_arc(1, 0) and r.has_arc(2, 1)
        assert not r.has_arc(0, 1)

    def test_acyclicity(self):
        assert DirectedGraph(3, [(0, 1), (1, 2)]).is_acyclic()
        assert not DirectedGraph(2, [(0, 1), (1, 0)]).is_acyclic()

    def test_topological_order(self):
        d = DirectedGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = d.topological_order()
        assert order.index(0) < order.index(1) < order.index(3)
        with pytest.raises(GraphError):
            DirectedGraph(2, [(0, 1), (1, 0)]).topological_order()

    def test_view_is_directional(self):
        d = DirectedGraph(3, [(0, 1), (1, 0), (1, 2)])
        view = d.without([(0, 1)])
        assert not view.has_arc(0, 1)
        assert view.has_arc(1, 0)  # the opposite arc survives
        assert sorted(view.neighbors(0)) == []
        assert list(view.arcs()) != list(d.arcs())


class TestGenerators:
    def test_layered_dag_structure(self):
        dag = random_layered_dag(4, 3, p=0.5, seed=1)
        assert dag.n == 12
        assert dag.is_acyclic()
        # every non-final-layer vertex has at least one out-arc
        for v in range(9):
            assert dag.out_degree(v) >= 1

    def test_skip_arcs(self):
        dag = random_layered_dag(5, 3, p=0.5, seed=2, skip_p=1.0)
        # with skip_p = 1 every eligible vertex skips
        assert any(v - u > 3 for u, v in dag.arcs())
        assert dag.is_acyclic()

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            random_layered_dag(1, 3)
        with pytest.raises(GraphError):
            random_layered_dag(3, 3, p=2.0)

    def test_diamond_stack(self):
        dag = diamond_stack(3)
        assert dag.n == 1 + 3 * 3
        assert dag.is_acyclic()

    def test_path_dag(self):
        dag = path_dag(5)
        assert dag.m == 4
        assert dag.is_acyclic()


class TestDagRestorationLemma:
    def test_holds_on_layered_dags(self):
        for seed in range(3):
            dag = random_layered_dag(5, 3, p=0.6, seed=seed, skip_p=0.2)
            for arc in dag.arcs():
                for s in range(0, dag.n, 4):
                    for t in range(2, dag.n, 5):
                        if s != t:
                            assert verify_dag_restoration_lemma(
                                dag, s, t, arc
                            )

    def test_vacuous_on_path(self):
        dag = path_dag(4)
        assert verify_dag_restoration_lemma(dag, 0, 3, (1, 2))


class TestDagTiebreaking:
    def test_requires_acyclic(self):
        cyclic = DirectedGraph(2, [(0, 1), (1, 0)])
        with pytest.raises(GraphError):
            DagTiebreaking(cyclic)

    def test_paths_are_shortest(self):
        dag = random_layered_dag(5, 4, p=0.5, seed=3)
        scheme = DagTiebreaking(dag, seed=1)
        from repro.spt.dijkstra import dijkstra

        dist, _ = dijkstra(dag, 0, lambda u, v: 1)
        for t in dag.vertices():
            hops = scheme.hop_distance(0, t)
            if t in dist:
                assert hops == dist[t]
            else:
                assert hops is None

    def test_forward_backward_agree(self):
        dag = random_layered_dag(4, 3, p=0.7, seed=5)
        scheme = DagTiebreaking(dag, seed=2)
        t = dag.n - 1
        for x in dag.vertices():
            fwd = scheme.path(x, t)
            bwd = scheme.backward_path(x, t)
            if fwd is None:
                assert bwd is None
            else:
                # unique shortest paths: extraction direction irrelevant
                assert fwd.vertices == bwd.vertices

    def test_faulted_path_avoids_arc(self):
        dag = diamond_stack(3)
        scheme = DagTiebreaking(dag, seed=4)
        primary = scheme.path(0, dag.n - 1)
        arc = next(iter(primary.arcs()))
        rerouted = scheme.path(0, dag.n - 1, [arc])
        assert rerouted is not None
        assert arc not in set(rerouted.arcs())


class TestDagRestorabilityStudy:
    """Empirical evidence for the paper's conjectured DAG extension."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_layered_dags_restorable(self, seed):
        dag = random_layered_dag(4, 3, p=0.6, seed=seed)
        scheme = DagTiebreaking(dag, seed=seed)
        assert dag_restorability_violations(scheme) == []

    def test_diamond_stack_restorable(self):
        dag = diamond_stack(4)
        scheme = DagTiebreaking(dag, seed=7)
        assert dag_restorability_violations(scheme) == []

    def test_skip_arcs_restorable(self):
        dag = random_layered_dag(4, 3, p=0.6, seed=9, skip_p=0.3)
        scheme = DagTiebreaking(dag, seed=9)
        assert dag_restorability_violations(scheme) == []
