"""The kernel-backend seam: dispatch, fallback, and threading.

Bit-identity of the vectorized kernels is pinned by the hypothesis
suites (``test_csr_fastpaths``, ``test_batched_sources``,
``test_incremental``) parametrised over the ``backend`` fixture; this
module covers the seam itself — mode precedence (pin > env > auto),
the calibrated work thresholds, the numpy-absent fallback, protocol
conformance of both backends, the CSR ndarray mirror's lifecycle, and
the provenance/stats threading up through ``Session``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.backends import (
    KERNEL_NAMES,
    UNREACHABLE,
    calibrate,
    current_mode,
    numpy_or_none,
    reset_thresholds,
    set_backend,
    set_thresholds,
    thresholds,
)
from repro.backends.dispatch import backend_for, backend_name_for, kernel_impl
from repro.exceptions import BackendError, GraphError
from repro.graphs import generators
from repro.query import DistanceQuery, Session, VectorQuery
from repro.scenarios import ScenarioEngine
from repro.spt.bfs import UNREACHABLE as BFS_UNREACHABLE
from repro.spt.fastpaths import csr_bfs_distances

HAVE_NUMPY = numpy_or_none() is not None

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")


@pytest.fixture(autouse=True)
def _clean_seam(monkeypatch):
    """Every test starts unpinned, env-free, on default thresholds."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    previous = set_backend(None)
    yield
    set_backend(previous)
    reset_thresholds()


def small_csr():
    return generators.cycle(6).csr()


def big_csr():
    return generators.gnm(300, 1200, seed=4).csr()


class TestModePrecedence:
    def test_default_is_auto(self):
        assert current_mode() == "auto"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        assert current_mode() == "pyloops"
        assert backend_name_for("csr_bfs_distances", big_csr()) == "pyloops"

    def test_pin_shadows_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pyloops")
        set_backend("auto")
        assert current_mode() == "auto"

    def test_bad_env_raises_at_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "simd")
        with pytest.raises(BackendError):
            current_mode()

    def test_unknown_pin_rejected(self):
        with pytest.raises(BackendError):
            set_backend("fortran")

    def test_pin_returns_previous(self):
        assert set_backend("pyloops") is None
        assert set_backend(None) == "pyloops"


class TestAutoDispatch:
    def test_small_calls_stay_on_pyloops(self):
        # cycle(6): 12 arcs of work — far under every default threshold.
        assert backend_name_for("csr_bfs_distances", small_csr()) == "pyloops"

    @needs_numpy
    def test_large_batched_call_goes_vectorized(self):
        csr = big_csr()
        assert backend_name_for("csr_bfs_distances_many", csr,
                                batch=256) == "vectorized"

    @needs_numpy
    def test_threshold_table_is_consulted(self):
        csr = small_csr()
        set_thresholds({"csr_bfs_distances": 1})
        assert backend_name_for("csr_bfs_distances", csr) == "vectorized"
        reset_thresholds()
        assert backend_name_for("csr_bfs_distances", csr) == "pyloops"

    def test_set_thresholds_rejects_unknown_kernels(self):
        with pytest.raises(BackendError):
            set_thresholds({"csr_warp_distances": 10})

    def test_thresholds_returns_a_copy(self):
        table = thresholds()
        table["csr_bfs_distances"] = -1
        assert thresholds()["csr_bfs_distances"] != -1

    @needs_numpy
    def test_weighted_auto_requires_safe_weights(self):
        # Weights near 2**62 would overflow a vectorized path sum:
        # auto must route the call to the loops even above threshold.
        g = generators.cycle(6)
        csr = g.csr().with_arc_weights(lambda u, v: 1 << 61)
        set_thresholds({"csr_weighted_distances": 1})
        assert backend_name_for("csr_weighted_distances",
                                csr) == "pyloops"


class TestNumpyFallback:
    def test_no_numpy_env_disables_probe(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_or_none() is None

    def test_no_numpy_env_zero_is_off(self, monkeypatch):
        # "0" disables the kill switch, so availability must track the
        # actual install — not HAVE_NUMPY, which snapshots the outer
        # environment (a no-numpy CI leg exports REPRO_NO_NUMPY=1).
        monkeypatch.setenv("REPRO_NO_NUMPY", "0")
        try:
            import numpy  # noqa: F401
            installed = True
        except ImportError:
            installed = False
        assert (numpy_or_none() is None) == (not installed)

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert backend_name_for("csr_bfs_distances_many", big_csr(),
                                batch=256) == "pyloops"

    def test_forcing_vectorized_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with pytest.raises(BackendError):
            set_backend("vectorized")

    def test_env_forced_vectorized_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        with pytest.raises(BackendError):
            backend_for("csr_bfs_distances", small_csr())

    def test_kernels_still_serve_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        csr = small_csr()
        assert csr_bfs_distances(csr, None, 0) == [0, 1, 2, 3, 2, 1]


class TestProtocolConformance:
    @pytest.mark.parametrize("mode", ["pyloops", "vectorized"])
    def test_backend_exposes_every_kernel(self, mode):
        if mode == "vectorized" and not HAVE_NUMPY:
            pytest.skip("needs numpy")
        set_backend(mode)
        backend = backend_for("csr_bfs_distances", small_csr())
        assert backend.name == mode
        for kernel in KERNEL_NAMES:
            assert callable(getattr(backend, kernel)), kernel

    def test_unreached_sentinel_is_shared(self):
        assert UNREACHABLE == BFS_UNREACHABLE == -1

    @needs_numpy
    def test_kernel_impl_routes_by_mode(self):
        csr = small_csr()
        set_backend("vectorized")
        vec_fn = kernel_impl("csr_bfs_distances", csr)
        set_backend("pyloops")
        loop_fn = kernel_impl("csr_bfs_distances", csr)
        assert vec_fn is not loop_fn
        assert vec_fn(csr, None, 0) == loop_fn(csr, None, 0)

    @needs_numpy
    def test_unknown_source_raises_on_both(self):
        csr = small_csr()
        for mode in ("pyloops", "vectorized"):
            set_backend(mode)
            with pytest.raises(GraphError):
                kernel_impl("csr_bfs_distances", csr)(csr, None, 99)


class TestNDMirror:
    @needs_numpy
    def test_mirror_is_cached(self):
        csr = small_csr()
        nd = csr.ndarrays()
        assert nd is not None
        assert csr.ndarrays() is nd

    def test_mirror_none_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert small_csr().ndarrays() is None

    @needs_numpy
    def test_pickle_drops_the_mirror(self):
        csr = small_csr()
        csr.ndarrays()
        clone = pickle.loads(pickle.dumps(csr))
        assert clone._nd is None
        assert clone.indptr == csr.indptr
        assert clone.ndarrays() is not None

    @needs_numpy
    def test_weighted_mirror_carries_reverse_map(self):
        np = numpy_or_none()
        csr = generators.cycle(5).csr().with_arc_weights(
            lambda u, v: 1 + u * 10 + v)
        nd = csr.ndarrays()
        assert nd.weights is not None
        # rev[i] is the arc (head_i, tail_i): weights[rev] must be the
        # reverse-direction weight of every arc.
        for i in range(len(csr.indices)):
            t, h = int(nd.tails[i]), int(nd.indices[i])
            assert int(nd.weights[nd.rev[i]]) == 1 + h * 10 + t
        assert np is not None


class TestCalibrate:
    @needs_numpy
    def test_calibrate_installs_a_full_table(self):
        table = calibrate(sizes=(24,), repeats=1)
        assert set(table) == set(KERNEL_NAMES)
        assert all(v >= 1 for v in table.values())
        assert thresholds() == table

    def test_calibrate_is_a_noop_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        before = thresholds()
        assert calibrate(sizes=(24,), repeats=1) == before


class TestBackendThreading:
    def test_cache_info_reports_wave_backends(self):
        engine = ScenarioEngine(generators.torus(4, 4))
        engine.source_vectors([0, 1, 2], [(0, 1)], try_delta=False)
        info = engine.cache_info()
        assert dict(info.wave_backends) == {engine.wave_backend(3): 1}
        assert dict(info)["wave_backends"] == info.wave_backends

    def test_wave_backend_probe_is_pure(self):
        engine = ScenarioEngine(generators.torus(4, 4))
        name = engine.wave_backend(64)
        assert name in ("pyloops", "vectorized")
        assert engine.cache_info().wave_backends == ()

    def test_wave_provenance_carries_backend(self):
        session = Session(generators.torus(4, 4))
        answer = session.answer(
            [VectorQuery(source=0, faults=((0, 1),))])[0]
        assert answer.provenance.source == "wave"
        assert answer.provenance.backend in ("pyloops", "vectorized")

    def test_cached_answer_has_no_backend(self):
        session = Session(generators.torus(4, 4))
        query = [DistanceQuery(source=0, target=5, faults=((0, 1),))]
        session.answer(query)
        again = session.answer(query)[0]
        assert again.provenance.source == "cache"
        assert again.provenance.backend is None

    def test_session_stats_count_by_backend(self):
        session = Session(generators.torus(4, 4))
        session.answer([VectorQuery(source=s, faults=((0, 1),))
                        for s in range(4)])
        stats = session.stats
        assert sum(stats.by_backend.values()) == stats.wave + stats.delta
        assert set(stats.by_backend) <= {"pyloops", "vectorized"}

    def test_delta_provenance_carries_backend(self):
        g = generators.torus(5, 5)
        session = Session(g)
        faults = ((0, 1),)
        # Warm the origin so the delta path serves the repeat.
        session.answer([VectorQuery(source=0, faults=faults)])
        session.answer([VectorQuery(source=0, faults=((0, 5),))])
        answers = session.answer([VectorQuery(source=0,
                                              faults=((1, 2),))])
        prov = answers[0].provenance
        if prov.source == "delta":
            assert prov.backend in ("pyloops", "vectorized")
            assert prov.backend == session.engine.last_repair_backend
