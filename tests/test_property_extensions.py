"""Property-based tests for the extension modules (weighted, DAG, io).

The weighted restoration lemma and the conjectured DAG restorability
are tested as universal properties over random instances — the same
methodology as :mod:`tests.test_property_based`, pointed at the
Section-1.2 extensions.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphs.base import Graph
from repro.weighted import (
    BaseSet,
    WeightedGraph,
    weighted_restoration_lemma_holds,
)
from repro.dag import DagTiebreaking, dag_restorability_violations
from repro.dag.generators import random_layered_dag
from repro.spt.apsp import replacement_distance
from repro.spt.bfs import UNREACHABLE

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_graphs(draw, min_n=4, max_n=12, max_weight=9):
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    wg = WeightedGraph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        wg.add_edge(order[i], order[rng.randrange(i)],
                    rng.randint(1, max_weight))
    for _ in range(draw(st.integers(0, 2 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not wg.has_edge(u, v):
            wg.add_edge(u, v, rng.randint(1, max_weight))
    return wg


class TestWeightedLemmaProperty:
    @given(weighted_graphs(), st.data())
    @settings(max_examples=20, **COMMON)
    def test_theorem11_universal(self, wg, data):
        edges = list(wg.edges())
        e = edges[data.draw(st.integers(0, len(edges) - 1))]
        s = data.draw(st.integers(0, wg.n - 1))
        t = data.draw(st.integers(0, wg.n - 1))
        if s != t:
            assert weighted_restoration_lemma_holds(wg, s, t, e)

    @given(weighted_graphs(max_weight=1), st.data())
    @settings(max_examples=10, **COMMON)
    def test_unit_weight_case_matches_unweighted(self, wg, data):
        # with all weights 1 the weighted lemma specialises to the
        # unweighted one, already proven universal in the core tests
        edges = list(wg.edges())
        e = edges[data.draw(st.integers(0, len(edges) - 1))]
        assert weighted_restoration_lemma_holds(wg, 0, wg.n - 1, e)


class TestBaseSetProperty:
    @given(st.integers(0, 2**10), st.integers(8, 16))
    @settings(max_examples=10, **COMMON)
    def test_base_set_restores_exactly(self, seed, n):
        from repro.graphs.generators import connected_erdos_renyi
        from repro.exceptions import DisconnectedError

        g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
        base = BaseSet(g, seed=seed)
        path = base.canonical(0, n - 1)
        for e in path.edges():
            truth = replacement_distance(g, 0, n - 1, [e])
            if truth == UNREACHABLE:
                continue
            assert base.restore(0, n - 1, e).hops == truth


class TestDagProperty:
    @given(st.integers(0, 2**10), st.integers(3, 5), st.integers(2, 4),
           st.floats(0.0, 0.4))
    @settings(max_examples=12, **COMMON)
    def test_dag_restorability_conjecture(self, seed, layers, width,
                                          skip_p):
        dag = random_layered_dag(layers, width, p=0.6, seed=seed,
                                 skip_p=skip_p)
        scheme = DagTiebreaking(dag, seed=seed)
        # restrict to a pair sample to keep each example fast
        pairs = [(0, dag.n - 1), (1, dag.n - 2), (0, dag.n // 2)]
        pairs = [(s, t) for s, t in pairs if s != t]
        arcs = list(dag.arcs())[:10]
        assert dag_restorability_violations(
            scheme, fault_arcs=arcs, pairs=pairs
        ) == []


class TestSerializationProperty:
    @given(st.integers(0, 2**10), st.integers(3, 20))
    @settings(max_examples=20, **COMMON)
    def test_edgelist_round_trip(self, seed, n):
        import tempfile
        from pathlib import Path

        from repro.graphs.generators import gnm
        from repro.graphs.io import read_edgelist, write_edgelist

        max_m = n * (n - 1) // 2
        g = gnm(n, min(2 * n, max_m), seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.edges"
            write_edgelist(g, path)
            assert read_edgelist(path) == g
