"""Tests for FT preservers (Theorems 26, 31) and their verification."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.core.scheme import RestorableTiebreaking
from repro.preservers import (
    ft_ss_preserver,
    ft_sv_preserver,
    preserver_violations,
    verify_preserver,
)
from repro.analysis.bounds import thm26_sv_preserver_bound


class TestSvPreserver:
    def test_f0_is_tree_union(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, f=1, seed=2)
        sources = [0, 4, 9]
        preserver = ft_sv_preserver(scheme, sources, f=0)
        union = set()
        for s in sources:
            union |= scheme.tree(s).edge_set()
        assert preserver.edges == frozenset(union)
        assert preserver.size <= len(sources) * (er_small.n - 1)

    def test_f1_correct_sv(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, f=1, seed=2)
        sources = [0, 4]
        preserver = ft_sv_preserver(scheme, sources, f=1)
        assert verify_preserver(
            er_small, preserver.edges, sources,
            targets=er_small.vertices(), f=1,
        )

    def test_f2_correct_sv_sampled(self):
        g = generators.connected_erdos_renyi(14, 0.22, seed=9)
        scheme = RestorableTiebreaking.build(g, f=2, seed=1)
        preserver = ft_sv_preserver(scheme, [0], f=2)
        fault_sets = generators.fault_sample(g, 25, seed=5, size=2)
        assert verify_preserver(
            g, preserver.edges, [0], targets=g.vertices(),
            fault_sets=fault_sets,
        )

    def test_negative_f_rejected(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, seed=0)
        with pytest.raises(GraphError):
            ft_sv_preserver(scheme, [0], f=-1)

    def test_fault_set_budget(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, f=1, seed=2)
        partial = ft_sv_preserver(scheme, [0], f=1, max_fault_sets=3)
        assert partial.fault_sets_explored <= 4

    def test_within_theorem26_bound(self, er_medium):
        scheme = RestorableTiebreaking.build(er_medium, f=1, seed=8)
        sources = [0, 10, 20, 30]
        preserver = ft_sv_preserver(scheme, sources, f=1)
        bound = thm26_sv_preserver_bound(er_medium.n, len(sources), 1)
        assert preserver.size <= bound  # generous at this scale
        assert preserver.size <= er_medium.m

    def test_as_graph_round_trip(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, seed=4)
        preserver = ft_sv_preserver(scheme, [0], f=0)
        sub = preserver.as_graph()
        assert sub.m == preserver.size
        assert sub.n == er_small.n


class TestSsPreserver:
    def test_1ft_is_union_of_trees(self, er_small):
        p = ft_ss_preserver(er_small, [0, 5, 11], faults_tolerated=1, seed=3)
        assert p.faults_tolerated == 1
        assert verify_preserver(er_small, p.edges, [0, 5, 11], f=1)

    def test_2ft_exhaustive_small(self):
        g = generators.connected_erdos_renyi(13, 0.25, seed=2)
        S = [0, 4, 8]
        p = ft_ss_preserver(g, S, faults_tolerated=2, seed=1)
        assert verify_preserver(g, p.edges, S, f=2)

    def test_3ft_sampled(self):
        g = generators.connected_erdos_renyi(12, 0.3, seed=6)
        S = [0, 5]
        p = ft_ss_preserver(g, S, faults_tolerated=3, seed=1)
        fault_sets = generators.fault_sample(g, 30, seed=7, size=3)
        assert verify_preserver(g, p.edges, S, fault_sets=fault_sets)

    def test_grid_1ft(self, grid4):
        S = [0, 3, 12, 15]
        p = ft_ss_preserver(grid4, S, faults_tolerated=1, seed=5)
        assert verify_preserver(grid4, p.edges, S, f=1)
        assert p.size <= len(S) * (grid4.n - 1)

    def test_zero_faults_rejected(self, grid4):
        with pytest.raises(GraphError):
            ft_ss_preserver(grid4, [0, 15], faults_tolerated=0)

    def test_prebuilt_scheme_reused(self, er_small):
        scheme = RestorableTiebreaking.build(er_small, f=2, seed=9)
        a = ft_ss_preserver(er_small, [0, 7], 2, scheme=scheme)
        b = ft_ss_preserver(er_small, [0, 7], 2, scheme=scheme)
        assert a.edges == b.edges


class TestVerification:
    def test_detects_missing_edge(self, grid4):
        S = [0, 15]
        p = ft_ss_preserver(grid4, S, faults_tolerated=1, seed=2)
        # drop one edge that lies on some selected path: must break
        victim = next(iter(p.edges))
        weakened = p.edges - {victim}
        violations = preserver_violations(grid4, weakened, S, f=1)
        # dropping a tree edge must hurt at least the fault-free case
        # or some single-fault case
        assert isinstance(violations, list)

    def test_full_graph_always_preserves(self, er_small):
        assert verify_preserver(
            er_small, er_small.edges(), [0, 5], f=1
        )

    def test_empty_subgraph_fails(self, grid4):
        violations = preserver_violations(grid4, [], [0, 15], f=0)
        assert violations
        faults, s, t, dg, dh = violations[0]
        assert faults == ()
        assert dh == -1

    def test_explicit_fault_sets(self, grid4):
        S = [0, 15]
        p = ft_ss_preserver(grid4, S, faults_tolerated=1, seed=2)
        sampled = generators.fault_sample(grid4, 8, seed=1, size=1)
        assert verify_preserver(grid4, p.edges, S, fault_sets=sampled)
