"""Tests for FT +4 additive spanners (Lemma 32, Theorem 33)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.spanners import ft_plus4_spanner, spanner_violations, verify_spanner
from repro.spanners.additive import default_sigma


class TestConstruction:
    def test_1ft_stretch_exhaustive(self):
        g = generators.connected_erdos_renyi(16, 0.2, seed=4)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, seed=1)
        assert verify_spanner(g, spanner.edges, f=1, additive=4)

    def test_2ft_stretch_sampled(self):
        g = generators.connected_erdos_renyi(14, 0.25, seed=8)
        spanner = ft_plus4_spanner(g, faults_tolerated=2, seed=2)
        fault_sets = generators.fault_sample(g, 25, seed=3, size=2)
        assert verify_spanner(
            g, spanner.edges, additive=4, fault_sets=fault_sets
        )

    def test_unclustered_vertices_keep_all_edges(self):
        g = generators.connected_erdos_renyi(20, 0.15, seed=5)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, sigma=4, seed=1)
        for v in g.vertices():
            if v not in spanner.clustered:
                for u in g.neighbors(v):
                    edge = (min(u, v), max(u, v))
                    assert edge in spanner.edges

    def test_clustered_vertices_keep_f_plus_1_center_edges(self):
        g = generators.complete(12)  # everyone clusters
        spanner = ft_plus4_spanner(g, faults_tolerated=1, sigma=6, seed=3)
        centers = set(spanner.centers)
        for v in spanner.clustered:
            kept = [
                e for e in spanner.edges
                if v in e and (set(e) - {v}).issubset(centers)
            ]
            assert len(kept) >= 2  # f + 1 = 2

    def test_zero_faults_rejected(self, grid4):
        with pytest.raises(GraphError):
            ft_plus4_spanner(grid4, faults_tolerated=0)

    def test_spanner_is_subgraph(self, grid4):
        spanner = ft_plus4_spanner(grid4, faults_tolerated=1, seed=7)
        graph_edges = set(grid4.edges())
        assert all(e in graph_edges for e in spanner.edges)

    def test_preserver_size_recorded(self):
        g = generators.connected_erdos_renyi(18, 0.2, seed=9)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, seed=4)
        assert 0 < spanner.preserver_size <= spanner.size + len(g.vertices())

    def test_as_graph(self, grid4):
        spanner = ft_plus4_spanner(grid4, faults_tolerated=1, seed=7)
        assert spanner.as_graph().m == spanner.size


class TestDefaultSigma:
    def test_theorem33_balance(self):
        # f = 0 overlay: sigma = n^{1/2}
        assert default_sigma(100, 0) == 10
        # f = 1 overlay: sigma = n^{1/3}
        assert default_sigma(1000, 1) == 10

    def test_clipping(self):
        assert default_sigma(1, 0) == 1
        assert 1 <= default_sigma(4, 3) <= 4


class TestVerificationHarness:
    def test_full_graph_is_spanner(self, grid4):
        assert verify_spanner(grid4, grid4.edges(), f=1)

    def test_detects_bad_stretch(self):
        g = generators.cycle(12)
        # a single spanning path of the cycle has stretch 11 > +4
        spine = [(i, i + 1) for i in range(11)]
        violations = spanner_violations(g, spine, f=0)
        assert violations

    def test_disconnection_counts_as_violation(self):
        g = generators.cycle(6)
        violations = spanner_violations(g, [], f=0)
        assert violations
        assert violations[0][4] == -1


class TestPlus2Spanner:
    """The prior-work +2 FT comparator (Section 1.1)."""

    def test_1ft_plus2_stretch_exhaustive(self):
        from repro.spanners import ft_plus2_spanner

        g = generators.connected_erdos_renyi(14, 0.25, seed=6)
        spanner = ft_plus2_spanner(g, faults_tolerated=1, seed=2)
        assert verify_spanner(g, spanner.edges, f=1, additive=2)

    def test_2ft_plus2_sampled(self):
        from repro.spanners import ft_plus2_spanner

        g = generators.connected_erdos_renyi(12, 0.35, seed=9)
        spanner = ft_plus2_spanner(g, faults_tolerated=2, seed=1)
        fault_sets = generators.fault_sample(g, 15, seed=4, size=2)
        assert verify_spanner(
            g, spanner.edges, additive=2, fault_sets=fault_sets
        )

    def test_plus4_sparser_on_dense_inputs(self):
        from repro.spanners import ft_plus2_spanner

        g = generators.connected_erdos_renyi(60, 0.35, seed=11)
        p2 = ft_plus2_spanner(g, faults_tolerated=1, seed=3)
        p4 = ft_plus4_spanner(g, faults_tolerated=1, seed=3)
        assert p4.size < p2.size

    def test_invalid_faults(self):
        from repro.spanners import ft_plus2_spanner

        with pytest.raises(GraphError):
            ft_plus2_spanner(generators.cycle(5), faults_tolerated=0)

    def test_default_sigma_plus2(self):
        from repro.spanners.plus2 import default_sigma_plus2

        assert default_sigma_plus2(1000, 1) == 10
        assert 1 <= default_sigma_plus2(2, 1) <= 2
