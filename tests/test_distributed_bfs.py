"""Tests for distributed tie-breaking SPTs (Lemma 34)."""

import pytest

from repro.graphs import generators
from repro.core.weights import AntisymmetricWeights
from repro.distributed.bfs import ConvergingBFSNode, distributed_spt
from repro.spt.apsp import diameter, eccentricity
from repro.spt.trees import ShortestPathTree


@pytest.fixture(scope="module")
def setup():
    g = generators.torus(4, 4)
    atw = AntisymmetricWeights.random(g, f=1, seed=6)
    return g, atw


class TestLemma34:
    def test_tree_equals_centralized(self, setup):
        g, atw = setup
        for source in (0, 7, 13):
            tree, _stats = distributed_spt(g, source, atw.weight, atw.scale)
            central = ShortestPathTree.compute(g, source, atw.weight, atw.scale)
            assert tree.edge_set() == central.edge_set()
            for v in g.vertices():
                assert tree.weighted_distance(v) == central.weighted_distance(v)

    def test_rounds_linear_in_depth(self, setup):
        g, atw = setup
        tree, stats = distributed_spt(g, 0, atw.weight, atw.scale)
        ecc = eccentricity(g, 0)
        # layered protocol: one phase per layer (+1 delivery round)
        assert stats.rounds <= ecc + 2
        assert stats.rounds >= ecc

    def test_constant_messages_per_edge(self, setup):
        g, atw = setup
        _tree, stats = distributed_spt(g, 0, atw.weight, atw.scale)
        assert stats.max_edge_congestion <= 1  # each vertex announces once
        assert stats.messages <= 2 * g.m

    def test_message_words_reflect_weight_bits(self, setup):
        g, atw = setup
        _tree, stats = distributed_spt(g, 0, atw.weight, atw.scale)
        # isolation-lemma weights are O(f log n)-bit; words > messages
        assert stats.words > stats.messages

    def test_faulted_instance_avoids_edge(self, setup):
        g, atw = setup
        fault = (0, 1)
        tree, _stats = distributed_spt(
            g, 0, atw.weight, atw.scale, faults=(fault,)
        )
        central = ShortestPathTree.compute(
            g.without([fault]), 0, atw.weight, atw.scale
        )
        assert tree.edge_set() == central.edge_set()
        assert fault not in tree.edge_set()


class TestConvergingVariant:
    def test_same_tree_as_layered(self, setup):
        g, atw = setup
        layered, _ = distributed_spt(g, 3, atw.weight, atw.scale)
        converging, _ = distributed_spt(
            g, 3, atw.weight, atw.scale, node_cls=ConvergingBFSNode
        )
        assert layered.edge_set() == converging.edge_set()

    def test_correct_under_tight_capacity(self, setup):
        # With shared capacity the converging protocol still converges
        # to the unique SPT (it only ever runs alone here, but routed
        # through the queueing code path).
        g, atw = setup
        from repro.distributed.congest import CongestSimulator

        sim = CongestSimulator(g, capacity_messages=1, queue_excess=True)
        nodes = {
            v: ConvergingBFSNode(v, 0, atw.weight, sim.word_bits)
            for v in g.vertices()
        }
        sim.run(nodes)
        central = ShortestPathTree.compute(g, 0, atw.weight, atw.scale)
        for v in g.vertices():
            assert nodes[v].dist == central.weighted_distance(v)

    def test_unreached_on_disconnected(self):
        from repro.graphs.base import Graph

        g = Graph(3, [(0, 1)])
        atw = AntisymmetricWeights.random(g, f=1, seed=0)
        tree, _ = distributed_spt(g, 0, atw.weight, atw.scale)
        assert not tree.reaches(2)
        assert tree.reaches(1)
