"""Tests for distributed FT +4 spanners (Corollary 9)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.distributed.spanner import distributed_ft_spanner
from repro.spanners import verify_spanner


class TestCorollary9:
    @pytest.fixture(scope="class")
    def built(self):
        g = generators.connected_erdos_renyi(16, 0.2, seed=2)
        result = distributed_ft_spanner(g, faults_tolerated=1, seed=3)
        return g, result

    def test_stretch_exhaustive(self, built):
        g, result = built
        assert verify_spanner(g, result.spanner.edges, f=1, additive=4)

    def test_rounds_include_clustering(self, built):
        _g, result = built
        assert result.clustering_stats.rounds >= 1
        assert result.total_rounds == (
            result.clustering_stats.rounds
            + result.preserver_result.total_rounds
        )

    def test_clustering_announcement_is_one_broadcast(self, built):
        g, result = built
        # centers broadcast once: messages <= sum of center degrees
        center_degree = sum(g.degree(c) for c in result.spanner.centers)
        assert result.clustering_stats.messages <= center_degree

    def test_2ft_sampled(self):
        g = generators.connected_erdos_renyi(12, 0.3, seed=7)
        result = distributed_ft_spanner(g, faults_tolerated=2, seed=1)
        fault_sets = generators.fault_sample(g, 15, seed=4, size=2)
        assert verify_spanner(
            g, result.spanner.edges, additive=4, fault_sets=fault_sets
        )

    def test_invalid_faults(self):
        with pytest.raises(GraphError):
            distributed_ft_spanner(generators.path(4), faults_tolerated=0)

    def test_spanner_metadata(self, built):
        g, result = built
        spanner = result.spanner
        assert spanner.faults_tolerated == 1
        assert set(spanner.centers).issubset(set(g.vertices()))
        assert spanner.preserver_size <= spanner.size + g.n
