"""Unit tests for fault views ``G \\ F``."""

import pytest

from repro.graphs.base import Graph
from repro.graphs.views import FaultView, GraphLike


@pytest.fixture
def square():
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestFaultView:
    def test_edge_removed_in_view_only(self, square):
        view = square.without([(1, 0)])
        assert not view.has_edge(0, 1)
        assert square.has_edge(0, 1)
        assert view.m == 3
        assert square.m == 4

    def test_orientation_insensitive(self, square):
        assert not square.without([(1, 0)]).has_edge(0, 1)
        assert not square.without([(0, 1)]).has_edge(1, 0)

    def test_unknown_fault_ignored(self, square):
        view = square.without([(0, 2)])
        assert view.m == square.m

    def test_neighbors_filtered(self, square):
        view = square.without([(0, 1)])
        assert sorted(view.neighbors(0)) == [3]
        assert view.sorted_neighbors(1) == [2]
        assert view.degree(0) == 1

    def test_edges_and_arcs_filtered(self, square):
        view = square.without([(0, 1)])
        assert (0, 1) not in set(view.edges())
        assert (1, 0) not in set(view.arcs())
        assert len(list(view.edges())) == 3
        assert len(list(view.arcs())) == 6

    def test_views_compose_flat(self, square):
        double = square.without([(0, 1)]).without([(2, 3)])
        assert double.base is square
        assert double.faults == frozenset({(0, 1), (2, 3)})
        assert double.m == 2

    def test_materialize(self, square):
        solid = square.without([(0, 1)]).materialize()
        assert isinstance(solid, Graph)
        assert solid.m == 3
        assert solid.n == 4

    def test_connectivity(self, square):
        assert square.without([(0, 1)]).is_connected()
        assert not square.without([(0, 1), (2, 3)]).is_connected()

    def test_protocol_conformance(self, square):
        view = square.without([(0, 1)])
        assert isinstance(view, GraphLike)
        assert isinstance(square, GraphLike)

    def test_vertices_passthrough(self, square):
        view = square.without([(0, 1)])
        assert list(view.vertices()) == [0, 1, 2, 3]
        assert view.n == 4
        assert view.has_vertex(3)
        assert not view.has_vertex(4)
