"""Unit tests for the Graph substrate."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.base import Graph, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            canonical_edge(2, 2)


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []

    def test_edges_in_constructor(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.m == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 1)

    def test_duplicate_edges_ignored(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_negative_vertices_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_unknown_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 5)

    def test_non_int_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, "a")

    def test_add_vertex_returns_new_id(self):
        g = Graph(2)
        assert g.add_vertex() == 2
        assert g.n == 3

    def test_add_vertices_returns_range(self):
        g = Graph(1)
        ids = g.add_vertices(3)
        assert list(ids) == [1, 2, 3]

    def test_add_path(self):
        g = Graph(4)
        g.add_path([0, 1, 2, 3])
        assert g.m == 3
        assert g.has_edge(1, 2)


class TestQueries:
    def test_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert sorted(g.neighbors(0)) == [1, 2, 3]
        assert g.sorted_neighbors(0) == [1, 2, 3]
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_edges_are_canonical_and_unique(self):
        g = Graph(3, [(2, 0), (1, 2)])
        assert sorted(g.edges()) == [(0, 2), (1, 2)]

    def test_arcs_give_both_orientations(self):
        g = Graph(2, [(0, 1)])
        assert sorted(g.arcs()) == [(0, 1), (1, 0)]

    def test_has_edge_bounds(self):
        g = Graph(2, [(0, 1)])
        assert not g.has_edge(0, 5)
        assert not g.has_edge(0, 0)

    def test_is_connected(self):
        assert Graph(0).is_connected()
        assert Graph(3, [(0, 1), (1, 2)]).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()


class TestDerived:
    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1
        assert h.m == 2

    def test_equality(self):
        assert Graph(2, [(0, 1)]) == Graph(2, [(1, 0)])
        assert Graph(2, [(0, 1)]) != Graph(3, [(0, 1)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(1))

    def test_networkx_round_trip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_networkx_relabels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("b", "a")
        g = Graph.from_networkx(nxg)
        assert g.n == 2
        assert g.has_edge(0, 1)
