"""Tests for distributed FT preservers (Lemma 36, Theorem 8)."""

import pytest

from repro.exceptions import CongestError, GraphError
from repro.graphs import generators
from repro.core.weights import AntisymmetricWeights
from repro.distributed.preserver import (
    distributed_ss_preserver,
    distributed_sv_preserver,
)
from repro.preservers import ft_sv_preserver, verify_preserver
from repro.core.scheme import RestorableTiebreaking
from repro.spt.apsp import diameter
from repro.distributed.scheduler import theorem35_bound


class TestLemma36:
    @pytest.fixture(scope="class")
    def built(self):
        g = generators.torus(4, 4)
        S = [0, 5, 10, 15]
        result = distributed_ss_preserver(g, S, faults_tolerated=1, seed=4)
        return g, S, result

    def test_preserver_correct(self, built):
        g, S, result = built
        assert verify_preserver(g, result.preserver.edges, S, f=1)

    def test_size_bound_sn(self, built):
        g, S, result = built
        assert result.preserver.size <= len(S) * (g.n - 1)

    def test_rounds_near_d_plus_s(self, built):
        g, S, result = built
        bound = theorem35_bound(
            result.max_edge_congestion, diameter(g) + len(S), g.n
        )
        assert result.total_rounds <= bound

    def test_one_wave_for_single_fault(self, built):
        _g, S, result = built
        assert len(result.wave_stats) == 1
        assert result.instances == len(S)


class TestTheorem8Higher:
    def test_2ft_ss_preserver_correct(self):
        g = generators.connected_erdos_renyi(14, 0.22, seed=3)
        S = [0, 4, 9]
        result = distributed_ss_preserver(g, S, faults_tolerated=2, seed=1)
        assert verify_preserver(g, result.preserver.edges, S, f=2)
        assert len(result.wave_stats) == 2
        assert result.instances > len(S)

    def test_3ft_ss_preserver_sampled(self):
        g = generators.connected_erdos_renyi(10, 0.35, seed=5)
        S = [0, 5]
        result = distributed_ss_preserver(
            g, S, faults_tolerated=3, seed=2, max_instances=4000
        )
        fault_sets = generators.fault_sample(g, 20, seed=9, size=3)
        assert verify_preserver(
            g, result.preserver.edges, S, fault_sets=fault_sets
        )

    def test_matches_centralized_overlay(self):
        g = generators.connected_erdos_renyi(14, 0.22, seed=3)
        S = [0, 4]
        weights = AntisymmetricWeights.random(g, f=2, seed=8)
        dist_result = distributed_sv_preserver(g, S, f=1, weights=weights)
        scheme = RestorableTiebreaking(weights)
        central = ft_sv_preserver(scheme, S, f=1)
        assert dist_result.preserver.edges == central.edges

    def test_instance_budget_guard(self):
        g = generators.connected_erdos_renyi(20, 0.2, seed=1)
        with pytest.raises(CongestError):
            distributed_sv_preserver(g, [0, 1], f=2, max_instances=10)

    def test_invalid_params(self):
        g = generators.path(4)
        with pytest.raises(GraphError):
            distributed_ss_preserver(g, [0, 3], faults_tolerated=0)
        with pytest.raises(GraphError):
            distributed_sv_preserver(g, [0], f=-1)

    def test_stats_aggregation(self):
        g = generators.grid(3, 3)
        result = distributed_ss_preserver(g, [0, 8], faults_tolerated=2, seed=6)
        assert result.total_messages == sum(
            s.messages for s in result.wave_stats
        )
        assert result.total_rounds == sum(
            s.rounds for s in result.wave_stats
        )
        assert result.max_edge_congestion >= 1
