"""Property-based tests (hypothesis) on core invariants.

Strategies generate small random connected graphs and random fault
choices; the properties are the paper's invariants: path algebra laws,
ATW antisymmetry/uniqueness, Theorem 19's stability + consistency +
restorability, Theorem 1's restoration lemma, and preserver/labeling
correctness under faults.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphs.base import Graph
from repro.core.restoration import (
    restore_by_concatenation,
    verify_restoration_lemma,
    verify_weighted_restoration_lemma,
)
from repro.core.scheme import RestorableTiebreaking
from repro.core.weights import AntisymmetricWeights
from repro.spt.apsp import replacement_distance
from repro.spt.bfs import UNREACHABLE, bfs_distances
from repro.spt.paths import Path

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_n=4, max_n=14):
    """A connected graph: random spanning tree + random extra edges."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    g = Graph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


@st.composite
def simple_paths(draw, max_len=8):
    """A simple vertex sequence usable as a Path."""
    verts = draw(
        st.lists(st.integers(0, 50), min_size=1, max_size=max_len,
                 unique=True)
    )
    return Path(verts)


# ----------------------------------------------------------------------
# path algebra laws
# ----------------------------------------------------------------------
class TestPathAlgebra:
    @given(simple_paths())
    @settings(max_examples=60, **COMMON)
    def test_reverse_involution(self, p):
        assert p.reverse().reverse() == p

    @given(simple_paths())
    @settings(max_examples=60, **COMMON)
    def test_reverse_swaps_endpoints(self, p):
        r = p.reverse()
        assert (r.source, r.target) == (p.target, p.source)
        assert r.hops == p.hops

    @given(simple_paths())
    @settings(max_examples=60, **COMMON)
    def test_edges_orientation_invariant(self, p):
        assert p.edge_set() == p.reverse().edge_set()

    @given(simple_paths(), simple_paths())
    @settings(max_examples=60, **COMMON)
    def test_concat_lengths_add(self, p, q):
        if p.target != q.source:
            return
        joined = p.concat(q)
        assert joined.hops == p.hops + q.hops
        assert joined.source == p.source and joined.target == q.target

    @given(simple_paths())
    @settings(max_examples=60, **COMMON)
    def test_prefix_suffix_partition(self, p):
        for v in p:
            pre = p.prefix_to(v)
            suf = p.suffix_from(v)
            assert pre.concat(suf) == p


# ----------------------------------------------------------------------
# ATW invariants
# ----------------------------------------------------------------------
class TestWeightInvariants:
    @given(connected_graphs(), st.integers(0, 2**16))
    @settings(max_examples=20, **COMMON)
    def test_antisymmetry_and_uniqueness(self, g, seed):
        atw = AntisymmetricWeights.random(g, f=1, seed=seed)
        assert atw.verify_antisymmetry()
        from repro.spt.dijkstra import count_min_weight_paths

        counts = count_min_weight_paths(g, 0, atw.weight)
        assert all(c == 1 for c in counts.values())

    @given(connected_graphs())
    @settings(max_examples=15, **COMMON)
    def test_deterministic_weights_tiebreak(self, g):
        atw = AntisymmetricWeights.deterministic(g)
        # deterministic weights must tiebreak for EVERY fault set;
        # spot-check the empty set + a few single faults
        fault_sets = [()] + [(e,) for e in list(g.edges())[:4]]
        assert atw.verify_tiebreaking(fault_sets=fault_sets, sources=[0])

    @given(connected_graphs(), st.integers(0, 2**16))
    @settings(max_examples=20, **COMMON)
    def test_selected_paths_are_unweighted_shortest(self, g, seed):
        scheme = RestorableTiebreaking.build(g, f=1, seed=seed)
        dist = bfs_distances(g, 0)
        for t in g.vertices():
            assert scheme.path(0, t).hops == dist[t]


# ----------------------------------------------------------------------
# Theorem 19 + Theorem 2: the main result as a random property
# ----------------------------------------------------------------------
class TestMainTheoremProperty:
    @given(connected_graphs(), st.integers(0, 2**16), st.data())
    @settings(max_examples=25, **COMMON)
    def test_single_fault_restoration_always_succeeds(self, g, seed, data):
        scheme = RestorableTiebreaking.build(g, f=1, seed=seed)
        s = data.draw(st.integers(0, g.n - 1))
        t = data.draw(st.integers(0, g.n - 1))
        if s == t:
            return
        edges = list(g.edges())
        e = edges[data.draw(st.integers(0, len(edges) - 1))]
        target = replacement_distance(g, s, t, [e])
        if target == UNREACHABLE:
            return
        result = restore_by_concatenation(scheme, s, t, [e])
        assert result.path.hops == target
        assert result.path.avoids([e])
        assert result.path.is_valid_in(g)

    @given(connected_graphs(), st.integers(0, 2**16), st.data())
    @settings(max_examples=12, **COMMON)
    def test_two_fault_restoration(self, g, seed, data):
        scheme = RestorableTiebreaking.build(g, f=2, seed=seed)
        edges = list(g.edges())
        if len(edges) < 2:
            return
        i = data.draw(st.integers(0, len(edges) - 1))
        j = data.draw(st.integers(0, len(edges) - 1))
        if i == j:
            return
        faults = [edges[i], edges[j]]
        target = replacement_distance(g, 0, g.n - 1, faults)
        if target == UNREACHABLE:
            return
        result = restore_by_concatenation(scheme, 0, g.n - 1, faults)
        assert result.path.hops == target
        assert result.path.avoids(faults)


# ----------------------------------------------------------------------
# restoration lemmas as universal properties
# ----------------------------------------------------------------------
class TestRestorationLemmaProperty:
    @given(connected_graphs(), st.data())
    @settings(max_examples=25, **COMMON)
    def test_theorem1(self, g, data):
        edges = list(g.edges())
        e = edges[data.draw(st.integers(0, len(edges) - 1))]
        s = data.draw(st.integers(0, g.n - 1))
        t = data.draw(st.integers(0, g.n - 1))
        if s != t:
            assert verify_restoration_lemma(g, s, t, e)

    @given(connected_graphs(), st.data())
    @settings(max_examples=25, **COMMON)
    def test_theorem11(self, g, data):
        edges = list(g.edges())
        e = edges[data.draw(st.integers(0, len(edges) - 1))]
        s = data.draw(st.integers(0, g.n - 1))
        t = data.draw(st.integers(0, g.n - 1))
        if s != t:
            assert verify_weighted_restoration_lemma(g, s, t, e)


# ----------------------------------------------------------------------
# applications under random graphs
# ----------------------------------------------------------------------
class TestApplicationProperties:
    @given(connected_graphs(max_n=12), st.integers(0, 2**10))
    @settings(max_examples=10, **COMMON)
    def test_1ft_ss_preserver_property(self, g, seed):
        from repro.preservers import ft_ss_preserver, verify_preserver

        S = [0, g.n - 1, g.n // 2]
        p = ft_ss_preserver(g, S, faults_tolerated=1, seed=seed)
        assert verify_preserver(g, p.edges, S, f=1)

    @given(connected_graphs(max_n=10), st.integers(0, 2**10))
    @settings(max_examples=8, **COMMON)
    def test_labeling_single_fault_property(self, g, seed):
        from repro.labeling import DistanceLabeling

        lab = DistanceLabeling.build(g, f=0, seed=seed)
        for e in list(g.edges())[:3]:
            view = g.without([e])
            dist = bfs_distances(view, 0)
            for t in range(1, g.n):
                assert lab.distance(0, t, [e]) == dist[t]

    @given(connected_graphs(max_n=12), st.integers(0, 2**10))
    @settings(max_examples=8, **COMMON)
    def test_subset_rp_property(self, g, seed):
        from repro.replacement import subset_replacement_paths

        S = [0, g.n - 1]
        result = subset_replacement_paths(g, S, seed=seed)
        for (s1, s2), per_edge in result.distances.items():
            for e, d in per_edge.items():
                assert d == replacement_distance(g, s1, s2, [e])
