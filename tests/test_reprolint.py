"""reprolint self-tests: every rule pinned by paired good/bad fixtures.

Each rule in the analyzer is exercised twice — once on a minimal
snippet that must trigger it and once on the hoisted/copied/deferred
rewrite that must not — so a rule that silently stops firing (or
starts over-firing) breaks a named test, not just the repo sweep.  On
top of the fixtures: suppression-pragma semantics, the select/ignore
filters, both reporters, the CLI exit-code contract, and the
self-check that ``src/repro`` itself is clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import all_rules, lint_paths, lint_source
from repro.devtools.lint.cli import main
from repro.devtools.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

# A module name matched by the hot-path registry; fixture functions are
# named ``csr_*`` so the qualname patterns match too.
HOT = "repro.spt.fastpaths"
# A module outside every KH registry entry, for the CA/LD fixtures.
COLD = "repro.analysis.report"


def active_ids(findings):
    return {f.rule.id for f in findings if not f.suppressed}


def all_ids(findings):
    return {f.rule.id for f in findings}


# ---------------------------------------------------------------------------
# Paired fixtures: rule id -> (module, bad source, good source)
# ---------------------------------------------------------------------------
FIXTURES = {
    "KH101": (  # attribute load in a hot loop
        HOT,
        """
def csr_scan(csr, items):
    total = 0
    for v in items:
        total += csr.indptr[v]
    return total
""",
        """
def csr_scan(csr, items):
    indptr = csr.indptr
    total = 0
    for v in items:
        total += indptr[v]
    return total
""",
    ),
    "KH102": (  # module-global load in a hot loop
        HOT,
        """
LIMIT = 64

def csr_scan(items):
    total = 0
    for v in items:
        total += v % LIMIT
    return total
""",
        """
LIMIT = 64

def csr_scan(items):
    limit = LIMIT
    total = 0
    for v in items:
        total += v % limit
    return total
""",
    ),
    "KH103": (  # allocation in an innermost hot loop
        HOT,
        """
def csr_scan(items):
    total = 0
    for v in items:
        total += sum([v, v + 1])
    return total
""",
        """
def csr_scan(items):
    total = 0
    for v in items:
        total += v + v + 1
    return total
""",
    ),
    "KH104": (  # list concatenation in a hot loop
        HOT,
        """
def csr_scan(items):
    out = []
    for v in items:
        out = out + [v]
    return out
""",
        """
def csr_scan(items):
    out = []
    append = out.append
    for v in items:
        append(v)
    return out
""",
    ),
    "KH105": (  # try/except in a hot loop
        HOT,
        """
def csr_scan(table, items):
    total = 0
    get = table.get
    for v in items:
        try:
            total += table[v]
        except KeyError:
            pass
    return total
""",
        """
def csr_scan(table, items):
    total = 0
    get = table.get
    for v in items:
        hit = get(v)
        if hit is not None:
            total += hit
    return total
""",
    ),
    "KH106": (  # membership test against a list display
        HOT,
        """
def csr_scan(items):
    out = 0
    for v in items:
        if v in [1, 2, 3]:
            out += 1
    return out
""",
        """
def csr_scan(items):
    out = 0
    for v in items:
        if v in (1, 2, 3):
            out += 1
    return out
""",
    ),
    "LD201": (  # module-level import from a higher layer: the fleet
        # sits *above* query (it builds sessions), so query code may
        # only reach it through a deferred import.
        "repro.query.fake",
        """
from repro.fleet.session import FleetSession

def scale_out(graph):
    return FleetSession(graph)
""",
        """
def scale_out(graph):
    from repro.fleet.session import FleetSession

    return FleetSession(graph)
""",
    ),
    "LD202": (  # call to a deprecated engine shim
        COLD,
        """
def report(engine, pairs):
    return engine.evaluate_pairs(pairs)
""",
        """
def report(session, queries):
    return session.run(queries)
""",
    ),
    "CA301": (  # subscript write through a cache alias
        COLD,
        """
def tweak(engine, s):
    vec = engine.peek_vector(s)
    vec[0] = 0
    return vec
""",
        """
def tweak(engine, s):
    vec = list(engine.peek_vector(s))
    vec[0] = 0
    return vec
""",
    ),
    "CA302": (  # augmented assignment through a cache alias
        COLD,
        """
def extend(engine, s, tail):
    vec = engine.peek_vector(s)
    vec += tail
    return vec
""",
        """
def extend(engine, s, tail):
    vec = engine.peek_vector(s).copy()
    vec += tail
    return vec
""",
    ),
    "CA303": (  # in-place mutating method through a cache alias
        COLD,
        """
def order(engine, s):
    vec = engine.peek_vector(s)
    vec.sort()
    return vec
""",
        """
def order(engine, s):
    return sorted(engine.peek_vector(s))
""",
    ),
    "OB401": (  # observability use inside a hot kernel
        HOT,
        """
from repro import obs

def csr_scan(csr, out):
    total = 0
    indptr = csr.indptr
    for v in out:
        total += indptr[v]
    obs.inc("repro_scan_total")
    return total
""",
        """
from repro import obs


def record_scan(total):
    obs.inc("repro_scan_total", total)


def csr_scan(csr, out):
    total = 0
    indptr = csr.indptr
    for v in out:
        total += indptr[v]
    return total
""",
    ),
    "E001": (  # unparsable source
        COLD,
        """
def broken(:
    pass
""",
        """
def fine():
    pass
""",
    ),
}


# ---------------------------------------------------------------------------
# Rule catalogue
# ---------------------------------------------------------------------------
def test_rule_catalogue_is_complete_and_unique():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids))
    assert len(rules) >= 10
    assert set(FIXTURES) <= set(ids)


def test_every_rule_has_a_fixture():
    # The acceptance bar: at least 10 distinct rules, each pinned.
    assert len(FIXTURES) >= 10


# ---------------------------------------------------------------------------
# Paired good/bad fixtures
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_bad_fixture_triggers_rule(rule_id):
    module, bad, _ = FIXTURES[rule_id]
    assert rule_id in active_ids(lint_source(bad, module))


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_good_fixture_is_clean_for_rule(rule_id):
    module, _, good = FIXTURES[rule_id]
    assert rule_id not in all_ids(lint_source(good, module))


@pytest.mark.parametrize("rule_id",
                         [r for r in sorted(FIXTURES) if r != "E001"])
def test_good_fixture_is_fully_clean(rule_id):
    module, _, good = FIXTURES[rule_id]
    assert lint_source(good, module) == []


def test_hot_rules_do_not_fire_outside_the_registry():
    _, bad, _ = FIXTURES["KH101"]
    assert lint_source(bad, "repro.analysis.report") == []


# ---------------------------------------------------------------------------
# The vectorized kernel class: ndarray kernels get a relaxed hygiene
# profile (allocation rules off, KH101 narrowed to module-global bases).
# ---------------------------------------------------------------------------
VEC = "repro.backends.vectorized"

VEC_BAD_GLOBAL_ATTR = """
import numpy as np

def csr_scan(dist, frontiers):
    for heads, cand in frontiers:
        np.minimum.at(dist, heads, cand)
    return dist
"""

VEC_GOOD_HOISTED_ATTR = """
import numpy as np

def csr_scan(dist, frontiers):
    minimum_at = np.minimum.at
    for heads, cand in frontiers:
        minimum_at(dist, heads, cand)
    return dist
"""

VEC_ARRAY_TEMPORARIES = """
def csr_scan(frontier, indices, mask):
    out = []
    while frontier.size:
        rows = [v for v in frontier if mask[v]]
        out = out + [rows]
        frontier = indices[frontier]
        if frontier.size in [0, 1]:
            break
    return out
"""

VEC_BAD_GLOBAL_NAME = """
LIMIT = 64

def csr_scan(frontier, indices):
    total = 0
    while frontier.size:
        total += LIMIT
        frontier = indices[frontier]
    return total
"""


def test_vectorized_flags_unhoisted_module_global_attribute():
    assert "KH101" in active_ids(lint_source(VEC_BAD_GLOBAL_ATTR, VEC))


def test_vectorized_hoisted_attribute_is_clean():
    assert lint_source(VEC_GOOD_HOISTED_ATTR, VEC) == []


def test_vectorized_allows_array_temporaries_and_local_attrs():
    # KH103/KH104/KH106 are off for ndarray kernels, and the
    # `frontier.size` loads (local base) do not trip KH101.
    assert lint_source(VEC_ARRAY_TEMPORARIES, VEC) == []


def test_vectorized_still_flags_unhoisted_globals():
    assert "KH102" in active_ids(lint_source(VEC_BAD_GLOBAL_NAME, VEC))


def test_loops_profile_flags_what_vectorized_allows():
    # The same source under the strict loops registry trips the
    # allocation rules the vectorized class waives.
    ids = active_ids(lint_source(VEC_ARRAY_TEMPORARIES, HOT))
    assert {"KH103", "KH104", "KH106"} <= ids


def test_findings_carry_location_and_sort():
    module, bad, _ = FIXTURES["CA301"]
    findings = lint_source(bad, module, path="fake.py")
    assert findings
    assert findings == sorted(findings, key=lambda f: f.sort_key())
    finding = findings[0]
    assert finding.path == "fake.py"
    assert finding.module == module
    assert finding.line == 4  # fixtures open with a blank line
    assert "peek_vector" in finding.message


# ---------------------------------------------------------------------------
# Suppression pragmas
# ---------------------------------------------------------------------------
SUPPRESSED_BY_ID = """
def csr_scan(table, items):
    total = 0
    for v in items:
        try:  # reprolint: disable=KH105
            total += table[v]
        except KeyError:
            pass
    return total
"""


def test_pragma_suppresses_by_rule_id():
    findings = lint_source(SUPPRESSED_BY_ID, HOT)
    assert "KH105" not in active_ids(findings)
    suppressed = [f for f in findings if f.suppressed]
    assert [f.rule.id for f in suppressed] == ["KH105"]


def test_pragma_suppresses_by_rule_name():
    src = SUPPRESSED_BY_ID.replace("disable=KH105",
                                   "disable=hot-try-in-loop")
    assert "KH105" not in active_ids(lint_source(src, HOT))


def test_pragma_disable_all():
    src = SUPPRESSED_BY_ID.replace("disable=KH105", "disable=all")
    assert not active_ids(lint_source(src, HOT))


def test_pragma_on_wrong_line_does_not_suppress():
    src = SUPPRESSED_BY_ID.replace("  # reprolint: disable=KH105", "")
    src = src.replace("total = 0", "total = 0  # reprolint: disable=KH105")
    assert "KH105" in active_ids(lint_source(src, HOT))


def test_pragma_for_other_rule_does_not_suppress():
    src = SUPPRESSED_BY_ID.replace("disable=KH105", "disable=CA301")
    assert "KH105" in active_ids(lint_source(src, HOT))


# ---------------------------------------------------------------------------
# select / ignore filters
# ---------------------------------------------------------------------------
def test_select_restricts_to_named_rules():
    module, bad, _ = FIXTURES["KH106"]
    findings = lint_source(bad, module, select=["KH106"])
    assert all_ids(findings) == {"KH106"}


def test_ignore_drops_named_rules():
    module, bad, _ = FIXTURES["KH106"]
    findings = lint_source(bad, module, ignore=["hot-list-membership"])
    assert "KH106" not in all_ids(findings)


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------
def test_json_reporter_schema():
    module, bad, _ = FIXTURES["CA303"]
    findings = lint_source(bad, module, path="fake.py")
    payload = json.loads(render_json(findings, files_checked=1))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert set(payload) == {"version", "files_checked", "findings", "counts"}
    record = payload["findings"][0]
    assert set(record) == {
        "path", "module", "line", "col", "rule", "rule_name",
        "family", "message", "suppressed",
    }
    assert record["rule"] == "CA303"
    assert record["rule_name"] == "cache-mutating-call"
    assert record["family"] == "cache-aliasing"
    assert payload["counts"]["CA303"] >= 1


def test_json_counts_exclude_suppressed():
    findings = lint_source(SUPPRESSED_BY_ID, HOT)
    payload = json.loads(render_json(findings, files_checked=1))
    assert payload["counts"] == {}
    assert any(record["suppressed"] for record in payload["findings"])


def test_text_reporter_lines_and_summary():
    module, bad, _ = FIXTURES["KH101"]
    findings = lint_source(bad, module, path="fake.py")
    text = render_text(findings, files_checked=1)
    assert "fake.py:5:" in text
    assert "KH101 [hot-attr-load]" in text
    assert text.endswith("in 1 files")


def test_text_reporter_hides_suppressed_by_default():
    findings = lint_source(SUPPRESSED_BY_ID, HOT)
    assert "KH105" not in render_text(findings, files_checked=1)
    shown = render_text(findings, files_checked=1, show_suppressed=True)
    assert "KH105" in shown and "(suppressed)" in shown


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------
def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exits_nonzero_on_findings(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "def f(engine):\n    return engine.evaluate_pairs([])\n",
        encoding="utf-8",
    )
    assert main([str(tmp_path)]) == 1
    assert "LD202" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "def f(engine):\n    return engine.evaluate_pairs([])\n",
        encoding="utf-8",
    )
    assert main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"LD202": 1}


def test_cli_missing_path_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["no/such/path"])
    assert excinfo.value.code == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


# ---------------------------------------------------------------------------
# The repo itself is lint-clean (the CI gate, pinned as a test)
# ---------------------------------------------------------------------------
def test_src_repro_is_lint_clean():
    findings, files_checked = lint_paths([SRC])
    active = [f for f in findings if not f.suppressed]
    assert active == [], render_text(findings, files_checked)
    assert files_checked > 50


# ---------------------------------------------------------------------------
# mypy allowlist (runs only where mypy is installed, e.g. the CI job)
# ---------------------------------------------------------------------------
def test_mypy_allowlist_is_clean():
    pytest.importorskip("mypy")
    from mypy import api

    stdout, stderr, status = api.run(
        ["--config-file", str(REPO_ROOT / "mypy.ini")]
    )
    assert status == 0, stdout + stderr
