"""Tests for CONGEST tree primitives (broadcast/convergecast/upcast)."""

import pytest

from repro.graphs import generators
from repro.core.weights import AntisymmetricWeights
from repro.distributed.primitives import (
    run_broadcast,
    run_convergecast,
    run_upcast_tree_edges,
)
from repro.spt.trees import ShortestPathTree


@pytest.fixture(scope="module")
def setup():
    g = generators.torus(5, 5)
    atw = AntisymmetricWeights.random(g, f=1, seed=4)
    tree = ShortestPathTree.compute(g, 0, atw.weight, atw.scale)
    return g, tree


class TestBroadcast:
    def test_everyone_receives(self, setup):
        g, tree = setup
        received, stats = run_broadcast(g, tree, value="hello")
        assert all(v == "hello" for v in received.values())
        assert len(received) == g.n

    def test_rounds_linear_in_depth(self, setup):
        g, tree = setup
        _received, stats = run_broadcast(g, tree, value=1)
        assert stats.rounds <= tree.depth() + 1

    def test_one_message_per_tree_edge(self, setup):
        g, tree = setup
        _received, stats = run_broadcast(g, tree, value=1)
        assert stats.messages == g.n - 1
        assert stats.max_edge_congestion == 1


class TestConvergecast:
    def test_sum_aggregation(self, setup):
        g, tree = setup
        values = {v: v for v in g.vertices()}
        total, stats = run_convergecast(
            g, tree, values, lambda a, b: a + b
        )
        assert total == sum(range(g.n))

    def test_max_aggregation(self, setup):
        g, tree = setup
        values = {v: (v * 7) % 23 for v in g.vertices()}
        best, _stats = run_convergecast(g, tree, values, max)
        assert best == max(values.values())

    def test_rounds_linear_in_depth(self, setup):
        g, tree = setup
        values = {v: 1 for v in g.vertices()}
        _total, stats = run_convergecast(g, tree, values, lambda a, b: a + b)
        assert stats.rounds <= tree.depth() + 1
        assert stats.messages == g.n - 1

    def test_single_vertex_tree(self):
        from repro.graphs.base import Graph

        g = Graph(1)
        tree = ShortestPathTree(0, {0: None}, {0: 0})
        total, stats = run_convergecast(g, tree, {0: 42}, lambda a, b: a + b)
        assert total == 42
        assert stats.rounds == 0


class TestUpcast:
    def test_root_collects_all_tree_edges(self, setup):
        g, tree = setup
        collected, _stats = run_upcast_tree_edges(g, tree)
        assert sorted(collected) == sorted(tree.edge_set())

    def test_pipelining_bound(self, setup):
        g, tree = setup
        _collected, stats = run_upcast_tree_edges(g, tree)
        # O(depth + #items): each of n-1 items delays at most depth
        assert stats.rounds <= tree.depth() + (g.n - 1) + 1

    def test_strict_capacity_respected(self, setup):
        # the runner uses a strict simulator; reaching here without a
        # CongestError means the pipelining never over-drove an edge
        g, tree = setup
        _collected, stats = run_upcast_tree_edges(g, tree)
        assert stats.max_queue_delay == 0

    def test_path_graph_worst_case(self):
        g = generators.path(10)
        atw = AntisymmetricWeights.random(g, f=1, seed=1)
        tree = ShortestPathTree.compute(g, 0, atw.weight, atw.scale)
        collected, stats = run_upcast_tree_edges(g, tree)
        assert len(collected) == 9
        # on a path every item crosses every edge above it: ~n rounds
        assert stats.rounds <= 2 * g.n
