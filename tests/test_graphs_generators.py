"""Unit tests for the synthetic graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.spt.apsp import diameter


class TestBasicFamilies:
    def test_cycle(self):
        g = generators.cycle(5)
        assert g.n == 5 and g.m == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            generators.cycle(2)

    def test_path(self):
        g = generators.path(4)
        assert g.m == 3
        assert g.degree(0) == 1 and g.degree(1) == 2

    def test_complete(self):
        g = generators.complete(5)
        assert g.m == 10

    def test_complete_bipartite(self):
        g = generators.complete_bipartite(2, 3)
        assert g.n == 5 and g.m == 6
        assert not g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_star(self):
        g = generators.star(6)
        assert g.m == 5
        assert g.degree(0) == 5


class TestMeshes:
    def test_grid_structure(self):
        g = generators.grid(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.has_edge(0, 1) and g.has_edge(0, 4)
        assert not g.has_edge(3, 4)  # row wrap must not exist

    def test_grid_diameter(self):
        assert diameter(generators.grid(3, 3)) == 4

    def test_torus_regular(self):
        g = generators.torus(4, 5)
        assert g.n == 20
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_min_size(self):
        with pytest.raises(GraphError):
            generators.torus(2, 4)

    def test_hypercube(self):
        g = generators.hypercube(3)
        assert g.n == 8 and g.m == 12
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert diameter(g) == 3


class TestRandomFamilies:
    def test_erdos_renyi_deterministic_by_seed(self):
        a = generators.erdos_renyi(30, 0.2, seed=1)
        b = generators.erdos_renyi(30, 0.2, seed=1)
        c = generators.erdos_renyi(30, 0.2, seed=2)
        assert a == b
        assert a != c

    def test_erdos_renyi_p_bounds(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi(5, 1.5)
        assert generators.erdos_renyi(5, 0.0).m == 0
        assert generators.erdos_renyi(5, 1.0).m == 10

    def test_gnm_exact_edges(self):
        g = generators.gnm(20, 30, seed=4)
        assert g.n == 20 and g.m == 30

    def test_gnm_too_many(self):
        with pytest.raises(GraphError):
            generators.gnm(4, 10)

    def test_connected_er_is_connected(self):
        for seed in range(5):
            g = generators.connected_erdos_renyi(25, 0.02, seed=seed)
            assert g.is_connected()

    def test_random_regular(self):
        g = generators.random_regular(12, 3, seed=0)
        assert all(g.degree(v) == 3 for v in g.vertices())


class TestSpecials:
    def test_petersen(self):
        g = generators.petersen()
        assert g.n == 10 and g.m == 15
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert diameter(g) == 2

    def test_biclique_chain_tie_factory(self):
        g = generators.biclique_chain(2, 3)
        # 1 + (3 + 1) * 2 vertices
        assert g.n == 9
        assert g.is_connected()
        from repro.core.properties import all_shortest_paths

        # between the two chain endpoints: 3 * 3 tied shortest paths
        assert len(all_shortest_paths(g, 0, 8)) == 9

    def test_fault_sample_distinct(self):
        g = generators.grid(4, 4)
        samples = generators.fault_sample(g, 10, seed=3, size=2)
        assert len(samples) == 10
        assert len(set(samples)) == 10
        for fs in samples:
            assert len(fs) == 2

    def test_fault_sample_size_guard(self):
        g = generators.path(3)
        with pytest.raises(GraphError):
            generators.fault_sample(g, 1, size=5)

    def test_by_name_dispatch(self):
        assert generators.by_name("grid", 3).n == 9
        assert generators.by_name("hypercube", 3).n == 8
        assert generators.by_name("er", 10, seed=1).is_connected()
        with pytest.raises(GraphError):
            generators.by_name("nope", 5)
