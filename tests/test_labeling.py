"""Tests for FT exact distance labeling (Theorem 30)."""

import pytest

from repro.exceptions import LabelingError
from repro.graphs import generators
from repro.labeling import DistanceLabeling, VertexLabel
from repro.labeling.scheme import _BitReader, _BitWriter
from repro.spt.bfs import bfs_distances
from repro.analysis.bounds import thm30_label_bits_bound


class TestBitPacking:
    def test_round_trip(self):
        writer = _BitWriter()
        writer.write(5, 4)
        writer.write(1023, 10)
        writer.write(0, 3)
        data, bits = writer.to_bytes()
        assert bits == 17
        reader = _BitReader(data, bits)
        assert reader.read(4) == 5
        assert reader.read(10) == 1023
        assert reader.read(3) == 0

    def test_overflow_rejected(self):
        writer = _BitWriter()
        with pytest.raises(LabelingError):
            writer.write(16, 4)

    def test_truncation_detected(self):
        writer = _BitWriter()
        writer.write(3, 2)
        data, bits = writer.to_bytes()
        reader = _BitReader(data, bits)
        reader.read(2)
        with pytest.raises(LabelingError):
            reader.read(1)


class TestVertexLabel:
    def test_encode_decode_round_trip(self):
        edges = [(0, 1), (1, 2), (0, 3)]
        label = VertexLabel.encode(2, 4, edges)
        n, vertex, decoded = label.decode()
        assert (n, vertex) == (4, 2)
        assert sorted(decoded) == sorted(edges)

    def test_bits_counted_honestly(self):
        label = VertexLabel.encode(0, 16, [(0, 1)])
        # 32 (n) + 4 (vertex) + 32 (count) + 2 * 4 (edge) = 76
        assert label.bits == 76


class TestDistanceLabeling:
    @pytest.fixture(scope="class")
    def labeled(self):
        g = generators.connected_erdos_renyi(16, 0.18, seed=10)
        return g, DistanceLabeling.build(g, f=0, seed=4)

    def test_fault_free_queries(self, labeled):
        g, lab = labeled
        for s in g.vertices():
            dist = bfs_distances(g, s)
            for t in g.vertices():
                assert lab.distance(s, t) == dist[t]

    def test_single_fault_queries_exhaustive(self, labeled):
        g, lab = labeled
        for e in g.edges():
            view = g.without([e])
            for s in (0, 7, 15):
                dist = bfs_distances(view, s)
                for t in g.vertices():
                    if t != s:
                        assert lab.distance(s, t, [e]) == dist[t]

    def test_two_fault_tolerance(self):
        g = generators.connected_erdos_renyi(12, 0.3, seed=3)
        lab = DistanceLabeling.build(g, f=1, seed=2)
        assert lab.faults_tolerated == 2
        for faults in generators.fault_sample(g, 20, seed=5, size=2):
            view = g.without(faults)
            dist = bfs_distances(view, 0)
            for t in range(1, g.n):
                assert lab.distance(0, t, faults) == dist[t]

    def test_query_is_label_only(self, labeled):
        g, lab = labeled
        # the static query sees only two labels and the fault set
        d = DistanceLabeling.query(lab.label(0), lab.label(5), [])
        assert d == bfs_distances(g, 0)[5]

    def test_mismatched_graphs_rejected(self, labeled):
        _g, lab = labeled
        other = generators.path(4)
        other_lab = DistanceLabeling.build(other, f=0, seed=0)
        with pytest.raises(LabelingError):
            DistanceLabeling.query(lab.label(0), other_lab.label(1))

    def test_unknown_vertex_rejected(self, labeled):
        _g, lab = labeled
        with pytest.raises(LabelingError):
            lab.label(999)

    def test_disconnection_returns_minus_one(self):
        g = generators.path(4)
        lab = DistanceLabeling.build(g, f=0, seed=1)
        assert lab.distance(0, 3, [(1, 2)]) == -1

    def test_label_sizes_within_theorem30(self, labeled):
        g, lab = labeled
        bound = thm30_label_bits_bound(g.n, 0)
        # constants are generous at this scale; shape-level check
        assert lab.max_label_bits() <= 3 * bound
        assert lab.total_bits() >= lab.max_label_bits()

    def test_distance_to_self(self, labeled):
        _g, lab = labeled
        assert lab.distance(3, 3) == 0
