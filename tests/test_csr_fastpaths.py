"""Randomized cross-checks: CSR fast paths == GraphLike reference.

The ``FaultView`` + generic-loop implementations are the reference; the
CSR array kernels must agree with them *exactly* on every graph and
fault set.  Hypothesis drives random connected graphs and random fault
choices through both code paths.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.weights import AntisymmetricWeights
from repro.graphs.base import Graph
from repro.spt.bfs import bfs_distances, bfs_layers, bfs_tree, hop_distance
from repro.spt.dijkstra import count_min_weight_paths, dijkstra

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# For suites parametrised over the session-global `backend` fixture:
# the pin is idempotent across hypothesis examples, so the
# function-scoped-fixture health check is a false positive here.
BACKEND_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


@st.composite
def graphs_with_faults(draw, min_n=3, max_n=16, max_faults=3):
    """(graph, fault set) — faults drawn from edges plus a few non-edges."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    g = Graph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    for _ in range(draw(st.integers(0, 2 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    edges = list(g.edges())
    k = draw(st.integers(0, min(max_faults, len(edges))))
    faults = rng.sample(edges, k)
    if draw(st.booleans()) and n >= 2:
        faults.append((0, n - 1) if n > 2 else (0, 1))  # maybe absent
    return g, faults


@given(graphs_with_faults())
@settings(max_examples=120, **BACKEND_COMMON)
def test_bfs_distances_bit_identical(backend, case):
    g, faults = case
    ref_view = g.without(faults)
    fast_view = g.csr().without(faults)
    for s in g.vertices():
        assert bfs_distances(fast_view, s) == bfs_distances(ref_view, s)
    assert bfs_distances(g.csr(), 0) == bfs_distances(g, 0)


@given(graphs_with_faults())
@settings(max_examples=100, **COMMON)
def test_bfs_tree_bit_identical(case):
    g, faults = case
    ref_view = g.without(faults)
    fast_view = g.csr().without(faults)
    for s in range(min(g.n, 5)):
        assert bfs_tree(fast_view, s) == bfs_tree(ref_view, s)


@given(graphs_with_faults())
@settings(max_examples=100, **COMMON)
def test_hop_distance_bit_identical(case):
    g, faults = case
    ref_view = g.without(faults)
    fast_view = g.csr().without(faults)
    pairs = [(0, g.n - 1), (g.n - 1, 0), (0, 0), (1 % g.n, g.n // 2)]
    for s, t in pairs:
        assert (hop_distance(fast_view, s, t)
                == hop_distance(ref_view, s, t))


@given(graphs_with_faults())
@settings(max_examples=60, **COMMON)
def test_bfs_layers_bit_identical(case):
    g, faults = case
    assert (bfs_layers(g.csr().without(faults), 0)
            == bfs_layers(g.without(faults), 0))


@given(graphs_with_faults(max_faults=1))
@settings(max_examples=60, **BACKEND_COMMON)
def test_dijkstra_bit_identical_under_unique_weights(backend, case):
    """Distances always agree; parents too, given unique shortest paths."""
    g, faults = case
    atw = AntisymmetricWeights.random(g, f=1, seed=11)
    ref_view = g.without(faults)
    fast_view = g.csr().without(faults)
    for s in range(min(g.n, 4)):
        ref_dist, ref_parent = dijkstra(ref_view, s, atw.weight)
        fast_dist, fast_parent = dijkstra(fast_view, s, atw.weight)
        assert fast_dist == ref_dist
        assert fast_parent == ref_parent


@given(graphs_with_faults(max_faults=0))
@settings(max_examples=40, **COMMON)
def test_dijkstra_targets_early_exit(case):
    g, _ = case
    atw = AntisymmetricWeights.random(g, f=1, seed=5)
    targets = {g.n - 1}
    ref_dist, _ = dijkstra(g, 0, atw.weight, targets=targets)
    fast_dist, _ = dijkstra(g.csr(), 0, atw.weight, targets=targets)
    assert fast_dist.get(g.n - 1) == ref_dist.get(g.n - 1)


@given(graphs_with_faults(max_faults=0))
@settings(max_examples=40, **COMMON)
def test_count_min_weight_paths_unique_on_csr(case):
    """The tiebreaking-uniqueness certificate holds on the fast path too."""
    g, _ = case
    atw = AntisymmetricWeights.random(g, f=1, seed=3)
    counts = count_min_weight_paths(g.csr(), 0, atw.weight)
    assert all(c == 1 for c in counts.values())
