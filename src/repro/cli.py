"""Command-line interface: ``python -m repro <command>``.

Four commands, each a thin veneer over the library:

* ``demo`` — the quickstart flow on a built-in graph (or an edge-list
  file): select, break, restore, report.
* ``verify`` — certify a scheme's properties (consistency, stability,
  restorability) on a graph, exhaustively.
* ``preserver`` — build an S x S fault-tolerant preserver and print
  (or save) its edges, with optional verification.
* ``labels`` — build a fault-tolerant distance labeling and report
  label sizes against the Theorem-30 bound.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.graphs import generators
from repro.graphs.base import Graph
from repro.graphs.io import read_edgelist


def _load_graph(args) -> Graph:
    if args.input:
        return read_edgelist(args.input)
    return generators.by_name(args.family, args.size, seed=args.seed)


def _add_graph_args(parser) -> None:
    parser.add_argument("--input", help="edge-list file (overrides family)")
    parser.add_argument(
        "--family", default="er",
        choices=["er", "grid", "torus", "hypercube", "cycle", "path",
                 "complete"],
        help="built-in graph family (default: er)",
    )
    parser.add_argument("--size", type=int, default=20,
                        help="family size parameter (default: 20)")
    parser.add_argument("--seed", type=int, default=0)


def cmd_demo(args) -> int:
    from repro import RestorableTiebreaking, restore_by_concatenation

    graph = _load_graph(args)
    print(f"graph: n={graph.n}, m={graph.m}")
    scheme = RestorableTiebreaking.build(graph, f=1, seed=args.seed)
    s, t = 0, graph.n - 1
    path = scheme.path(s, t)
    if path is None:
        print(f"{s} and {t} are disconnected; nothing to demo")
        return 1
    print(f"selected {s} ~> {t}: {path} ({path.hops} hops)")
    for e in path.edges():
        result = restore_by_concatenation(scheme, s, t, [e])
        print(f"  fault {e}: restored via midpoint {result.midpoint} "
              f"-> {result.path.hops} hops")
    return 0


def cmd_verify(args) -> int:
    from repro import RestorableTiebreaking
    from repro.core import properties

    graph = _load_graph(args)
    scheme = RestorableTiebreaking.build(
        graph, f=args.faults, method=args.method, seed=args.seed
    )
    print(f"graph: n={graph.n}, m={graph.m}; scheme: {scheme.name}")
    checks = {
        "tiebreaking (Def 18)": scheme.weights.verify_tiebreaking(),
        "consistent (Def 14)": properties.is_consistent(scheme),
        "stable (Def 16)": properties.is_stable(scheme),
        "1-restorable (Def 17)": properties.is_restorable(scheme),
    }
    failed = False
    for name, ok in checks.items():
        print(f"  {name:<24} {'OK' if ok else 'VIOLATED'}")
        failed |= not ok
    return 1 if failed else 0


def cmd_preserver(args) -> int:
    from repro.preservers import ft_ss_preserver, verify_preserver
    from repro.graphs.io import preserver_to_json

    graph = _load_graph(args)
    sources = (
        [int(x) for x in args.sources.split(",")]
        if args.sources else
        list(range(0, graph.n, max(1, graph.n // 4)))
    )
    preserver = ft_ss_preserver(
        graph, sources, faults_tolerated=args.faults, seed=args.seed
    )
    print(f"graph: n={graph.n}, m={graph.m}; S={sources}")
    print(f"{args.faults}-FT S x S preserver: {preserver.size} edges "
          f"({preserver.fault_sets_explored} fault sets explored)")
    if args.check:
        sampled = generators.fault_sample(
            graph, 20, seed=args.seed, size=args.faults
        )
        ok = verify_preserver(graph, preserver.edges, sources,
                              fault_sets=sampled)
        print(f"sampled verification: {'OK' if ok else 'VIOLATED'}")
        if not ok:
            return 1
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(preserver_to_json(preserver))
        print(f"written to {args.output}")
    return 0


def cmd_labels(args) -> int:
    from repro.labeling import DistanceLabeling
    from repro.analysis.bounds import thm30_label_bits_bound

    graph = _load_graph(args)
    overlay = args.faults - 1
    labeling = DistanceLabeling.build(graph, f=overlay, seed=args.seed)
    bound = thm30_label_bits_bound(graph.n, overlay)
    print(f"graph: n={graph.n}, m={graph.m}")
    print(f"{args.faults}-FT labels: max {labeling.max_label_bits()} bits, "
          f"total {labeling.total_bits()} bits "
          f"(Theorem 30 bound ~{bound:.0f} bits/label)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Restorable shortest path tiebreaking "
                    "(Bodwin & Parter, PODC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="select, break, restore")
    _add_graph_args(demo)
    demo.set_defaults(fn=cmd_demo)

    verify = sub.add_parser("verify", help="certify scheme properties")
    _add_graph_args(verify)
    verify.add_argument("--faults", type=int, default=1)
    verify.add_argument("--method", default="random",
                        choices=["random", "deterministic", "uniform"])
    verify.set_defaults(fn=cmd_verify)

    pres = sub.add_parser("preserver", help="build an S x S FT preserver")
    _add_graph_args(pres)
    pres.add_argument("--faults", type=int, default=1)
    pres.add_argument("--sources", help="comma-separated vertex ids")
    pres.add_argument("--check", action="store_true",
                      help="verify on sampled fault sets")
    pres.add_argument("--output", help="write the preserver as JSON")
    pres.set_defaults(fn=cmd_preserver)

    labels = sub.add_parser("labels", help="build FT distance labels")
    _add_graph_args(labels)
    labels.add_argument("--faults", type=int, default=1)
    labels.set_defaults(fn=cmd_labels)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
