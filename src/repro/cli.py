"""Command-line interface: ``python -m repro <command>``.

Five commands, each a thin veneer over the library:

* ``demo`` — the quickstart flow on a built-in graph (or an edge-list
  file): select, break, restore, report.
* ``verify`` — certify a scheme's properties (consistency, stability,
  restorability) on a graph, exhaustively.
* ``preserver`` — build an S x S fault-tolerant preserver and print
  (or save) its edges, with optional verification.
* ``labels`` — build a fault-tolerant distance labeling and report
  label sizes against the Theorem-30 bound.
* ``query`` — drive a mixed declarative query stream (pairs, vectors,
  eccentricities, connectivity) through a :mod:`repro.query` session
  and report what the planner batched, cached, and filtered — or,
  with ``--connect HOST:PORT``, through a running scenario service.
* ``serve`` — run the scenario service (:mod:`repro.service`): an
  asyncio front over one shared session (or fleet) backend, with
  cross-client wave coalescing and admission control; with
  ``--metrics-port`` it also records observability metrics
  (:mod:`repro.obs`) and exposes them over HTTP in Prometheus text.
* ``stats`` — ask a running service for its counters, backend cache
  numbers, and observability snapshot (``--prometheus`` dumps the
  scrape text).

Graph-construction errors (:class:`~repro.exceptions.GraphError`)
exit 2 with a one-line message on stderr — the argparse convention —
never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.base import Graph
from repro.graphs.io import read_edgelist

#: The one source of truth for --family choices, shared by every
#: subcommand (previously spelled per subparser) and kept in lockstep
#: with ``generators.by_name``.
FAMILIES = generators.FAMILIES


def _load_graph(args) -> Graph:
    if args.input:
        try:
            return read_edgelist(args.input)
        except OSError as exc:
            # A missing/unreadable file is a usage error like any
            # other bad graph input: surface it through the same
            # exit-2 path instead of a traceback.
            raise GraphError(f"cannot read {args.input}: {exc}") from exc
    return generators.by_name(args.family, args.size, seed=args.seed)


def _add_graph_args(parser) -> None:
    parser.add_argument("--input", help="edge-list file (overrides family)")
    parser.add_argument(
        "--family", default="er", choices=FAMILIES,
        help="built-in graph family (default: er)",
    )
    parser.add_argument("--size", type=int, default=20,
                        help="family size parameter (default: 20)")
    parser.add_argument("--seed", type=int, default=0)


def cmd_demo(args) -> int:
    from repro import RestorableTiebreaking, restore_by_concatenation

    graph = _load_graph(args)
    print(f"graph: n={graph.n}, m={graph.m}")
    scheme = RestorableTiebreaking.build(graph, f=1, seed=args.seed)
    s, t = 0, graph.n - 1
    path = scheme.path(s, t)
    if path is None:
        print(f"{s} and {t} are disconnected; nothing to demo")
        return 1
    print(f"selected {s} ~> {t}: {path} ({path.hops} hops)")
    for e in path.edges():
        result = restore_by_concatenation(scheme, s, t, [e])
        print(f"  fault {e}: restored via midpoint {result.midpoint} "
              f"-> {result.path.hops} hops")
    return 0


def cmd_verify(args) -> int:
    from repro import RestorableTiebreaking
    from repro.core import properties

    graph = _load_graph(args)
    scheme = RestorableTiebreaking.build(
        graph, f=args.faults, method=args.method, seed=args.seed
    )
    print(f"graph: n={graph.n}, m={graph.m}; scheme: {scheme.name}")
    checks = {
        "tiebreaking (Def 18)": scheme.weights.verify_tiebreaking(),
        "consistent (Def 14)": properties.is_consistent(scheme),
        "stable (Def 16)": properties.is_stable(scheme),
        "1-restorable (Def 17)": properties.is_restorable(scheme),
    }
    failed = False
    for name, ok in checks.items():
        print(f"  {name:<24} {'OK' if ok else 'VIOLATED'}")
        failed |= not ok
    return 1 if failed else 0


def cmd_preserver(args) -> int:
    from repro.preservers import ft_ss_preserver, verify_preserver
    from repro.graphs.io import preserver_to_json

    graph = _load_graph(args)
    sources = (
        [int(x) for x in args.sources.split(",")]
        if args.sources else
        list(range(0, graph.n, max(1, graph.n // 4)))
    )
    preserver = ft_ss_preserver(
        graph, sources, faults_tolerated=args.faults, seed=args.seed
    )
    print(f"graph: n={graph.n}, m={graph.m}; S={sources}")
    print(f"{args.faults}-FT S x S preserver: {preserver.size} edges "
          f"({preserver.fault_sets_explored} fault sets explored)")
    if args.check:
        sampled = generators.fault_sample(
            graph, 20, seed=args.seed, size=args.faults
        )
        ok = verify_preserver(graph, preserver.edges, sources,
                              fault_sets=sampled)
        print(f"sampled verification: {'OK' if ok else 'VIOLATED'}")
        if not ok:
            return 1
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(preserver_to_json(preserver))
        print(f"written to {args.output}")
    return 0


def cmd_labels(args) -> int:
    from repro.labeling import DistanceLabeling
    from repro.analysis.bounds import thm30_label_bits_bound

    graph = _load_graph(args)
    overlay = args.faults - 1
    labeling = DistanceLabeling.build(graph, f=overlay, seed=args.seed)
    bound = thm30_label_bits_bound(graph.n, overlay)
    print(f"graph: n={graph.n}, m={graph.m}")
    print(f"{args.faults}-FT labels: max {labeling.max_label_bits()} bits, "
          f"total {labeling.total_bits()} bits "
          f"(Theorem 30 bound ~{bound:.0f} bits/label)")
    return 0


def cmd_query(args) -> int:
    import random

    from repro.query import (
        ConnectivityQuery,
        DistanceQuery,
        EccentricityQuery,
        Session,
        VectorQuery,
    )
    from repro.scenarios import random_fault_sets

    graph = _load_graph(args)
    workers = getattr(args, "workers", 0)
    connect = getattr(args, "connect", None)
    if connect:
        from repro.service import ServiceClient

        host, _, port = connect.rpartition(":")
        session = ServiceClient(host or "127.0.0.1", int(port))
    elif workers > 0:
        from repro.fleet import FleetSession

        session = FleetSession(graph, workers=workers)
    else:
        session = Session(graph)
    rng = random.Random(args.seed)
    vertices = sorted(graph.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(args.pairs)
    ]
    scenarios = random_fault_sets(
        graph, args.faults, args.scenarios, seed=args.seed
    )
    probe = vertices[0]
    for faults in scenarios:
        session.submit(DistanceQuery(s, t, faults) for s, t in pairs)
        session.submit(
            VectorQuery(probe, faults),
            EccentricityQuery(probe, faults),
            ConnectivityQuery(faults),
        )
    print(f"graph: n={graph.n}, m={graph.m}")
    if connect:
        print(f"service: connected to {session.server!r} at "
              f"{connect} (tenants {list(session.tenants)}) — the "
              f"local graph args must describe the served graph")
    elif workers > 0:
        print(f"fleet: {workers} workers, sharded by fault set")
    print(f"query stream: {session.pending} queries "
          f"({len(scenarios)} fault sets x {len(pairs)} monitored pairs "
          f"+ vector/eccentricity/connectivity probes)")
    answers = session.gather()
    # Fault-free base distances through the same session surface, so
    # the degraded-pair count works for local and fleet sessions alike
    # (a fleet hides its engines behind the worker boundary).
    base = {
        a.query.source: a.value
        for a in session.answer(
            VectorQuery(s) for s in sorted({s for s, _ in pairs})
        )
    }
    degraded = sum(
        1 for a in answers
        if isinstance(a.query, DistanceQuery)
        and a.value != base[a.query.source][a.query.target]
    )
    cut = sum(
        1 for a in answers
        if isinstance(a.query, ConnectivityQuery) and not a.value
    )
    st = session.stats
    waves = ("counted server-side" if connect
             else f"served by {st.waves} batched waves")
    print(f"answers: {st.cache} cache / {st.filter} filter / "
          f"{st.delta} delta / {st.wave} wave ({waves})")
    _print_provenance(answers)
    print(f"degraded monitored-pair answers: {degraded}; "
          f"disconnecting fault sets: {cut}/{len(scenarios)}")
    info = session.cache_info()
    print(f"engine LRU: {info.size} entries, pair memo "
          f"{info.hits}h/{info.misses}m, vector cache "
          f"{info.vector_hits}h/{info.vector_misses}m")
    if connect:
        server = session.server_stats()["server"]
        print(f"service: {server['batches']} micro-batches, "
              f"{server['coalesced_queries']} queries rode a "
              f"shared wave")
        session.close()
    elif workers > 0:
        shares = ", ".join(
            f"{name}={count}" for name, count in
            sorted(st.by_worker.items())
        )
        print(f"worker shares: {shares}")
        session.close()
    print(f"session: {session!r}")
    return 0


def _print_provenance(answers) -> None:
    """One line per provenance dimension the answers actually carry:
    which kernel backend served the waves/repairs, which fleet worker
    produced each answer, and how many answers rode a wave shared with
    other clients (``coalesced > 1``)."""
    from collections import Counter

    backends = Counter(a.provenance.backend for a in answers
                       if a.provenance.backend)
    if backends:
        print("backends: " + ", ".join(
            f"{name}={count}" for name, count in sorted(backends.items())))
    workers = Counter(a.provenance.worker for a in answers
                      if a.provenance.worker)
    if workers:
        print("workers: " + ", ".join(
            f"{name}={count}" for name, count in sorted(workers.items())))
    shared = sum(1 for a in answers if (a.provenance.coalesced or 0) > 1)
    if shared:
        print(f"coalesced: {shared}/{len(answers)} answers shared "
              f"their fault set's wave with other batched queries")


def cmd_serve(args) -> int:
    import asyncio

    from repro.query import Session
    from repro.service import ScenarioServer

    graph = _load_graph(args)
    if args.workers > 0:
        from repro.fleet import FleetSession

        backend = FleetSession(graph, workers=args.workers)
    else:
        backend = Session(graph)

    metrics_server = None
    if args.metrics_port is not None:
        from repro import obs

        obs.enable()
        metrics_server = obs.MetricsServer(
            obs.render_prometheus, host=args.host,
            port=args.metrics_port)

    async def _serve() -> None:
        server = ScenarioServer(
            backend, host=args.host, port=args.port,
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
        )
        await server.start()
        host, port = server.address
        print(f"serving n={graph.n}, m={graph.m} on {host}:{port} "
              f"(coalescing <= {server.coalescer.max_batch} queries "
              f"/ {args.max_delay_ms}ms)")
        if metrics_server is not None:
            print(f"metrics: http://{args.host}:"
                  f"{metrics_server.port}/ (Prometheus text)")
        if args.port_file:
            from pathlib import Path

            Path(args.port_file).write_text(f"{host}:{port}\n")
        try:
            if args.ttl > 0:
                await asyncio.sleep(args.ttl)
            else:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.drain()
            print(f"drained: {server.counters()}")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if args.workers > 0:
            backend.close()
    return 0


def cmd_stats(args) -> int:
    from repro.obs.export import render_prometheus
    from repro.service import ServiceClient

    host, _, port = args.connect.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port),
                       client="repro-stats") as client:
        reply = client.server_stats()
    server = reply.get("server", {})
    print(f"server {client.server!r} at {args.connect} "
          f"(tenants {list(client.tenants)})")
    print("counters: " + ", ".join(
        f"{name}={value}" for name, value in sorted(server.items())))
    info = reply.get("cache")
    if info is not None:
        print(f"backend LRU: {info.size} entries, pair memo "
              f"{info.hits}h/{info.misses}m, vector cache "
              f"{info.vector_hits}h/{info.vector_misses}m")
    obs_view = reply.get("obs") or {}
    metrics = obs_view.get("metrics", [])
    spans = obs_view.get("spans", [])
    state = "on" if obs_view.get("enabled") else "off"
    print(f"observability: {state}, {len(metrics)} metrics, "
          f"{len(spans)} spans buffered")
    if args.prometheus and metrics:
        print(render_prometheus(metrics), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Restorable shortest path tiebreaking "
                    "(Bodwin & Parter, PODC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="select, break, restore")
    _add_graph_args(demo)
    demo.set_defaults(fn=cmd_demo)

    verify = sub.add_parser("verify", help="certify scheme properties")
    _add_graph_args(verify)
    verify.add_argument("--faults", type=int, default=1)
    verify.add_argument("--method", default="random",
                        choices=["random", "deterministic", "uniform"])
    verify.set_defaults(fn=cmd_verify)

    pres = sub.add_parser("preserver", help="build an S x S FT preserver")
    _add_graph_args(pres)
    pres.add_argument("--faults", type=int, default=1)
    pres.add_argument("--sources", help="comma-separated vertex ids")
    pres.add_argument("--check", action="store_true",
                      help="verify on sampled fault sets")
    pres.add_argument("--output", help="write the preserver as JSON")
    pres.set_defaults(fn=cmd_preserver)

    labels = sub.add_parser("labels", help="build FT distance labels")
    _add_graph_args(labels)
    labels.add_argument("--faults", type=int, default=1)
    labels.set_defaults(fn=cmd_labels)

    query = sub.add_parser(
        "query", help="drive a declarative query stream through a session"
    )
    _add_graph_args(query)
    query.add_argument("--pairs", type=int, default=12,
                       help="monitored (s, t) pairs (default: 12)")
    query.add_argument("--scenarios", type=int, default=10,
                       help="random fault sets (default: 10)")
    query.add_argument("--faults", type=int, default=1,
                       help="faults per scenario (default: 1)")
    query.add_argument("--workers", type=int, default=0,
                       help="shard the stream across N fleet worker "
                            "processes (default: 0 = in-process)")
    query.add_argument("--connect", metavar="HOST:PORT",
                       help="answer through a running scenario "
                            "service instead of in-process (the "
                            "graph args must describe the served "
                            "graph)")
    query.set_defaults(fn=cmd_query)

    serve = sub.add_parser(
        "serve", help="run the scenario service over a shared session"
    )
    _add_graph_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 = pick a free one)")
    serve.add_argument("--port-file",
                       help="write the bound HOST:PORT to this file "
                            "once listening (for scripted clients)")
    serve.add_argument("--workers", type=int, default=0,
                       help="back the service with an N-worker fleet "
                            "(default: 0 = one in-process session)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescer flush size in queries "
                            "(default: 64)")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="coalescer flush deadline in ms "
                            "(default: 2)")
    serve.add_argument("--ttl", type=float, default=0,
                       help="serve for this many seconds then drain "
                            "(default: 0 = forever)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="enable observability and expose "
                            "Prometheus metrics over HTTP on this "
                            "port (0 = pick a free one)")
    serve.set_defaults(fn=cmd_serve)

    stats = sub.add_parser(
        "stats", help="query a running scenario service's counters "
                      "and observability snapshot"
    )
    stats.add_argument("--connect", metavar="HOST:PORT", required=True,
                       help="the service's bound address")
    stats.add_argument("--prometheus", action="store_true",
                       help="dump the server's metrics in Prometheus "
                            "text format")
    stats.set_defaults(fn=cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except GraphError as exc:
        # Bad graph input (unknown family, malformed edge list, ...)
        # is a usage error: exit 2 with a message, never a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
