"""Exception hierarchy for the ``repro`` library.

Every error raised by this package derives from :class:`ReproError`, so a
caller can catch the whole family with a single ``except`` clause.  The
subclasses partition errors by subsystem:

* :class:`GraphError` — malformed graphs, unknown vertices or edges.
* :class:`DisconnectedError` — a path was requested between vertices that
  are not connected (possibly after removing a fault set).
* :class:`TiebreakingError` — an antisymmetric tiebreaking weight function
  failed validation (e.g. a tie survived the perturbation).
* :class:`RestorationError` — restoration-by-concatenation could not
  produce a valid replacement path (this indicates a non-restorable
  scheme, never a bug in a scheme built from a valid ATW function).
* :class:`CongestError` — a distributed algorithm violated the CONGEST
  model contract enforced by the simulator (message too large, message
  sent to a non-neighbour, ...).
* :class:`LabelingError` — a fault-tolerant distance label failed to
  decode or a query referenced a vertex outside the labeled graph.
* :class:`QueryError` — a declarative query stream was malformed
  (mixed weightedness, unknown vertices, a query kind the session
  cannot serve); raised by :mod:`repro.query` before any kernel runs.
* :class:`BackendError` — the kernel-backend seam was misconfigured
  (an unknown backend name, or the vectorized backend requested while
  numpy is absent); raised by :mod:`repro.backends`.
* :class:`FleetError` — the engine fleet (:mod:`repro.fleet`) was
  misconfigured or lost a worker it could not replace (unknown
  tenant, no live workers, a reply that does not match its request).
* :class:`ServiceError` — the scenario service (:mod:`repro.service`)
  refused or could not serve a request (protocol version mismatch,
  admission-control backpressure, a draining server, a malformed
  frame).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A graph operation received invalid input (unknown vertex, ...)."""


class DisconnectedError(GraphError):
    """No path exists between the requested endpoints.

    Attributes
    ----------
    source, target:
        The endpoints of the failed query.
    faults:
        The fault set (tuple of edges) active for the query, possibly
        empty.
    """

    def __init__(self, source, target, faults=()):
        self.source = source
        self.target = target
        self.faults = tuple(faults)
        message = f"no path from {source!r} to {target!r}"
        if self.faults:
            message += f" avoiding faults {sorted(self.faults)!r}"
        super().__init__(message)


class TiebreakingError(ReproError):
    """An antisymmetric tiebreaking weight function failed validation."""


class RestorationError(ReproError):
    """Restoration-by-concatenation failed to find a replacement path."""


class CongestError(ReproError):
    """A distributed algorithm violated the CONGEST model contract."""


class LabelingError(ReproError):
    """A distance label could not be encoded, decoded, or queried."""


class QueryError(ReproError):
    """A declarative query stream (:mod:`repro.query`) was malformed.

    Raised during planning — before any kernel runs — so a bad stream
    (mixed weighted/unweighted queries, an unknown vertex, a
    restoration query without a scheme) never silently gets served by
    the wrong kernel.
    """


class FleetError(ReproError):
    """The engine fleet (:mod:`repro.fleet`) hit an unservable state.

    Raised for configuration errors (unknown tenant, zero workers, a
    per-call scheme handed to a fleet that shards across processes)
    and for protocol violations (a worker reply that does not answer
    the request sent).  Worker *failures* are not fleet errors: a dead
    worker is respawned, and if that fails its shard is served by the
    in-process serial fallback — degradation is counted, not raised.
    """


class ServiceError(ReproError):
    """The scenario service (:mod:`repro.service`) refused a request.

    Raised client-side when the server rejects a request by typed
    reply instead of serving it: protocol version mismatch at the
    handshake, admission-control backpressure (the client or the
    server as a whole has too many queries in flight), a draining
    server, or a frame that violates the wire protocol (oversized,
    unknown codec).  Admission rejections are *load signals*, not
    bugs: a client is expected to back off and retry.
    """

    def __init__(self, message: str, code: str = "service"):
        super().__init__(message)
        self.code = code


class BackendError(ReproError):
    """The kernel-backend seam (:mod:`repro.backends`) was misconfigured.

    Raised when an unknown backend name is requested (``set_backend``
    argument or ``REPRO_BACKEND`` environment value), or when the
    vectorized backend is *forced* while numpy is unavailable.  The
    ``auto`` mode never raises — it silently falls back to the
    pure-Python loops when numpy is absent.
    """
