"""A minimal directed graph for the DAG extension study.

Mirrors just enough of the :class:`repro.graphs.base.Graph` interface
(``neighbors`` = out-neighbours) for the Dijkstra machinery of
:mod:`repro.spt` to run unchanged.  Arc faults are directed: removing
``(u, v)`` leaves ``(v, u)`` (if present) intact — the natural fault
model for DAGs where each arc exists in one direction anyway.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

from repro.exceptions import GraphError

Arc = Tuple[int, int]


class DirectedGraph:
    """A simple directed graph on vertices ``0 .. n-1``."""

    __slots__ = ("_n", "_out", "_in", "_m")

    def __init__(self, num_vertices: int = 0, arcs: Iterable[Arc] = ()):
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._out: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._in: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._m = 0
        for u, v in arcs:
            self.add_arc(u, v)

    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        self._out.append(set())
        self._in.append(set())
        self._n += 1
        return self._n - 1

    def add_arc(self, u: int, v: int) -> Arc:
        self._check(u)
        self._check(v)
        if u == v:
            raise GraphError(f"self-loop ({u}, {v}) rejected")
        if v not in self._out[u]:
            self._out[u].add(v)
            self._in[v].add(u)
            self._m += 1
        return (u, v)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._m

    def vertices(self) -> range:
        return range(self._n)

    def has_vertex(self, v: int) -> bool:
        return 0 <= v < self._n

    def has_arc(self, u: int, v: int) -> bool:
        return (self.has_vertex(u) and self.has_vertex(v)
                and v in self._out[u])

    def neighbors(self, v: int) -> Iterator[int]:
        """Out-neighbours — the direction Dijkstra relaxes along."""
        self._check(v)
        return iter(self._out[v])

    def sorted_neighbors(self, v: int) -> List[int]:
        self._check(v)
        return sorted(self._out[v])

    def in_neighbors(self, v: int) -> Iterator[int]:
        self._check(v)
        return iter(self._in[v])

    def arcs(self) -> Iterator[Arc]:
        for u in range(self._n):
            for v in self._out[u]:
                yield (u, v)

    def out_degree(self, v: int) -> int:
        self._check(v)
        return len(self._out[v])

    # ------------------------------------------------------------------
    def reverse(self) -> "DirectedGraph":
        """The graph with every arc flipped (for backward trees)."""
        rev = DirectedGraph(self._n)
        for u, v in self.arcs():
            rev.add_arc(v, u)
        return rev

    def without(self, fault_arcs: Iterable[Arc]) -> "DirectedView":
        return DirectedView(self, fault_arcs)

    def is_acyclic(self) -> bool:
        """Kahn's algorithm: True iff the graph is a DAG."""
        indegree = [len(self._in[v]) for v in range(self._n)]
        queue = [v for v in range(self._n) if indegree[v] == 0]
        seen = 0
        while queue:
            u = queue.pop()
            seen += 1
            for v in self._out[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
        return seen == self._n

    def topological_order(self) -> List[int]:
        if not self.is_acyclic():
            raise GraphError("graph has a cycle")
        indegree = [len(self._in[v]) for v in range(self._n)]
        queue = sorted(v for v in range(self._n) if indegree[v] == 0)
        order = []
        while queue:
            u = queue.pop(0)
            order.append(u)
            for v in sorted(self._out[u]):
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
        return order

    def __repr__(self) -> str:
        return f"DirectedGraph(n={self._n}, m={self._m})"

    def _check(self, v: int) -> None:
        if not isinstance(v, int) or not 0 <= v < self._n:
            raise GraphError(f"vertex {v!r} outside range(0, {self._n})")


class DirectedView:
    """``G \\ F`` for a set of directed arc faults."""

    __slots__ = ("_base", "_faults")

    def __init__(self, base: DirectedGraph, fault_arcs: Iterable[Arc]):
        self._base = base
        self._faults = frozenset(tuple(a) for a in fault_arcs)

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def faults(self) -> frozenset:
        return self._faults

    def vertices(self) -> range:
        return self._base.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._base.has_vertex(v)

    def has_arc(self, u: int, v: int) -> bool:
        return self._base.has_arc(u, v) and (u, v) not in self._faults

    def neighbors(self, v: int) -> Iterator[int]:
        for u in self._base.neighbors(v):
            if (v, u) not in self._faults:
                yield u

    def sorted_neighbors(self, v: int) -> List[int]:
        return sorted(self.neighbors(v))

    def arcs(self) -> Iterator[Arc]:
        for arc in self._base.arcs():
            if arc not in self._faults:
                yield arc
