"""Random DAG generators for the extension study.

Layered DAGs maximise shortest-path ties (every layer-respecting path
between two vertices has the same length), which is exactly the regime
where tiebreaking questions are hard — the DAG analogue of grids.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.dag.digraph import DirectedGraph


def random_layered_dag(layers: int, width: int, p: float = 0.5,
                       seed: int = 0, skip_p: float = 0.0
                       ) -> DirectedGraph:
    """A DAG of ``layers`` layers of ``width`` vertices each.

    Each vertex gets arcs to next-layer vertices independently with
    probability ``p`` (at least one, so the DAG stays connected layer
    to layer), plus optional two-layer "skip" arcs with probability
    ``skip_p`` (these create paths of different lengths, breaking the
    pure-tie structure).  Vertex ids are ``layer * width + index``.
    """
    if layers < 2 or width < 1:
        raise GraphError("need >= 2 layers and width >= 1")
    if not (0.0 <= p <= 1.0 and 0.0 <= skip_p <= 1.0):
        raise GraphError("probabilities must lie in [0, 1]")
    rng = random.Random(seed)
    dag = DirectedGraph(layers * width)
    for layer in range(layers - 1):
        for i in range(width):
            u = layer * width + i
            targets = [
                layer * width + width + j
                for j in range(width)
                if rng.random() < p
            ]
            if not targets:
                targets = [layer * width + width + rng.randrange(width)]
            for v in targets:
                dag.add_arc(u, v)
            if skip_p and layer + 2 < layers:
                for j in range(width):
                    if rng.random() < skip_p:
                        dag.add_arc(u, (layer + 2) * width + j)
    return dag


def path_dag(n: int) -> DirectedGraph:
    """The directed path ``0 -> 1 -> ... -> n-1``."""
    dag = DirectedGraph(n)
    for v in range(n - 1):
        dag.add_arc(v, v + 1)
    return dag


def diamond_stack(count: int) -> DirectedGraph:
    """``count`` stacked diamonds: maximal tie structure, 2^count paths.

    Vertex layout per diamond: entry -> {left, right} -> exit, with
    the exit being the next diamond's entry.
    """
    if count < 1:
        raise GraphError("need >= 1 diamond")
    dag = DirectedGraph(1)
    entry = 0
    for _ in range(count):
        left = dag.add_vertex()
        right = dag.add_vertex()
        exit_v = dag.add_vertex()
        dag.add_arc(entry, left)
        dag.add_arc(entry, right)
        dag.add_arc(left, exit_v)
        dag.add_arc(right, exit_v)
        entry = exit_v
    return dag
