"""Tiebreaking and restorability on unweighted DAGs.

The natural DAG analogue of Definition 17 selects one shortest path
per *ordered reachable pair* and asks: for every failing arc ``e``
with a surviving ``s ~> t`` path, is there a midpoint ``x`` such that
``pi(s, x) + pi(x, t)`` (both forward selections) is a replacement
shortest path avoiding ``e``?

:class:`DagTiebreaking` breaks ties by random integer perturbation of
arc weights (unique shortest paths w.h.p. — the isolation lemma does
not care about direction), and
:func:`dag_restorability_violations` decides the property exactly per
instance.  :func:`verify_dag_restoration_lemma` checks the *existence*
version (some tied choice works — known to hold from [3, 9]); the gap
between the two is precisely the open problem.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.dag.digraph import Arc, DirectedGraph
from repro.spt.dijkstra import dijkstra, extract_path
from repro.spt.paths import Path


def _hop_distances(graph, source: int) -> Dict[int, int]:
    dist, _ = dijkstra(graph, source, lambda u, v: 1)
    return dist


class DagTiebreaking:
    """Perturbation tiebreaking over a DAG: one path per ordered pair.

    Forward trees (from a source) and backward trees (to a target, via
    the reversed DAG) are cached; both read the same arc perturbation,
    so ``pi(s, x)`` extracted forward and ``pi(x, t)`` extracted
    backward agree on overlapping selections (unique shortest paths).
    """

    def __init__(self, dag: DirectedGraph, seed: int = 0):
        if not dag.is_acyclic():
            raise GraphError("DagTiebreaking requires an acyclic graph")
        self._dag = dag
        self._reverse = dag.reverse()
        n = max(dag.n, 2)
        rng = random.Random(seed)
        big = n ** 6
        self._scale = 2 * n * (big + 1)
        self._r: Dict[Arc, int] = {
            arc: rng.randint(-big, big) for arc in dag.arcs()
        }
        self._fwd: Dict[Tuple[int, frozenset], Tuple[dict, dict]] = {}
        self._bwd: Dict[Tuple[int, frozenset], Tuple[dict, dict]] = {}

    # ------------------------------------------------------------------
    @property
    def dag(self) -> DirectedGraph:
        return self._dag

    @property
    def scale(self) -> int:
        return self._scale

    def weight(self, u: int, v: int) -> int:
        return self._scale + self._r[(u, v)]

    def _forward(self, source: int, faults: frozenset):
        key = (source, faults)
        if key not in self._fwd:
            view = self._dag.without(faults) if faults else self._dag
            self._fwd[key] = dijkstra(view, source, self.weight)
        return self._fwd[key]

    def _backward(self, target: int, faults: frozenset):
        key = (target, faults)
        if key not in self._bwd:
            flipped = frozenset((v, u) for u, v in faults)
            view = self._reverse.without(flipped) if faults else self._reverse
            self._bwd[key] = dijkstra(
                view, target, lambda u, v: self.weight(v, u)
            )
        return self._bwd[key]

    # ------------------------------------------------------------------
    def path(self, s: int, t: int,
             faults: Iterable[Arc] = ()) -> Optional[Path]:
        """The selected shortest ``s ~> t`` path in the DAG minus faults."""
        faults = frozenset(tuple(a) for a in faults)
        _dist, parent = self._forward(s, faults)
        return extract_path(parent, t)

    def hop_distance(self, s: int, t: int,
                     faults: Iterable[Arc] = ()) -> Optional[int]:
        faults = frozenset(tuple(a) for a in faults)
        dist, _ = self._forward(s, faults)
        if t not in dist:
            return None
        return (dist[t] + self._scale // 2) // self._scale

    def backward_path(self, x: int, t: int,
                      faults: Iterable[Arc] = ()) -> Optional[Path]:
        """The selected ``x ~> t`` path, read from the backward tree."""
        faults = frozenset(tuple(a) for a in faults)
        _dist, parent = self._backward(t, faults)
        reversed_path = extract_path(parent, x)
        return None if reversed_path is None else reversed_path.reverse()


def dag_restorability_violations(
    scheme: DagTiebreaking,
    fault_arcs: Optional[Sequence[Arc]] = None,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[Tuple]:
    """Instances where no ``pi(s, x) + pi(x, t)`` restores the pair.

    Returns ``(arc, s, t)`` triples; an empty list over exhaustive
    sweeps is evidence for the paper's conjectured DAG extension.
    """
    dag = scheme.dag
    if fault_arcs is None:
        fault_arcs = list(dag.arcs())
    if pairs is None:
        pairs = [
            (s, t) for s in dag.vertices() for t in dag.vertices()
            if s != t
        ]
    bad: List[Tuple] = []
    for arc in fault_arcs:
        view = dag.without([arc])
        per_source: Dict[int, Dict[int, int]] = {}
        for s, t in pairs:
            if s not in per_source:
                per_source[s] = _hop_distances(view, s)
            target = per_source[s].get(t)
            if target is None:
                continue
            if not _has_forward_concatenation(scheme, s, t, arc, target):
                bad.append((arc, s, t))
    return bad


def _has_forward_concatenation(scheme: DagTiebreaking, s: int, t: int,
                               arc: Arc, target: int) -> bool:
    dag = scheme.dag
    for x in dag.vertices():
        front = scheme.path(s, x)
        if front is None or arc in set(front.arcs()):
            continue
        back = scheme.backward_path(x, t)
        if back is None or arc in set(back.arcs()):
            continue
        if front.hops + back.hops == target:
            return True
    return False


def verify_dag_restoration_lemma(dag: DirectedGraph, s: int, t: int,
                                 arc: Arc) -> bool:
    """The *existence* version on DAGs (holds per [3, 9]).

    True iff some ``x`` has ``d(s, x) + d(x, t) == d_{G \\ e}(s, t)``
    with both legs' distances preserved when ``arc`` is removed —
    i.e. *some* tied choices concatenate into a replacement path.
    """
    view = dag.without([arc])
    dist_after_s = _hop_distances(view, s)
    if t not in dist_after_s:
        return True
    target = dist_after_s[t]
    dist_s = _hop_distances(dag, s)
    rev = dag.reverse()
    rev_view = rev.without([(arc[1], arc[0])])
    dist_t = _hop_distances(rev, t)           # d(x, t) via reverse
    dist_after_t = _hop_distances(rev_view, t)
    for x in dag.vertices():
        if x not in dist_s or x not in dist_t:
            continue
        if dist_s[x] + dist_t[x] != target:
            continue
        if dist_after_s.get(x) == dist_s[x] and \
                dist_after_t.get(x) == dist_t[x]:
            return True
    return False
