"""DAG extensions — the paper's future-work direction (Section 1.2).

The paper notes that both restoration lemmas extend to DAGs and writes:
*"It seems very plausible that our main result admits some kind of
extension to unweighted DAGs, but we leave the appropriate formulation
and proof as a direction for future work."*

This package supplies the machinery to *study* that question
empirically:

* :class:`~repro.dag.digraph.DirectedGraph` — a minimal directed graph
  with arc-fault views and reversal.
* :mod:`~repro.dag.generators` — random layered DAGs (heavy ties by
  construction).
* :mod:`~repro.dag.restoration` — perturbation-based unique-shortest-
  path tiebreaking on DAGs, the DAG restoration-lemma decision
  procedure, and a restorability checker for the natural Definition-17
  analogue (``pi(s, x) + pi(x, t)``, both forward).

The ``bench_ablation_dag`` benchmark sweeps random DAGs and reports
the observed restorability rate of perturbation tiebreaking — an
experimental data point on the open problem (spoiler: no violation has
been observed, supporting the paper's "very plausible").
"""

from repro.dag.digraph import DirectedGraph
from repro.dag.generators import random_layered_dag
from repro.dag.restoration import (
    DagTiebreaking,
    dag_restorability_violations,
    verify_dag_restoration_lemma,
)

__all__ = [
    "DirectedGraph",
    "random_layered_dag",
    "DagTiebreaking",
    "dag_restorability_violations",
    "verify_dag_restoration_lemma",
]
