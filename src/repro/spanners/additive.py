"""The clustering construction for FT +4 additive spanners (Lemma 32).

Given a builder of f-FT ``S x S`` preservers on ``g(n, σ, f)`` edges,
Lemma 32 produces an f-FT +4 spanner on
``O(g(n, σ, f) + n f + n² f / σ)`` edges:

1. sample σ *cluster centers* ``C`` uniformly;
2. every vertex with ``>= f + 1`` neighbours in ``C`` is *clustered*
   and keeps ``f + 1`` of those edges (so at least one center
   adjacency survives any ``f`` faults);
3. every other vertex is *unclustered* and keeps all incident edges;
4. add an f-FT ``C x C`` subset preserver (Theorem 31).

Correctness is deterministic (+4 for every pair under every ``<= f``
fault set); only the edge bound is probabilistic.  Theorem 33 balances
``σ = n^{1/(2^f + 1)}`` against Theorem 31's preserver size to get
``O_f(n^{1 + 2^f/(2^f+1)})`` — ``O(n^{3/2})`` at one fault, matching
Bilò et al. [7].
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.preservers.subset import ft_ss_preserver


@dataclass
class Spanner:
    """An f-FT +4 additive spanner.

    Attributes
    ----------
    graph:
        The graph it spans.
    edges:
        The spanner's edge set.
    centers:
        The sampled cluster centers ``C``.
    clustered:
        Vertices that kept only ``f + 1`` center edges.
    faults_tolerated:
        The ``f`` of the +4-under-f-faults guarantee.
    preserver_size:
        Edge count contributed by the ``C x C`` preserver (before
        union), for the size-decomposition tables.
    """

    graph: Graph
    edges: FrozenSet[Edge]
    centers: Tuple[int, ...]
    clustered: FrozenSet[int]
    faults_tolerated: int
    preserver_size: int = 0

    @property
    def size(self) -> int:
        return len(self.edges)

    def as_graph(self) -> Graph:
        sub = Graph(self.graph.n)
        for u, v in self.edges:
            sub.add_edge(u, v)
        return sub


def default_sigma(n: int, f: int) -> int:
    """Theorem 33's balancing choice ``σ = n^{1/(2^f + 1)}``.

    ``f`` here is the overlay parameter of Theorem 31 (the spanner
    tolerates ``f + 1`` faults); clipped to ``[1, n]``.
    """
    sigma = round(n ** (1.0 / (2 ** f + 1)))
    return max(1, min(n, sigma))


def ft_plus4_spanner(graph: Graph, faults_tolerated: int,
                     sigma: Optional[int] = None, seed: int = 0,
                     max_fault_sets: Optional[int] = None) -> Spanner:
    """Build an f-FT +4 additive spanner via Lemma 32.

    Parameters
    ----------
    graph:
        The input graph.
    faults_tolerated:
        ``f`` — the number of simultaneous edge faults under which the
        +4 stretch must hold (>= 1).
    sigma:
        Number of cluster centers; defaults to Theorem 33's balance
        ``n^{1/(2^{f-1} + 1)}`` (with ``f - 1`` the overlay depth).
    seed:
        Randomness for center sampling and the preserver's scheme.
    max_fault_sets:
        Passed through to the preserver overlay.
    """
    if faults_tolerated < 1:
        raise GraphError(
            f"faults_tolerated must be >= 1, got {faults_tolerated}"
        )
    n = graph.n
    f = faults_tolerated
    if sigma is None:
        sigma = default_sigma(n, f - 1)
    sigma = max(1, min(n, sigma))

    rng = random.Random(seed)
    centers = tuple(sorted(rng.sample(range(n), sigma)))
    center_set = set(centers)

    edges: Set[Edge] = set()
    clustered: Set[int] = set()
    for v in graph.vertices():
        center_neighbors = sorted(
            u for u in graph.neighbors(v) if u in center_set
        )
        if len(center_neighbors) >= f + 1:
            clustered.add(v)
            for u in center_neighbors[: f + 1]:
                edges.add(canonical_edge(u, v))
        else:
            for u in graph.neighbors(v):
                edges.add(canonical_edge(u, v))

    preserver = ft_ss_preserver(
        graph, centers, faults_tolerated=f, seed=seed + 1,
        max_fault_sets=max_fault_sets,
    )
    edges |= preserver.edges

    return Spanner(
        graph=graph,
        edges=frozenset(edges),
        centers=centers,
        clustered=frozenset(clustered),
        faults_tolerated=f,
        preserver_size=preserver.size,
    )
