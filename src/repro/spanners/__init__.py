"""Fault-tolerant +4 additive spanners (Lemma 32, Theorem 33).

* :mod:`repro.spanners.additive` — the clustering construction of
  Lemma 32 on top of subset preservers, giving (f+1)-FT +4 spanners
  on ``O_f(n^{1 + 2^f/(2^f+1)})`` edges (Theorem 33).
* :mod:`repro.spanners.verification` — brute-force checkers of the
  additive-stretch-under-faults guarantee (Definition 6).
"""

from repro.spanners.additive import Spanner, ft_plus4_spanner
from repro.spanners.plus2 import ft_plus2_spanner
from repro.spanners.verification import spanner_violations, verify_spanner

__all__ = [
    "Spanner",
    "ft_plus4_spanner",
    "ft_plus2_spanner",
    "spanner_violations",
    "verify_spanner",
]
