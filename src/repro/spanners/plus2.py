"""f-FT +2 additive spanners — the prior-work comparator.

Section 1.1 positions the paper's +4 spanners against the +2
fault-tolerant spanners of earlier work ([21, 30]): +2 stretch costs
more edges, and "no efficient constructions are known for FT spanners
with additive stretch larger than two (which are sparser)".  To
measure that trade we implement the classic +2 construction in its
fault-tolerant form:

1. sample σ cluster centers; every vertex adjacent to >= f + 1 of them
   keeps f + 1 center edges, everyone else keeps all incident edges
   (identical clustering step to Lemma 32);
2. add an f-FT ``C x V`` preserver (Theorem 26 overlay — note *V*,
   not *C x C*: that is exactly where the +2 pays over the +4).

Correctness (+2 under ``|F| <= f``): on any replacement path take the
last clustered vertex ``w``; a center ``c`` adjacent to ``w`` survives
``F``; the ``C x V`` preserver carries exact ``c ~> s`` and ``c ~> t``
replacement paths, and routing s -> c -> t costs at most
``dist(s, w) + 1 + 1 + dist(w, t) = dist(s, t) + 2``.

Size at f = 1 with the balanced ``σ = n^{1/3}``: ``O(n^{5/3})`` —
versus the paper's +4 spanner at ``O(n^{3/2})``.  The benchmark
``bench_ablation_plus2`` measures the gap.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.core.scheme import RestorableTiebreaking
from repro.preservers.ft_bfs import ft_sv_preserver
from repro.spanners.additive import Spanner


def default_sigma_plus2(n: int, f: int) -> int:
    """Balance ``n^2 f / σ`` against the C x V preserver size.

    For f = 1 this is ``σ = n^{1/3}`` (both terms ``n^{5/3}``);
    general f uses ``σ = n^{(2^f - 1)/(2^f + 2^{2f})}``-ish — we solve
    the f = 1 case exactly and fall back to ``n^{1/3}`` otherwise,
    which keeps the comparison conservative.
    """
    return max(1, min(n, round(n ** (1.0 / 3.0))))


def ft_plus2_spanner(graph: Graph, faults_tolerated: int,
                     sigma: Optional[int] = None, seed: int = 0,
                     max_fault_sets: Optional[int] = None) -> Spanner:
    """Build an f-FT +2 additive spanner (prior-work construction).

    Parameters mirror
    :func:`repro.spanners.additive.ft_plus4_spanner`; the structural
    difference is the ``C x V`` (sourcewise) preserver in step 2.
    """
    if faults_tolerated < 1:
        raise GraphError(
            f"faults_tolerated must be >= 1, got {faults_tolerated}"
        )
    n = graph.n
    f = faults_tolerated
    if sigma is None:
        sigma = default_sigma_plus2(n, f)
    sigma = max(1, min(n, sigma))

    rng = random.Random(seed)
    centers = tuple(sorted(rng.sample(range(n), sigma)))
    center_set = set(centers)

    edges: Set[Edge] = set()
    clustered: Set[int] = set()
    for v in graph.vertices():
        center_neighbors = sorted(
            u for u in graph.neighbors(v) if u in center_set
        )
        if len(center_neighbors) >= f + 1:
            clustered.add(v)
            for u in center_neighbors[: f + 1]:
                edges.add(canonical_edge(u, v))
        else:
            for u in graph.neighbors(v):
                edges.add(canonical_edge(u, v))

    # the C x V preserver must be exact under |F| <= f for ALL targets:
    # full overlay depth f (Theorem 26), no restorability shortcut here.
    scheme = RestorableTiebreaking.build(graph, f=f, seed=seed + 1)
    preserver = ft_sv_preserver(
        scheme, centers, f=f, max_fault_sets=max_fault_sets
    )
    edges |= preserver.edges

    return Spanner(
        graph=graph,
        edges=frozenset(edges),
        centers=centers,
        clustered=frozenset(clustered),
        faults_tolerated=f,
        preserver_size=preserver.size,
    )
