"""Brute-force verification of FT additive stretch (Definition 6).

An f-FT +k additive spanner must satisfy
``dist_{H \\ F}(s, t) <= dist_{G \\ F}(s, t) + k`` for *all* vertex
pairs and all ``|F| <= f``.  As with preservers, the checkers here
decide this exactly (or over a sampled fault universe) by BFS
comparison, and return violation tuples for debuggability.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs.base import Edge, Graph, canonical_edge
from repro.spt.bfs import UNREACHABLE, bfs_distances


def spanner_violations(
    graph: Graph,
    spanner_edges: Iterable[Edge],
    f: int = 1,
    additive: int = 4,
    fault_sets: Optional[Iterable[Sequence[Edge]]] = None,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> List[Tuple]:
    """All ``(F, s, t)`` where the spanner exceeds +``additive`` stretch.

    ``fault_sets`` defaults to every subset of size ``<= f`` (exact but
    exponential; fine on the small graphs used in tests).  A vertex
    pair disconnected in ``G \\ F`` imposes no requirement.
    """
    sub = Graph(graph.n)
    for u, v in spanner_edges:
        sub.add_edge(u, v)

    if fault_sets is None:
        edges = list(graph.edges())
        fault_sets = itertools.chain.from_iterable(
            itertools.combinations(edges, size) for size in range(f + 1)
        )

    bad: List[Tuple] = []
    for faults in fault_sets:
        faults = tuple(canonical_edge(u, v) for u, v in faults)
        g_view = graph.without(faults)
        h_view = sub.without(faults)
        for s in graph.vertices():
            dist_g = bfs_distances(g_view, s)
            dist_h = bfs_distances(h_view, s)
            for t in graph.vertices():
                if t <= s:
                    continue
                if pairs is not None and (s, t) not in pairs:
                    continue
                if dist_g[t] == UNREACHABLE:
                    continue
                if dist_h[t] == UNREACHABLE or dist_h[t] > dist_g[t] + additive:
                    bad.append((faults, s, t, dist_g[t], dist_h[t]))
    return bad


def verify_spanner(graph: Graph, spanner_edges: Iterable[Edge],
                   f: int = 1, additive: int = 4, **kwargs) -> bool:
    """True when :func:`spanner_violations` finds nothing."""
    return not spanner_violations(
        graph, spanner_edges, f=f, additive=additive, **kwargs
    )
