"""The pure-Python loop backend — always available, the reference.

A thin namespace over the existing loop kernels: construction binds
each ``*_loops`` implementation (the renamed bodies the public
wrappers dispatch around) directly as an instance attribute, so a
dispatched call costs one attribute load over calling the loop
directly.  No adaptation happens here — the loops *are* the
behavioural contract every other backend is pinned against.

The ``spt`` / ``incremental`` imports are deferred to construction:
``backends`` sits below those packages in the layer DAG (the public
kernels import the dispatcher), so importing them at module level
would be a layering back-edge.  Function-scope imports are the
sanctioned escape hatch (see ``repro.devtools.lint.config``), and the
backend is constructed once per process.
"""

from __future__ import annotations

__all__ = ["PyLoopsBackend"]


class PyLoopsBackend:
    """Kernel backend serving every call with the pure-Python loops."""

    name = "pyloops"

    def __init__(self) -> None:
        from repro.incremental import repair
        from repro.spt import batched, fastpaths

        self.csr_bfs_distances = fastpaths.csr_bfs_distances_loops
        self.csr_weighted_distances = fastpaths.csr_weighted_distances_loops
        self.csr_dijkstra_flat = fastpaths.csr_dijkstra_flat_loops
        self.csr_bfs_distances_many = batched.csr_bfs_distances_many_loops
        self.csr_weighted_distances_many = (
            batched.csr_weighted_distances_many_loops)
        self.csr_dijkstra_flat_many = batched.csr_dijkstra_flat_many_loops
        self.csr_bfs_repair = repair.csr_bfs_repair_loops
        self.csr_dijkstra_repair = repair.csr_dijkstra_repair_loops
