"""Kernel backends: one hot-kernel surface, multiple implementations.

The CSR stack's hot kernels — single-source traversals
(:mod:`repro.spt.fastpaths`), batched multi-source waves
(:mod:`repro.spt.batched`), and delta repair
(:mod:`repro.incremental.repair`) — are served through a *backend
seam*: every public entry point is a thin wrapper that asks
:mod:`repro.backends.dispatch` which implementation should run this
call.  Two backends are registered:

* ``pyloops`` (:mod:`repro.backends.pyloops`) — the original
  pure-Python loops.  Always available, and the behavioural reference
  every other backend is pinned against.
* ``vectorized`` (:mod:`repro.backends.vectorized`) — numpy kernels
  over cached per-snapshot ndarray mirrors
  (:meth:`repro.graphs.csr.CSRGraph.ndarrays`).  Requires numpy
  (optional extra ``repro[numpy]``); the dispatcher falls back to
  ``pyloops`` when it is absent.

Backends are **bit-identical** by contract: exact int distances, the
same ``UNREACHABLE`` sentinels, the same documented parent tie-breaks
— enforced by the hypothesis cross-check suites parametrised over
backends.  Selection is per call, from a calibrated work-size table
(see :func:`~repro.backends.dispatch.backend_for`), and can be pinned
with :func:`~repro.backends.dispatch.set_backend` or the
``REPRO_BACKEND`` environment variable.  :func:`numpy_or_none` is the
single gate for the optional numpy dependency across the package.
"""

from repro.backends.api import (
    KERNEL_NAMES,
    KernelBackend,
    UNREACHABLE,
    check_source,
    numpy_or_none,
)
from repro.backends.dispatch import (
    backend_for,
    backend_name_for,
    calibrate,
    current_mode,
    kernel_impl,
    reset_thresholds,
    set_backend,
    set_thresholds,
    thresholds,
)

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "UNREACHABLE",
    "backend_for",
    "backend_name_for",
    "calibrate",
    "check_source",
    "current_mode",
    "kernel_impl",
    "numpy_or_none",
    "reset_thresholds",
    "set_backend",
    "set_thresholds",
    "thresholds",
]
