"""The kernel-backend protocol and the one optional-numpy gate.

A *kernel backend* is an object exposing the hot-kernel surface of the
CSR scenario stack — the single-source traversals of
:mod:`repro.spt.fastpaths`, the batched waves of
:mod:`repro.spt.batched`, and the delta-repair kernels of
:mod:`repro.incremental.repair` — as attributes with identical
signatures and **bit-identical** results (exact int distances, the
``UNREACHABLE`` sentinel, the documented parent tie-breaks).  The
public kernel entry points stay where they always were; each is now a
thin wrapper that asks :mod:`repro.backends.dispatch` which backend
should serve the call.

Two backends are registered:

* ``pyloops`` (:mod:`repro.backends.pyloops`) — the existing
  pure-Python loops.  Always available; stays the cross-checked
  reference implementation.
* ``vectorized`` (:mod:`repro.backends.vectorized`) — numpy kernels
  over the snapshot's cached ndarray mirrors.  Available only when
  numpy is importable; the dispatcher falls back to ``pyloops``
  otherwise.

numpy is an *optional* dependency (``pip install repro[numpy]``), and
:func:`numpy_or_none` is the single place that decides whether it is
available — every consumer (the vectorized backend, the dispatcher,
``analysis/bounds``) goes through it.  Setting the ``REPRO_NO_NUMPY``
environment variable to a non-empty value other than ``"0"`` makes it
report numpy as absent, which is how the no-numpy CI leg and the
fallback tests simulate an uninstalled numpy in-process.
"""

from __future__ import annotations

import os
from typing import (
    Any, Dict, Iterable, List, Optional, Protocol, Tuple,
)

from repro.exceptions import GraphError
from repro.graphs.csr import CSRGraph

__all__ = [
    "UNREACHABLE",
    "KERNEL_NAMES",
    "KernelBackend",
    "check_source",
    "numpy_or_none",
]

#: Sentinel distance for unreachable vertices — must match
#: ``repro.spt.fastpaths.UNREACHABLE`` (asserted by the test suite;
#: duplicated here because backends sit *below* ``spt`` in the layer
#: DAG and cannot import upward at module level).
UNREACHABLE = -1

#: Every kernel a backend must serve, i.e. the attribute surface of
#: :class:`KernelBackend`.  The dispatcher uses these names to resolve
#: kernels; the protocol-conformance test iterates them.
KERNEL_NAMES: Tuple[str, ...] = (
    "csr_bfs_distances",
    "csr_weighted_distances",
    "csr_dijkstra_flat",
    "csr_bfs_distances_many",
    "csr_weighted_distances_many",
    "csr_dijkstra_flat_many",
    "csr_bfs_repair",
    "csr_dijkstra_repair",
)


def check_source(csr: CSRGraph, source: int, role: str = "source") -> None:
    """Shared source-vertex validation for backend kernels."""
    if not csr.has_vertex(source):
        raise GraphError(f"unknown {role} vertex {source}")


def numpy_or_none() -> Optional[Any]:
    """The ``numpy`` module, or ``None`` when it is unavailable.

    The one gate for the optional dependency: returns ``None`` when
    numpy is not importable *or* when the ``REPRO_NO_NUMPY``
    environment variable is set to a non-empty value other than
    ``"0"`` (the in-process absence simulation used by tests and the
    no-numpy CI leg).  Import failures are probed once per process;
    the environment override is re-read on every call so tests can
    flip it with ``monkeypatch``.
    """
    flag = os.environ.get("REPRO_NO_NUMPY", "")
    if flag and flag != "0":
        return None
    return _import_numpy()


_NUMPY_PROBE: List[Any] = []


def _import_numpy() -> Optional[Any]:
    if not _NUMPY_PROBE:
        try:
            import numpy
        except ImportError:
            numpy = None  # type: ignore[assignment]
        _NUMPY_PROBE.append(numpy)
    return _NUMPY_PROBE[0]


class KernelBackend(Protocol):
    """Structural type of a kernel backend.

    Signatures and result shapes mirror the public entry points in
    :mod:`repro.spt.fastpaths`, :mod:`repro.spt.batched` and
    :mod:`repro.incremental.repair`; see those modules for the full
    semantics.  Two deliberate restrictions keep the surface
    backend-friendly:

    * ``csr_dijkstra_flat`` takes no ``targets`` early-exit parameter —
      early exit is inherently sequential, so the public wrapper always
      routes targeted calls to the pure-Python loops.
    * ``sources`` / ``orphans`` arrive as concrete lists (the public
      wrappers materialise iterables once, to measure the batch width
      for dispatch).
    """

    name: str

    def csr_bfs_distances(self, csr: CSRGraph, mask: Optional[bytearray],
                          source: int) -> List[int]:
        ...

    def csr_weighted_distances(self, csr: CSRGraph,
                               mask: Optional[bytearray],
                               source: int) -> List[int]:
        ...

    def csr_dijkstra_flat(self, csr: CSRGraph, mask: Optional[bytearray],
                          source: int
                          ) -> Tuple[Dict[int, int],
                                     Dict[int, Optional[int]]]:
        ...

    def csr_bfs_distances_many(self, csr: CSRGraph,
                               mask: Optional[bytearray],
                               sources: Iterable[int]) -> List[List[int]]:
        ...

    def csr_weighted_distances_many(self, csr: CSRGraph,
                                    mask: Optional[bytearray],
                                    sources: Iterable[int]
                                    ) -> List[List[int]]:
        ...

    def csr_dijkstra_flat_many(self, csr: CSRGraph,
                               mask: Optional[bytearray],
                               sources: Iterable[int]
                               ) -> List[Tuple[Dict[int, int],
                                               Dict[int, Optional[int]]]]:
        ...

    def csr_bfs_repair(self, csr: CSRGraph, mask: Optional[bytearray],
                       base: List[int], orphans: Iterable[int]
                       ) -> Tuple[List[int], List[int]]:
        ...

    def csr_dijkstra_repair(self, csr: CSRGraph, mask: Optional[bytearray],
                            base: List[int], orphans: Iterable[int]
                            ) -> Tuple[List[int], List[int]]:
        ...
