"""numpy-vectorised kernel backend over cached CSR ndarray mirrors.

Every kernel here is pinned **bit-identical** to its pure-Python
sibling (the ``pyloops`` backend) by the hypothesis cross-check suites
— exact int distances, the same ``UNREACHABLE`` sentinels, the same
documented parent tie-breaks.  The speed comes from replacing the
per-arc interpreter frames with whole-frontier array sweeps:

* **Ragged frontier gather** — a frontier's arc ids are materialised
  in one shot from ``indptr`` fancy-indexing plus an
  ``arange``/``np.repeat`` segment trick (:func:`_arc_ids`); the arc
  mask is lifted once per call to a boolean array and applied as a
  single filter.
* **BFS** (:func:`csr_bfs_distances`) — level-synchronous boolean
  frontier: gather the frontier's arc heads, drop seen vertices,
  stamp the depth.
* **Multi-source BFS** (:func:`csr_bfs_distances_many`) — the
  bit-packed wave becomes a 2-D ``(n, ceil(S/64))`` uint64 frontier
  matrix.  Per level, head contributions are OR-reduced with
  ``argsort`` + ``np.bitwise_or.reduceat`` (a ufunc ``.at`` scatter is
  far slower), and freshly discovered (vertex, source) pairs are
  decoded via ``np.unpackbits`` in one shot.
* **Weighted distances** (:func:`csr_weighted_distances`) —
  frontier-restricted label-correcting (Bellman–Ford on the active
  set): each round relaxes every out-arc of the vertices whose
  tentative distance just improved, with one ``np.minimum.at`` per
  round.  Distances only ever decrease and the unique fixpoint *is*
  the Dijkstra distance vector, so the result is bit-identical to the
  heap loop even though the settling order differs; round count tracks
  the hop depth of the shortest-path tree, not ``n``.
* **Parent trees** (:func:`csr_dijkstra_flat`) — parents are derived
  after the distance pass as an argmin over *tight* in-arcs
  (``dist[u] + w(u, v) == dist[v]``) with ``(dist[u], u)`` as the
  tie-break.  Under unique shortest paths — the only regime the
  documented contract covers, and the only one the tiebreaking layer
  uses — the tight in-arc is unique, so this matches the heap loop's
  parents exactly.
* **Delta repair** (:func:`csr_bfs_repair` /
  :func:`csr_dijkstra_repair`) — the orphaned region is compacted to
  ``0..k-1``; seeds are gathered from every surviving intact→orphan
  arc (weighted seeds read the reverse arc's weight through the
  mirror's ``rev`` permutation, so antisymmetric snapshots repair
  exactly), then label-correcting rounds run entirely inside the
  ``k``-vector — per-round cost scales with the region, not ``n``.

All distances are computed in int64 with ``_INF = 2**62`` as the
internal unreached sentinel; the dispatcher never routes a snapshot
here whose weights could overflow that headroom (see
``repro.backends.dispatch``), and a forced route raises
:class:`~repro.exceptions.BackendError` instead of silently wrapping.
Outputs are converted with ``.tolist()``, so callers receive plain
Python ints, exactly like the loops.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.backends.api import UNREACHABLE, check_source, numpy_or_none
from repro.exceptions import BackendError, GraphError
from repro.graphs.csr import CSRGraph

__all__ = ["VectorizedBackend"]

#: Internal "not yet settled" sentinel.  Large enough that no real
#: distance reaches it (the dispatcher guards ``max_weight * n`` against
#: it), small enough that one further int64 addition cannot wrap.
_INF = 1 << 62

# uint64 words are decoded to per-source bits via a uint8 view +
# np.unpackbits(bitorder="little"); on a big-endian host the bytes of
# each word must be swapped first so bit j still means source j.
_NEEDS_BYTESWAP = sys.byteorder == "big"


def _require_numpy() -> Any:
    np = numpy_or_none()
    if np is None:
        raise BackendError("vectorized backend requires numpy")
    return np


def _mirror(np: Any, csr: CSRGraph) -> Any:
    nd = csr.ndarrays()
    if nd is None:  # pragma: no cover - numpy vanished mid-call
        raise BackendError("vectorized backend requires numpy")
    return nd


def _weights_of(csr: CSRGraph, nd: Any) -> Any:
    """The mirror's int64 weights (same guards as ``flat_weights``).

    Raises :class:`GraphError` on a weightless snapshot (matching the
    loops) and :class:`BackendError` when the weights — or any simple
    path's sum of them (< n arcs) — could overflow the ``_INF``
    headroom.  The ``auto`` dispatch mode never routes such snapshots
    here; a forced route fails loudly instead of wrapping.
    """
    if csr.weights is None:
        raise GraphError("snapshot carries no weights array")
    if nd.weights is None or nd.max_weight > (_INF - 1) // max(csr.n, 1):
        raise BackendError(
            "snapshot weights exceed the vectorized backend's int64 range")
    return nd.weights


def weighted_safe(csr: CSRGraph) -> bool:
    """True when the vectorized weighted kernels can serve ``csr``.

    The dispatcher's overflow guard: weights must fit int64 and every
    simple path sum (< n arcs) must stay under the ``_INF`` sentinel.
    """
    np = numpy_or_none()
    if np is None:
        return False
    nd = csr.ndarrays()
    return (nd is not None and nd.weights is not None
            and nd.max_weight <= (_INF - 1) // max(csr.n, 1))


def _lift_mask(np: Any, mask: Optional[bytearray]) -> Any:
    """The arc mask as a boolean array (one lift per kernel call)."""
    if mask is None:
        return None
    return np.frombuffer(mask, dtype=np.uint8) != 0


def _arc_ids(np: Any, indptr: Any, rows: Any) -> Any:
    """Arc ids of every row in ``rows``, concatenated (ragged gather).

    ``arange(total)`` numbers the output positions; subtracting each
    segment's exclusive prefix and adding its row start turns them
    into per-row arc ranges without a Python-level loop.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if not total:
        return starts[:0]
    prefix = np.cumsum(counts) - counts
    return (np.arange(total, dtype=np.int64)
            + np.repeat(starts - prefix, counts))


def _decode_bits(np: Any, words: Any, width: int) -> Any:
    """``(k, W)`` uint64 → ``(k, width)`` 0/1 matrix, bit j = source j."""
    if _NEEDS_BYTESWAP:  # pragma: no cover - little-endian CI
        words = words.byteswap()
    return np.unpackbits(words.view(np.uint8), axis=1,
                         bitorder="little", count=width)


def csr_bfs_distances(csr: CSRGraph, mask: Optional[bytearray],
                      source: int) -> List[int]:
    """Vectorised sibling of ``fastpaths.csr_bfs_distances``."""
    np = _require_numpy()
    check_source(csr, source)
    nd = _mirror(np, csr)
    indptr, indices = nd.indptr, nd.indices
    ok = _lift_mask(np, mask)
    dist = np.full(csr.n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    flatnonzero = np.flatnonzero
    arc_ids = _arc_ids
    depth = 0
    while frontier.size:
        depth += 1
        idx = arc_ids(np, indptr, frontier)
        if ok is not None:
            idx = idx[ok[idx]]
        heads = indices[idx]
        newly = np.zeros(csr.n, dtype=np.bool_)
        newly[heads] = True
        newly &= dist < 0
        dist[newly] = depth
        frontier = flatnonzero(newly)
    return dist.tolist()


def _weighted_dist(np: Any, indptr: Any, indices: Any, tails: Any,
                   weights: Any, ok: Any, n: int, source: int) -> Any:
    """Dense int64 distance vector (``_INF`` = unreached) from ``source``.

    Frontier-restricted label-correcting: each round relaxes the
    out-arcs of every vertex whose tentative distance just improved
    (one ``np.minimum.at``), and the improved heads form the next
    round's frontier.  Tentative distances are monotonically
    decreasing integers, so the loop terminates, and the fixpoint —
    every surviving arc non-tight-improvable — is the unique shortest
    -path distance vector: bit-identical to the heap loop's values.
    """
    dist = np.full(n, _INF, dtype=np.int64)
    dist[source] = 0
    active = np.array([source], dtype=np.int64)
    minimum_at = np.minimum.at
    unique = np.unique
    arc_ids = _arc_ids
    while active.size:
        idx = arc_ids(np, indptr, active)
        if ok is not None:
            idx = idx[ok[idx]]
        heads = indices[idx]
        cand = dist[tails[idx]] + weights[idx]
        better = cand < dist[heads]
        heads = heads[better]
        if not heads.size:
            break
        minimum_at(dist, heads, cand[better])
        active = unique(heads)
    return dist


def csr_weighted_distances(csr: CSRGraph, mask: Optional[bytearray],
                           source: int) -> List[int]:
    """Vectorised sibling of ``fastpaths.csr_weighted_distances``."""
    np = _require_numpy()
    check_source(csr, source)
    nd = _mirror(np, csr)
    weights = _weights_of(csr, nd)
    ok = _lift_mask(np, mask)
    dist = _weighted_dist(np, nd.indptr, nd.indices, nd.tails, weights,
                          ok, csr.n, source)
    return np.where(dist >= _INF, UNREACHABLE, dist).tolist()


def _flat_result(np: Any, nd: Any, weights: Any, ok: Any, n: int,
                 source: int, dist: Any
                 ) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """``(dist, parent)`` dicts from a dense distance vector.

    Parents are the argmin over tight in-arcs with ``(dist[u], u)`` as
    tie-break — identical to the heap loop under unique shortest paths
    (the documented contract's only regime).
    """
    tails, heads = nd.tails, nd.indices
    reached = dist < _INF
    live = reached[tails] & reached[heads]
    if ok is not None:
        live &= ok
    cand = np.flatnonzero(live)
    ct, ch = tails[cand], heads[cand]
    tight = dist[ct] + weights[cand] == dist[ch]
    ct, ch = ct[tight], ch[tight]
    minimum_at = np.minimum.at
    best_d = np.full(n, _INF, dtype=np.int64)
    minimum_at(best_d, ch, dist[ct])
    keep = dist[ct] == best_d[ch]
    ct, ch = ct[keep], ch[keep]
    best_u = np.full(n, n, dtype=np.int64)
    minimum_at(best_u, ch, ct)
    rv = np.flatnonzero(reached)
    order = np.lexsort((rv, dist[rv]))
    verts = rv[order].tolist()
    dist_map = dict(zip(verts, dist[rv][order].tolist()))
    parents = best_u[rv][order].tolist()
    parent_map: Dict[int, Optional[int]] = {
        v: (None if v == source else p) for v, p in zip(verts, parents)
    }
    return dist_map, parent_map


def csr_dijkstra_flat(csr: CSRGraph, mask: Optional[bytearray],
                      source: int
                      ) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Vectorised sibling of ``fastpaths.csr_dijkstra_flat``.

    No ``targets`` early exit — the public wrapper keeps targeted
    calls on the loops (early exit is inherently sequential).
    """
    np = _require_numpy()
    check_source(csr, source)
    nd = _mirror(np, csr)
    weights = _weights_of(csr, nd)
    ok = _lift_mask(np, mask)
    dist = _weighted_dist(np, nd.indptr, nd.indices, nd.tails, weights,
                          ok, csr.n, source)
    return _flat_result(np, nd, weights, ok, csr.n, source, dist)


def csr_bfs_distances_many(csr: CSRGraph, mask: Optional[bytearray],
                           sources: Iterable[int]) -> List[List[int]]:
    """Vectorised sibling of ``batched.csr_bfs_distances_many``.

    The bit-packed wave as a 2-D uint64 frontier matrix: row ``v``
    holds one bit per source.  Per level the frontier's head
    contributions are OR-reduced per head vertex with ``argsort`` +
    ``np.bitwise_or.reduceat``, and the fresh (vertex, source)
    discoveries are decoded with one ``np.unpackbits`` into a masked
    row update of the distance matrix.  That matrix is kept
    **vertex-major** (``(n, sources)``) so the per-level update writes
    contiguous rows — a source-major layout would scatter every
    discovery across a strided column, which dominates the whole
    kernel at large ``n`` — and transposed once at the end.
    """
    np = _require_numpy()
    src_list = list(sources)
    check = check_source
    for s in src_list:
        check(csr, s)
    if not src_list:
        return []
    nd = _mirror(np, csr)
    indptr, indices, tails = nd.indptr, nd.indices, nd.tails
    ok = _lift_mask(np, mask)
    n = csr.n
    n_sources = len(src_list)
    words = (n_sources + 63) >> 6
    src_arr = np.asarray(src_list, dtype=np.int64)
    dist = np.full((n, n_sources), UNREACHABLE, dtype=np.int32)
    dist[src_arr, np.arange(n_sources)] = 0
    frontier = np.zeros((n, words), dtype=np.uint64)
    seen = np.zeros((n, words), dtype=np.uint64)
    word_of = np.arange(n_sources) >> 6
    bit_of = (np.ones(n_sources, dtype=np.uint64)
              << (np.arange(n_sources, dtype=np.uint64) & np.uint64(63)))
    bitwise_or_at = np.bitwise_or.at
    bitwise_or_at(frontier, (src_arr, word_of), bit_of)
    bitwise_or_at(seen, (src_arr, word_of), bit_of)
    active = np.unique(src_arr)
    or_reduceat = np.bitwise_or.reduceat
    arc_ids = _arc_ids
    copyto = np.copyto
    depth = 0
    while active.size:
        depth += 1
        idx = arc_ids(np, indptr, active)
        if ok is not None:
            idx = idx[ok[idx]]
        if not idx.size:
            frontier[active] = 0
            break
        heads = indices[idx]
        order = np.argsort(heads)
        contrib = frontier[tails[idx[order]]]
        frontier[active] = 0
        uniq, starts = np.unique(heads[order], return_index=True)
        gathered = or_reduceat(contrib, starts, axis=0)
        fresh = gathered & ~seen[uniq]
        any_fresh = fresh.any(axis=1)
        vs = uniq[any_fresh]
        fresh = fresh[any_fresh]
        if vs.size:
            seen[vs] |= fresh
            frontier[vs] = fresh
            bits = _decode_bits(np, fresh, n_sources)
            rows = dist[vs]
            copyto(rows, depth, where=bits.view(np.bool_))
            dist[vs] = rows
        active = vs
    return np.ascontiguousarray(dist.T).tolist()


def csr_weighted_distances_many(csr: CSRGraph, mask: Optional[bytearray],
                                sources: Iterable[int]) -> List[List[int]]:
    """Vectorised sibling of ``batched.csr_weighted_distances_many``.

    Dijkstra frontiers cannot share bits across sources, so the batch
    win is the amortised setup (one mask lift, one mirror) plus the
    per-source settled-frontier sweeps; duplicate sources are
    traversed once and re-emitted as list copies, exactly like the
    loops.
    """
    np = _require_numpy()
    src_list = list(sources)
    check = check_source
    for s in src_list:
        check(csr, s)
    if not src_list:
        return []
    nd = _mirror(np, csr)
    weights = _weights_of(csr, nd)
    ok = _lift_mask(np, mask)
    indptr, indices, tails = nd.indptr, nd.indices, nd.tails
    n = csr.n
    rows: Dict[int, List[int]] = {}
    out: List[List[int]] = []
    for s in src_list:
        row = rows.get(s)
        if row is None:
            dist = _weighted_dist(np, indptr, indices, tails, weights,
                                  ok, n, s)
            rows[s] = row = np.where(dist >= _INF, UNREACHABLE,
                                     dist).tolist()
            out.append(row)
        else:
            out.append(list(row))
    return out


def csr_dijkstra_flat_many(csr: CSRGraph, mask: Optional[bytearray],
                           sources: Iterable[int]
                           ) -> List[Tuple[Dict[int, int],
                                           Dict[int, Optional[int]]]]:
    """Vectorised sibling of ``batched.csr_dijkstra_flat_many``."""
    np = _require_numpy()
    src_list = list(sources)
    check = check_source
    for s in src_list:
        check(csr, s)
    if not src_list:
        return []
    nd = _mirror(np, csr)
    weights = _weights_of(csr, nd)
    ok = _lift_mask(np, mask)
    indptr, indices, tails = nd.indptr, nd.indices, nd.tails
    n = csr.n
    done: Dict[int, Tuple[Dict[int, int], Dict[int, Optional[int]]]] = {}
    out: List[Tuple[Dict[int, int], Dict[int, Optional[int]]]] = []
    for s in src_list:
        pair = done.get(s)
        if pair is None:
            dist = _weighted_dist(np, indptr, indices, tails, weights,
                                  ok, n, s)
            done[s] = pair = _flat_result(np, nd, weights, ok, n, s, dist)
            out.append(pair)
        else:
            out.append((dict(pair[0]), dict(pair[1])))
    return out


def _repair_region(np: Any, csr: CSRGraph, nd: Any,
                   mask: Optional[bytearray], base: List[int],
                   orph: List[int], weights: Any
                   ) -> Tuple[List[int], List[int]]:
    """Shared repair body; ``weights is None`` means hop (+1) repair.

    The orphaned region is compacted to ``0..k-1``; every surviving
    intact→orphan arc seeds its orphan with an exact proposal
    (weighted seeds read the *reverse* arc's weight through the
    mirror's ``rev`` permutation — scanning orphan ``v``'s row yields
    the arc ``(v, u)``, the seed needs ``w(u, v)`` — so antisymmetric
    snapshots repair exactly), then label-correcting rounds run
    entirely inside the ``k``-vector.  The fixpoint equals the loops'
    bucketed/heap settle, so ``patched`` is bit-identical.
    """
    indptr, indices, tails = nd.indptr, nd.indices, nd.tails
    ok = _lift_mask(np, mask)
    base_arr = np.asarray(base, dtype=np.int64)
    patched = base_arr.copy()
    orph_arr = np.asarray(orph, dtype=np.int64)
    patched[orph_arr] = UNREACHABLE
    k = len(orph)
    pos = np.full(csr.n, -1, dtype=np.int64)
    pos[orph_arr] = np.arange(k)
    prop = np.full(k, _INF, dtype=np.int64)
    minimum_at = np.minimum.at
    unique = np.unique
    # Seed: arcs out of orphan rows whose head is intact and reached
    # (orphans were just zeroed to -1, so ``du >= 0`` covers both).
    idx = _arc_ids(np, indptr, orph_arr)
    if ok is not None:
        idx = idx[ok[idx]]
    du = patched[indices[idx]]
    val = du >= 0
    if val.any():
        idx_v = idx[val]
        seed = du[val] + (1 if weights is None else weights[nd.rev[idx_v]])
        minimum_at(prop, pos[tails[idx_v]], seed)
    active = np.flatnonzero(prop < _INF)
    arc_ids = _arc_ids
    while active.size:
        idx2 = arc_ids(np, indptr, orph_arr[active])
        if ok is not None:
            idx2 = idx2[ok[idx2]]
        p2 = pos[indices[idx2]]
        ing = p2 >= 0
        idx2, p2 = idx2[ing], p2[ing]
        cand = prop[pos[tails[idx2]]] + (
            1 if weights is None else weights[idx2])
        better = cand < prop[p2]
        p2 = p2[better]
        if not p2.size:
            break
        minimum_at(prop, p2, cand[better])
        active = unique(p2)
    patched[orph_arr] = np.where(prop < _INF, prop, UNREACHABLE)
    changed = orph_arr[patched[orph_arr] != base_arr[orph_arr]].tolist()
    return patched.tolist(), changed


def csr_bfs_repair(csr: CSRGraph, mask: Optional[bytearray],
                   base: List[int], orphans: Iterable[int]
                   ) -> Tuple[List[int], List[int]]:
    """Vectorised sibling of ``incremental.repair.csr_bfs_repair``."""
    np = _require_numpy()
    orph = sorted(set(orphans))
    if not orph:
        return list(base), []
    nd = _mirror(np, csr)
    return _repair_region(np, csr, nd, mask, base, orph, None)


def csr_dijkstra_repair(csr: CSRGraph, mask: Optional[bytearray],
                        base: List[int], orphans: Iterable[int]
                        ) -> Tuple[List[int], List[int]]:
    """Vectorised sibling of ``incremental.repair.csr_dijkstra_repair``."""
    np = _require_numpy()
    nd = _mirror(np, csr)
    weights = _weights_of(csr, nd)
    orph = sorted(set(orphans))
    if not orph:
        return list(base), []
    return _repair_region(np, csr, nd, mask, base, orph, weights)


class VectorizedBackend:
    """Kernel backend serving every call with the numpy kernels."""

    name = "vectorized"

    def __init__(self) -> None:
        self.csr_bfs_distances = csr_bfs_distances
        self.csr_weighted_distances = csr_weighted_distances
        self.csr_dijkstra_flat = csr_dijkstra_flat
        self.csr_bfs_distances_many = csr_bfs_distances_many
        self.csr_weighted_distances_many = csr_weighted_distances_many
        self.csr_dijkstra_flat_many = csr_dijkstra_flat_many
        self.csr_bfs_repair = csr_bfs_repair
        self.csr_dijkstra_repair = csr_dijkstra_repair
