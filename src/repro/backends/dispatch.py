"""Per-call backend selection from a calibrated work-size table.

The public kernel entry points (``spt/fastpaths``, ``spt/batched``,
``incremental/repair``) each ask :func:`backend_for` which backend
should serve a call, passing the snapshot and the batch width.  The
decision, in precedence order:

1. **Explicit mode** — :func:`set_backend` ``("pyloops" |
   "vectorized" | "auto")`` pins the process; ``set_backend(None)``
   clears the pin.
2. **Environment override** — ``REPRO_BACKEND`` (same three values),
   re-read on every resolution so tests can monkeypatch it.
3. **Auto** (the default) — ``pyloops`` when numpy is unavailable;
   otherwise the *work* of the call (arcs × batch width, scaled to
   the touched region for repair kernels) is compared against the
   kernel's calibrated threshold: ndarray dispatch overhead dominates
   tiny calls, the loops' per-arc interpreter frames dominate big
   ones.  Weighted kernels additionally require the snapshot's
   weights to fit the vectorized backend's int64 headroom
   (:func:`repro.backends.vectorized.weighted_safe`) — tiebreaking
   perturbations on very large graphs can exceed 64 bits, and those
   calls stay on the loops.

The default thresholds were measured by ``benchmarks/bench_backends.py``
on the reference container (Linux/x86-64, CPython 3.11); they are
deliberately conservative — near the crossover both backends cost
about the same, so erring toward ``pyloops`` keeps small-graph
workloads regression-free.  :func:`calibrate` re-measures the
crossover per kernel on the current machine and installs the result
for the process.

Forcing ``vectorized`` without numpy raises
:class:`~repro.exceptions.BackendError`; the ``auto`` mode never
raises — it falls back to the loops.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs as _obs
from repro.backends.api import KERNEL_NAMES, numpy_or_none
from repro.backends.pyloops import PyLoopsBackend
from repro.exceptions import BackendError
from repro.graphs.csr import CSRGraph

__all__ = [
    "backend_for",
    "backend_name_for",
    "calibrate",
    "calibration_path",
    "current_mode",
    "kernel_impl",
    "load_thresholds",
    "record_threshold_gauges",
    "save_thresholds",
    "set_backend",
]

_MODES = ("auto", "pyloops", "vectorized")

#: Kernels whose vectorized implementation reads the weights mirror —
#: auto-dispatch routes them to the loops when the snapshot's weights
#: (or any path sum of them) could overflow int64.
_WEIGHTED_KERNELS = frozenset((
    "csr_weighted_distances",
    "csr_weighted_distances_many",
    "csr_dijkstra_flat",
    "csr_dijkstra_flat_many",
    "csr_dijkstra_repair",
))

#: Repair kernels touch ~``batch × avg_degree`` arcs, not the whole
#: arc array — their work estimate is scaled accordingly.
_REPAIR_KERNELS = frozenset(("csr_bfs_repair", "csr_dijkstra_repair"))

#: Minimum work (arcs × batch width) at which auto-dispatch prefers
#: the vectorized backend, per kernel.  Measured crossovers from
#: ``bench_backends.py`` on the reference container, rounded toward
#: pyloops; ``calibrate()`` re-measures for the current machine.
DEFAULT_THRESHOLDS: Dict[str, int] = {
    "csr_bfs_distances": 4_000,
    "csr_weighted_distances": 2_000,
    "csr_dijkstra_flat": 4_000,
    "csr_bfs_distances_many": 12_000,
    "csr_weighted_distances_many": 12_000,
    "csr_dijkstra_flat_many": 100_000,
    "csr_bfs_repair": 500,
    "csr_dijkstra_repair": 200,
}

_thresholds: Dict[str, int] = dict(DEFAULT_THRESHOLDS)

_mode: Optional[str] = None

_pyloops: Optional[PyLoopsBackend] = None
_vectorized: Optional[Any] = None


def _pyloops_backend() -> PyLoopsBackend:
    # Constructed lazily: building it imports spt/incremental, which
    # import this module — at module-import time that would be a cycle.
    global _pyloops
    if _pyloops is None:
        _pyloops = PyLoopsBackend()
    return _pyloops


def _vectorized_backend() -> Optional[Any]:
    """The vectorized backend, or None when numpy is unavailable.

    Availability is re-checked on every resolution (``REPRO_NO_NUMPY``
    can flip between calls); the instance itself is built once.
    """
    global _vectorized
    if numpy_or_none() is None:
        return None
    if _vectorized is None:
        from repro.backends.vectorized import VectorizedBackend
        _vectorized = VectorizedBackend()
    return _vectorized


def set_backend(name: Optional[str]) -> Optional[str]:
    """Pin the process to one backend; returns the previous pin.

    ``"pyloops"`` / ``"vectorized"`` force every dispatched call onto
    that backend; ``"auto"`` pins the calibrated-table mode (shadowing
    any ``REPRO_BACKEND`` value); ``None`` clears the pin so the
    environment override applies again.  Forcing ``"vectorized"``
    while numpy is unavailable raises :class:`BackendError` here, at
    configuration time, rather than at the first kernel call.
    """
    global _mode
    if name is not None and name not in _MODES:
        raise BackendError(
            f"unknown backend {name!r}; expected one of {_MODES}")
    if name == "vectorized" and numpy_or_none() is None:
        raise BackendError(
            "cannot force the vectorized backend: numpy is unavailable")
    previous = _mode
    _mode = name
    return previous


def current_mode() -> str:
    """The effective dispatch mode (pin, else env override, else auto)."""
    if _mode is not None:
        return _mode
    env = os.environ.get("REPRO_BACKEND", "").strip()
    if not env:
        return "auto"
    if env not in _MODES:
        raise BackendError(
            f"unknown REPRO_BACKEND={env!r}; expected one of {_MODES}")
    return env


def _work(kernel: str, csr: CSRGraph, batch: int) -> int:
    arcs = len(csr.indices)
    if kernel in _REPAIR_KERNELS:
        # A repair touches the orphaned region's rows, not the whole
        # arc array: ~batch rows of average degree.
        return batch * (arcs // max(csr.n, 1) + 1)
    return arcs * max(batch, 1)


def backend_for(kernel: str, csr: CSRGraph, batch: int = 1) -> Any:
    """The backend that should serve ``kernel`` on this call.

    ``batch`` is the call's width: the number of sources for the
    ``_many`` kernels, the orphan count for the repair kernels, 1 for
    single-source calls.
    """
    mode = current_mode()
    if mode == "pyloops":
        return _pyloops_backend()
    if mode == "vectorized":
        vec = _vectorized_backend()
        if vec is None:
            raise BackendError(
                "vectorized backend forced but numpy is unavailable")
        return vec
    # Work check first: small calls resolve without even probing for
    # numpy, keeping the auto path's overhead on tiny graphs to a dict
    # lookup and a comparison.
    if _work(kernel, csr, batch) < _thresholds[kernel]:
        return _pyloops_backend()
    vec = _vectorized_backend()
    if vec is None:
        return _pyloops_backend()
    if kernel in _WEIGHTED_KERNELS:
        from repro.backends.vectorized import weighted_safe
        if not weighted_safe(csr):
            return _pyloops_backend()
    return vec


def backend_name_for(kernel: str, csr: CSRGraph, batch: int = 1) -> str:
    """:func:`backend_for`, reported as a name (for provenance)."""
    return backend_for(kernel, csr, batch).name


def kernel_impl(kernel: str, csr: CSRGraph, batch: int = 1
                ) -> Callable[..., Any]:
    """The callable that should serve ``kernel`` on this call."""
    return getattr(backend_for(kernel, csr, batch), kernel)


def thresholds() -> Dict[str, int]:
    """A copy of the active dispatch table (kernel → min work)."""
    return dict(_thresholds)


def set_thresholds(table: Dict[str, int]) -> None:
    """Install measured thresholds (unknown kernel names rejected)."""
    unknown = set(table) - set(DEFAULT_THRESHOLDS)
    if unknown:
        raise BackendError(f"unknown kernels in threshold table: "
                           f"{sorted(unknown)}")
    _thresholds.update(table)


def reset_thresholds() -> None:
    """Restore the shipped :data:`DEFAULT_THRESHOLDS`."""
    _thresholds.clear()
    _thresholds.update(DEFAULT_THRESHOLDS)


def record_threshold_gauges() -> None:
    """Publish the active dispatch table as observability gauges
    (``repro_backend_threshold{kernel=...}``).  No-op while
    :mod:`repro.obs` is disabled."""
    if not _obs.ENABLED:
        return
    for kernel, value in _thresholds.items():
        _obs.set_gauge("repro_backend_threshold", float(value),
                       kernel=kernel)


# ---------------------------------------------------------------------------
# calibration persistence
# ---------------------------------------------------------------------------
def calibration_path() -> str:
    """Where the calibrated table persists between processes.

    ``REPRO_CALIBRATION`` overrides (re-read per call, so tests can
    monkeypatch it); the default lives under the user cache directory.
    """
    env = os.environ.get("REPRO_CALIBRATION", "").strip()
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "calibration.json")


def save_thresholds(path: Optional[str] = None) -> str:
    """Write the active dispatch table as JSON; returns the path."""
    target = path or calibration_path()
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(thresholds(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_thresholds(path: Optional[str] = None
                    ) -> Optional[Dict[str, int]]:
    """Install a persisted dispatch table; returns it, or None.

    Missing file returns ``None`` (the shipped defaults stay).  A
    malformed or mis-keyed file raises :class:`BackendError` — except
    during the module's own import-time load, which swallows it (a
    stale cache file must never break importing the package).  The
    loaded table is also published as obs gauges when recording is on.
    """
    target = path or calibration_path()
    try:
        with open(target, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise BackendError(
            f"unreadable calibration file {target!r}: {exc}") from exc
    if not isinstance(raw, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in raw.items()):
        raise BackendError(
            f"calibration file {target!r} is not a table of "
            f"positive integer thresholds")
    set_thresholds({k: int(v) for k, v in raw.items()})
    record_threshold_gauges()
    return thresholds()


def calibrate(sizes: Iterable[int] = (200, 800, 3200),
              seed: int = 0, repeats: int = 3, *,
              save: bool = False) -> Dict[str, int]:
    """Measure per-kernel crossovers and install them for the process.

    For each kernel, both backends are timed on Erdős–Rényi snapshots
    of the given sizes (batched kernels at width 32, repair on a
    clustered orphan region); the threshold becomes the geometric
    midpoint between the largest work where pyloops won and the
    smallest where vectorized won.  Returns the installed table (also
    available via :func:`thresholds`).  No-op fallback: when numpy is
    unavailable the shipped defaults are kept and returned.

    ``save=True`` additionally persists the measured table to
    :func:`calibration_path`, and later processes pick it up at import
    (see :func:`load_thresholds`).
    """
    import timeit

    if numpy_or_none() is None:
        return thresholds()
    from repro.graphs.generators import gnm

    pyl = _pyloops_backend()
    vec = _vectorized_backend()
    assert vec is not None

    probes: List[Tuple[CSRGraph, Optional[bytearray]]] = []
    for n in sizes:
        graph = gnm(n, min(4 * n, n * (n - 1) // 2), seed=seed + n)
        csr = CSRGraph.from_graph(
            graph, arc_weight=lambda u, v: 1 + (u * 31 + v * 17) % 16)
        probes.append((csr, None))

    measured: Dict[str, int] = {}
    for kernel in KERNEL_NAMES:
        last_loop_win = 0
        first_vec_win = 0
        for csr, mask in probes:
            batch = 32 if kernel.endswith("_many") else 1
            args = _probe_args(kernel, csr, mask, batch, seed)
            if args is None:
                continue
            t_loop = min(timeit.repeat(
                lambda: getattr(pyl, kernel)(*args), number=1,
                repeat=repeats))
            t_vec = min(timeit.repeat(
                lambda: getattr(vec, kernel)(*args), number=1,
                repeat=repeats))
            work = _work(kernel, csr,
                         batch if not kernel.endswith("_repair")
                         else len(args[3]))
            if t_vec < t_loop:
                if not first_vec_win or work < first_vec_win:
                    first_vec_win = work
            elif work > last_loop_win:
                last_loop_win = work
        if first_vec_win:
            measured[kernel] = max(
                1, int((max(last_loop_win, 1) * first_vec_win) ** 0.5))
        else:
            # vectorized never won on the probes: keep it off up to
            # well past the largest probe.
            measured[kernel] = max(last_loop_win * 4,
                                   DEFAULT_THRESHOLDS[kernel])
    set_thresholds(measured)
    record_threshold_gauges()
    if save:
        save_thresholds()
    return thresholds()


def _probe_args(kernel: str, csr: CSRGraph, mask: Optional[bytearray],
                batch: int, seed: int) -> Optional[Tuple[Any, ...]]:
    """Arguments for one calibration probe call, or None to skip."""
    import random
    rng = random.Random(seed ^ 0x5EED)
    n = csr.n
    if n == 0:
        return None
    if kernel.endswith("_repair"):
        pyl = _pyloops_backend()
        if kernel == "csr_dijkstra_repair":
            base = pyl.csr_weighted_distances(csr, mask, 0)
        else:
            base = pyl.csr_bfs_distances(csr, mask, 0)
        orphans = sorted(rng.sample(range(n), max(2, n // 8)))
        return (csr, mask, base, orphans)
    if kernel.endswith("_many"):
        sources = [rng.randrange(n) for _ in range(batch)]
        return (csr, mask, sources)
    return (csr, mask, 0)


def _load_on_import() -> None:
    """Adopt a previously saved calibration at import time, silently.

    Nothing saved (the common case) keeps the shipped defaults; a
    corrupt or mis-keyed file is ignored here — importing the package
    must never fail because of a stale cache — and surfaces only when
    :func:`load_thresholds` is called explicitly.
    """
    try:
        load_thresholds()
    except BackendError:
        pass


_load_on_import()
