"""(f+1)-FT ``S x S`` preservers from restorable overlays (Theorem 31).

The reduction is the paper's headline application: take an
(f+1)-restorable RPTS ``pi``, build the *f*-FT ``S x V`` preserver by
overlay (one fewer fault than the target!), and restorability pays the
missing fault: for ``|F| <= f + 1``, some replacement ``s ~> t`` path
decomposes as ``pi(s, x | F') + reverse(pi(t, x | F'))`` with
``|F'| <= f``, and both halves are ``S x V`` selections already in the
overlay.  Size: ``O(n^{2-1/2^f} |S|^{1/2^f})`` — Theorem 5.

For ``f = 0`` this says: the union of |S| shortest-path trees computed
with 1-restorable tiebreaking is a 1-FT ``S x S`` preserver on
``O(|S| n)`` edges, recovering [9, 8] "simply by taking the union of
BFS trees from each source" (Section 1.1).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import GraphError
from repro.graphs.base import Graph
from repro.core.scheme import RestorableTiebreaking
from repro.preservers.ft_bfs import Preserver, ft_sv_preserver


def ft_ss_preserver(graph: Graph, sources: Iterable[int],
                    faults_tolerated: int,
                    scheme: Optional[RestorableTiebreaking] = None,
                    seed: int = 0,
                    max_fault_sets: Optional[int] = None) -> Preserver:
    """Build an ``S x S`` preserver tolerating ``faults_tolerated`` faults.

    Parameters
    ----------
    graph:
        The input graph.
    sources:
        The subset ``S`` whose pairwise distances must survive.
    faults_tolerated:
        The number of simultaneous edge faults to tolerate between
        sources (the paper's ``f + 1``); must be >= 1.
    scheme:
        Optional prebuilt restorable scheme.  It must come from an ATW
        function valid for at least ``faults_tolerated`` faults; a
        fresh one is drawn otherwise.
    seed:
        Seed for the fresh scheme.
    max_fault_sets:
        Passed through to the overlay (see
        :func:`~repro.preservers.ft_bfs.ft_sv_preserver`).

    Returns
    -------
    Preserver
        Overlay depth is ``faults_tolerated - 1``; by Theorem 31 the
        result preserves all ``S x S`` distances under up to
        ``faults_tolerated`` faults.
    """
    if faults_tolerated < 1:
        raise GraphError(
            f"faults_tolerated must be >= 1, got {faults_tolerated}"
        )
    if scheme is None:
        scheme = RestorableTiebreaking.build(
            graph, f=faults_tolerated, seed=seed
        )
    overlay_depth = faults_tolerated - 1
    preserver = ft_sv_preserver(
        scheme, sources, overlay_depth, max_fault_sets=max_fault_sets
    )
    # Re-tag: the S x V overlay tolerates `overlay_depth` faults against
    # all of V, and `faults_tolerated` faults between sources.
    return Preserver(
        graph=preserver.graph,
        edges=preserver.edges,
        sources=preserver.sources,
        faults_tolerated=faults_tolerated,
        fault_sets_explored=preserver.fault_sets_explored,
    )
