"""Brute-force verification of the preserver property (Definition 4).

A subgraph ``H ⊆ G`` is an ``S x T`` f-FT preserver when
``dist_{H \\ F}(s, t) = dist_{G \\ F}(s, t)`` for all ``s ∈ S``,
``t ∈ T`` and ``|F| <= f``.  These checkers decide that *exactly* by
enumerating (or sampling) fault sets and comparing BFS distances in
``H \\ F`` against ``G \\ F`` — the ground truth every preserver test
and benchmark leans on.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs.base import Edge, Graph, canonical_edge


def _fault_universe(graph: Graph, f: int,
                    fault_sets: Optional[Iterable[Sequence[Edge]]]):
    if fault_sets is not None:
        for fs in fault_sets:
            yield tuple(canonical_edge(u, v) for u, v in fs)
        return
    edges = list(graph.edges())
    for size in range(f + 1):
        for combo in itertools.combinations(edges, size):
            yield combo


def preserver_violations(
    graph: Graph,
    preserver_edges: Iterable[Edge],
    sources: Iterable[int],
    targets: Optional[Iterable[int]] = None,
    f: int = 1,
    fault_sets: Optional[Iterable[Sequence[Edge]]] = None,
) -> List[Tuple]:
    """All ``(F, s, t)`` where the subgraph loses a distance.

    Parameters
    ----------
    graph:
        The ground-truth graph ``G``.
    preserver_edges:
        The candidate preserver ``H`` as an edge set.
    sources, targets:
        ``S`` and ``T`` (``T`` defaults to ``S``, the subset setting;
        pass ``graph.vertices()`` for the ``S x V`` setting).
    f:
        Enumerate all fault sets of size ``<= f`` (ignored when
        ``fault_sets`` is given).
    fault_sets:
        Explicit fault universe for sampled verification on larger
        graphs (see :func:`repro.graphs.generators.fault_sample`).

    Returns
    -------
    list of ``(faults, s, t, dist_G, dist_H)`` tuples; empty = verified.
    ``faults`` is reported as a canonical tuple (each edge sorted, the
    set sorted and deduplicated), regardless of the orientation/order
    it was supplied in.
    """
    # Delegate through the query-session facade to the batched
    # engine: one CSR snapshot per graph, a reusable O(|F|) scratch
    # mask per scenario, and one bit-packed multi-source BFS wave per
    # (scenario, graph) serving the whole source set, instead of a
    # fresh FaultView + filtered BFS per (fault set, source).
    # Enumeration order is unchanged; note the engine reports each
    # fault set in canonical form (sorted, deduplicated), so
    # explicitly passed ``fault_sets`` entries may come back
    # reordered.
    from repro.query.session import Session

    session = Session(graph)
    return session.preserver_violations(
        preserver_edges, sources,
        _fault_universe(graph, f, fault_sets), targets,
    )


def verify_preserver(graph: Graph, preserver_edges: Iterable[Edge],
                     sources: Iterable[int], **kwargs) -> bool:
    """True when :func:`preserver_violations` finds nothing."""
    return not preserver_violations(graph, preserver_edges, sources, **kwargs)
