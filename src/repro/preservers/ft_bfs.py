"""f-FT ``S x V`` preservers by RPTS overlay (Theorem 26).

The construction is stated in one line in the paper: *overlay all
``S x V`` replacement paths selected by a consistent stable f-RPTS*.
The subtlety is enumerating the fault sets.  Naively there are
``O(m^f)`` of them; stability collapses the space: adding a fault off
the selected path never changes the selection, so the only fault sets
that matter are chains in which each new fault lies on a currently
selected path — i.e. on an edge of the current selected tree.  The
overlay therefore recurses only on tree edges, visiting each *distinct*
reachable fault set once.

For ``f = 0`` the overlay of a consistent scheme is a single tree per
source (the classic BFS-tree fact the paper recalls in Section 2), and
Theorem 26 says the general overlay has
``O(n^{2 - 1/2^f} |S|^{1/2^f})`` edges — the benchmark
``bench_thm26_sv_preserver`` fits that exponent empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge


@dataclass
class Preserver:
    """A fault-tolerant distance preserver: an edge subset of ``G``.

    Attributes
    ----------
    graph:
        The graph it was built from.
    edges:
        The preserver's edge set (canonical undirected edges).
    sources:
        The source set ``S`` whose distances it protects.
    faults_tolerated:
        The ``f`` it was built for (``S x V`` sense; ``S x S``
        preservers from :func:`~repro.preservers.subset.ft_ss_preserver`
        tolerate one more fault between sources — Theorem 31).
    fault_sets_explored:
        Diagnostic: how many distinct fault sets the overlay visited.
    """

    graph: Graph
    edges: FrozenSet[Edge]
    sources: Tuple[int, ...]
    faults_tolerated: int
    fault_sets_explored: int = 0

    @property
    def size(self) -> int:
        """Number of edges — the quantity every theorem bounds."""
        return len(self.edges)

    def as_graph(self) -> Graph:
        """Materialise as a standalone :class:`Graph` (same vertex ids)."""
        sub = Graph(self.graph.n)
        for u, v in self.edges:
            sub.add_edge(u, v)
        return sub

    def density_vs(self, bound: float) -> float:
        """Measured size over a theoretical bound (for benchmark rows)."""
        return self.size / bound if bound else float("inf")


def ft_sv_preserver(scheme, sources: Iterable[int], f: int,
                    max_fault_sets: Optional[int] = None) -> Preserver:
    """Build the f-FT ``S x V`` preserver by overlay (Theorem 26).

    Parameters
    ----------
    scheme:
        A consistent stable f-RPTS exposing ``tree(source, faults)`` —
        in practice a :class:`~repro.core.scheme.RestorableTiebreaking`
        built with an f-fault (or stronger) ATW function.
    sources:
        The source set ``S``.
    f:
        Maximum number of simultaneous edge faults to protect against.
    max_fault_sets:
        Optional safety valve for experiments on large graphs: stop
        exploring after this many fault sets (the result is then a
        partial overlay; benchmarks that use it say so).

    Returns
    -------
    Preserver
        The union of all selected replacement paths
        ``pi(s, v | F), s ∈ S, v ∈ V, |F| <= f``.
    """
    if f < 0:
        raise GraphError(f"f must be >= 0, got {f}")
    source_list = sorted(set(sources))
    edges: Set[Edge] = set()
    explored = 0
    budget = max_fault_sets if max_fault_sets is not None else float("inf")

    for s in source_list:
        visited: Set[frozenset] = set()
        stack: List[frozenset] = [frozenset()]
        while stack:
            faults = stack.pop()
            if faults in visited:
                continue
            visited.add(faults)
            explored += 1
            if explored > budget:
                break
            tree = scheme.tree(s, faults)
            tree_edges = tree.edge_set()
            edges |= tree_edges
            if len(faults) < f:
                for e in tree_edges:
                    nxt = faults | {e}
                    if nxt not in visited:
                        stack.append(nxt)

    return Preserver(
        graph=scheme.graph,
        edges=frozenset(edges),
        sources=tuple(source_list),
        faults_tolerated=f,
        fault_sets_explored=explored,
    )
