"""Fault-tolerant distance preservers (Section 4.1 / 4.4).

* :mod:`repro.preservers.ft_bfs` — f-FT ``S x V`` preservers by
  overlaying all replacement paths selected by a consistent stable
  RPTS (Theorem 26): size ``O(n^{2-1/2^f} |S|^{1/2^f})``.
* :mod:`repro.preservers.subset` — (f+1)-FT ``S x S`` preservers from
  the same overlay when the scheme is (f+1)-restorable (Theorem 31).
* :mod:`repro.preservers.verification` — brute-force checkers of the
  preserver property (Definition 4).
"""

from repro.preservers.ft_bfs import Preserver, ft_sv_preserver
from repro.preservers.subset import ft_ss_preserver
from repro.preservers.verification import (
    preserver_violations,
    verify_preserver,
)

__all__ = [
    "Preserver",
    "ft_sv_preserver",
    "ft_ss_preserver",
    "preserver_violations",
    "verify_preserver",
]
