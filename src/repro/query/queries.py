"""Typed query objects — the value types of the declarative query API.

Each query kind is a frozen dataclass whose ``faults`` field is
canonicalized at construction (each edge sorted, the set sorted and
deduplicated), so two queries asking the same question compare equal,
hash equal, and land in the same planner group no matter how their
fault sets were spelled.  See :mod:`repro.query` for the full algebra
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.exceptions import QueryError
from repro.graphs.base import Edge
from repro.scenarios.enumerate import FaultSet, _canonical

__all__ = [
    "Query",
    "DistanceQuery",
    "PairQuery",
    "VectorQuery",
    "EccentricityQuery",
    "ConnectivityQuery",
    "RestorationQuery",
    "PreserverQuery",
    "MidpointQuery",
    "PairReport",
    "Provenance",
    "Answer",
]


class Query:
    """Common behaviour of every query kind (not itself a query).

    Subclasses are frozen dataclasses; this base canonicalizes the
    ``faults`` field in ``__post_init__`` (via ``object.__setattr__``,
    the frozen-dataclass idiom) and exposes it as :attr:`fault_key`,
    the grouping key of the :class:`~repro.query.planner.Planner`.
    """

    __slots__ = ()

    def __post_init__(self) -> None:
        try:
            key = _canonical(self.faults)
        except (TypeError, ValueError) as exc:
            raise QueryError(
                f"malformed fault set {self.faults!r} in "
                f"{type(self).__name__}: {exc}"
            ) from exc
        object.__setattr__(self, "faults", key)
        self._validate()

    def _validate(self) -> None:
        """Kind-specific structural checks (graph-free)."""

    @property
    def fault_key(self) -> FaultSet:
        """The canonical fault tuple — the planner's grouping key."""
        return self.faults


@dataclass(frozen=True)
class DistanceQuery(Query):
    """``dist_{G \\ F}(source, target)`` — answer value is an ``int``
    (``UNREACHABLE`` = -1 when the faults disconnect the pair)."""

    source: int
    target: int
    faults: FaultSet = ()
    weighted: Optional[bool] = None


@dataclass(frozen=True)
class PairQuery(Query):
    """A monitored pair's health under ``F`` — answer value is a
    :class:`PairReport` (fault-free baseline, replacement distance,
    stretch)."""

    source: int
    target: int
    faults: FaultSet = ()
    weighted: Optional[bool] = None


@dataclass(frozen=True)
class VectorQuery(Query):
    """The full distance vector from ``source`` in ``G \\ F`` — answer
    value is a dense **read-only** list (shared with the engine's
    caches; do not mutate), ``UNREACHABLE`` (-1) where cut off."""

    source: int
    faults: FaultSet = ()
    weighted: Optional[bool] = None


@dataclass(frozen=True)
class EccentricityQuery(Query):
    """``max_v dist_{G \\ F}(source, v)`` — answer value is an ``int``,
    ``UNREACHABLE`` (-1) when some vertex is unreachable from
    ``source`` (a max over missing distances would silently
    understate, so disconnection is surfaced in-band, unlike the
    raising contract of :func:`repro.spt.apsp.eccentricity`)."""

    source: int
    faults: FaultSet = ()
    weighted: Optional[bool] = None


@dataclass(frozen=True)
class ConnectivityQuery(Query):
    """Does ``G \\ F`` stay connected? — answer value is a ``bool``.
    The planner answers it from any distance vector its group already
    computed (undirected: one full row convicts or acquits the whole
    graph), so it usually rides along for free."""

    faults: FaultSet = ()
    weighted: Optional[bool] = None


@dataclass(frozen=True)
class RestorationQuery(Query):
    """Figure-1 style restoration instance: can the naive (``F' = ∅``)
    midpoint scan restore ``source ~> target`` around the single fault
    edge?  Answer value mirrors
    :meth:`~repro.scenarios.engine.ScenarioEngine.restoration_sweep`:
    ``(target_distance, RestorationResult | None)``, or ``None`` when
    the fault disconnects the pair.  Needs a scheme
    (``Session(scheme=...)`` or ``answer(..., scheme=...)``) and an
    unweighted engine."""

    source: int
    target: int
    faults: FaultSet = ()
    weighted: Optional[bool] = None

    def _validate(self) -> None:
        if len(self.faults) != 1:
            raise QueryError(
                f"RestorationQuery takes exactly one fault edge, got "
                f"{len(self.faults)}: {self.faults!r}"
            )

    @property
    def fault_edge(self) -> Edge:
        return self.faults[0]


@dataclass(frozen=True)
class PreserverQuery(Query):
    """Definition-4 preserver check of ``H ⊆ G`` under one fault set.

    ``edges`` spell the candidate preserver ``H`` and ``sources`` the
    source set ``S``; the answer value is a tuple of violation tuples
    ``(faults, s, t, dist_G, dist_H)`` — empty when ``H`` preserves
    every queried ``S x targets`` distance in ``G \\ F``.  A stream of
    these (one per scenario) is the algebra form of the old
    ``Session.preserver_violations`` facade: the planner batches
    queries sharing the same ``(edges, sources, targets)`` job into
    one engine sweep, so the whole stream pays one ``H`` snapshot.

    ``edges`` / ``sources`` / ``targets`` are canonicalized at
    construction like ``faults`` (sorted, deduplicated), so equal
    questions compare and hash equal.  Needs an unweighted engine.
    """

    edges: Tuple[Edge, ...] = ()
    sources: Tuple[int, ...] = ()
    faults: FaultSet = ()
    targets: Optional[Tuple[int, ...]] = None
    weighted: Optional[bool] = None

    def _validate(self) -> None:
        try:
            edges = tuple(sorted(
                {(u, v) if u <= v else (v, u) for u, v in self.edges}
            ))
            sources = tuple(sorted(set(self.sources)))
            targets = (None if self.targets is None
                       else tuple(sorted(set(self.targets))))
        except (TypeError, ValueError) as exc:
            raise QueryError(
                f"malformed PreserverQuery payload: {exc}"
            ) from exc
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "sources", sources)
        object.__setattr__(self, "targets", targets)


@dataclass(frozen=True)
class MidpointQuery(Query):
    """A midpoint restoration scan as a first-class query kind.

    The algebra form of the old ``Session.midpoint_scan`` facade:
    scan the scheme-selected ``source ~> target`` path for a midpoint
    whose detour avoids ``faults`` (optionally restricted to
    ``subset`` — see :func:`repro.core.restoration.midpoint_scan`).
    The answer value is exactly the core scan's result.  Needs a
    scheme (``Session(scheme=...)`` or ``answer(..., scheme=...)``)
    and an unweighted engine, like :class:`RestorationQuery`.
    """

    source: int
    target: int
    faults: FaultSet = ()
    subset: Tuple[Edge, ...] = ()
    weighted: Optional[bool] = None

    def _validate(self) -> None:
        try:
            subset = _canonical(self.subset)
        except (TypeError, ValueError) as exc:
            raise QueryError(
                f"malformed subset {self.subset!r} in MidpointQuery: "
                f"{exc}"
            ) from exc
        object.__setattr__(self, "subset", subset)


@dataclass(frozen=True)
class PairReport:
    """Value of a :class:`PairQuery`: the pair's health under ``F``."""

    base: int
    distance: int

    @property
    def disconnected(self) -> bool:
        return self.distance < 0

    @property
    def stretch(self) -> Optional[int]:
        """Extra distance the faults cost; ``None`` when disconnected."""
        return None if self.distance < 0 else self.distance - self.base


@dataclass(frozen=True)
class Provenance:
    """How an :class:`Answer` was produced.

    ``source`` is one of:

    * ``"cache"`` — served without traversing (pair memo, cached
      distance vector, or fault-free base vectors); ``detail`` names
      which cache.
    * ``"filter"`` — the touch filter proved the fault set off every
      shortest path, so the base distance was returned in O(|F|).
    * ``"delta"`` — the fault set's orphaned region was small, so the
      answer was *patched* from the base vector by a repair kernel
      (:mod:`repro.incremental`) instead of re-traversing; ``kernel``
      names the repair kernel, ``side`` the patched origin's side for
      pair-type queries.
    * ``"wave"`` — computed by a batched kernel call in this gather;
      ``kernel`` names it, ``wave_size`` counts the sources the wave
      served, and ``side`` records the waved side (``"source"`` /
      ``"target"``) for pair-type queries.

    ``backend`` names the kernel backend (:mod:`repro.backends` —
    ``"pyloops"`` or ``"vectorized"``) that served a ``"wave"`` or
    ``"delta"`` answer; cache and filter answers ran no kernel, so it
    stays ``None``.

    ``worker`` names the fleet worker (:mod:`repro.fleet`) whose
    engine produced the answer; answers served by a plain in-process
    :class:`~repro.query.session.Session` leave it ``None``.

    ``coalesced`` is stamped by the scenario service
    (:mod:`repro.service`): the number of queries — across *all*
    connected clients — that shared this answer's canonical fault set
    in the micro-batch it rode, so a value above 1 means concurrent
    clients split the cost of one masked wave.  Answers served
    in-process leave it 0.
    """

    source: str
    detail: str = ""
    kernel: Optional[str] = None
    side: Optional[str] = None
    wave_size: int = 0
    backend: Optional[str] = None
    worker: Optional[str] = None
    coalesced: int = 0


@dataclass(frozen=True)
class Answer:
    """One query's typed result: the query, its value, its provenance."""

    query: Query
    value: Any
    provenance: Provenance

    @property
    def cached(self) -> bool:
        return self.provenance.source == "cache"

    @property
    def waved(self) -> bool:
        return self.provenance.source == "wave"

    @property
    def patched(self) -> bool:
        return self.provenance.source == "delta"
