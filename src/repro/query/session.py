"""The :class:`Session` facade — the library's single query entry point.

A session owns one :class:`~repro.scenarios.engine.ScenarioEngine`
(built from a graph, or adopted) and one
:class:`~repro.query.planner.Planner`, and exposes three ways in:

* **streaming** — :meth:`Session.submit` queues typed queries,
  :meth:`Session.gather` plans and answers everything queued, in
  submission order;
* **one-shot** — :meth:`Session.answer` plans and answers an iterable
  directly (the queue is untouched);
* **async** — :meth:`Session.answer_async` awaits the same result
  from an :mod:`asyncio` event loop (the plan runs on the session's
  single worker thread, keeping the loop responsive).  For a *served*
  session — many event-loop clients sharing one backend over a socket
  — use :meth:`repro.service.client.ServiceClient.answer_async`
  instead, which coalesces concurrent clients' queries into shared
  waves server-side.

The Definition-4 preserver check and the midpoint scan remain
available as facade methods for compatibility, but both now route
through the typed algebra (:class:`~repro.query.queries.PreserverQuery`
/ :class:`~repro.query.queries.MidpointQuery`), so the stats, cache
counters, and the service wire format see one uniform query surface.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import obs as _obs
from repro.exceptions import GraphError, QueryError
from repro.graphs.base import Edge
from repro.query.planner import Plan, Planner
from repro.query.queries import (Answer, MidpointQuery, PreserverQuery,
                                 Query)
from repro.scenarios.engine import CacheInfo, ScenarioEngine

__all__ = ["Session", "SessionStats"]


@dataclass
class SessionStats:
    """Running totals of what a session has served, by provenance.

    ``by_backend`` splits the kernel-served answers (``wave`` and
    ``delta``) by which kernel backend (:mod:`repro.backends`) ran
    them — e.g. ``{"pyloops": 12, "vectorized": 340}``.  ``by_worker``
    splits answers by the fleet worker (:mod:`repro.fleet`) whose
    engine produced them; a plain in-process session leaves it empty.
    """

    answers: int = 0
    gathers: int = 0
    waves: int = 0
    cache: int = 0
    filter: int = 0
    delta: int = 0
    wave: int = 0
    by_backend: Dict[str, int] = field(default_factory=dict)
    by_worker: Dict[str, int] = field(default_factory=dict)

    def record(self, plan: Plan, answers: List[Answer]) -> None:
        self.record_answers(answers, waves=plan.waves)

    def record_answers(self, answers: Iterable[Answer],
                       waves: int = 0) -> None:
        """Book one gather's worth of answers without a plan object.

        The plan-free form exists for consumers on the far side of a
        wire — the scenario service's per-client ledgers and
        :class:`~repro.service.client.ServiceClient` — which hold
        typed answers but never see the plan that produced them.
        ``waves`` is the batch's kernel-call count (0 when unknown).
        """
        self.gathers += 1
        self.waves += waves
        for a in answers:
            self.answers += 1
            kind = a.provenance.source
            if kind == "cache":
                self.cache += 1
            elif kind == "filter":
                self.filter += 1
            elif kind == "delta":
                self.delta += 1
            else:
                self.wave += 1
            served_by = a.provenance.backend
            if served_by is not None:
                self.by_backend[served_by] = (
                    self.by_backend.get(served_by, 0) + 1)
            worker = a.provenance.worker
            if worker is not None:
                self.by_worker[worker] = (
                    self.by_worker.get(worker, 0) + 1)
        if _obs.ENABLED:
            _obs.inc("repro_session_gathers_total")
            _obs.inc("repro_session_waves_total", waves)

    def publish(self, **labels: Any) -> None:
        """Mirror these totals into the obs registry as gauges.

        The stats plane's half of the thin-view contract (see
        :meth:`repro.scenarios.engine.CacheInfo.publish`): booking
        stays plain-int cheap per gather, and a snapshot point — the
        service ``stats`` verb, the exporters — re-publishes the
        ledger.  ``labels`` distinguish ledgers (e.g. per-client).
        No-op while :mod:`repro.obs` is disabled.
        """
        if not _obs.ENABLED:
            return
        for name in ("answers", "gathers", "waves", "cache", "filter",
                     "delta", "wave"):
            _obs.set_gauge(f"repro_session_{name}",
                           float(getattr(self, name)), **labels)
        for backend, count in self.by_backend.items():
            _obs.set_gauge("repro_session_by_backend", float(count),
                           backend=backend, **labels)
        for worker, count in self.by_worker.items():
            _obs.set_gauge("repro_session_by_worker", float(count),
                           worker=worker, **labels)

    @classmethod
    def merge(cls, stats: Iterable["SessionStats"]) -> "SessionStats":
        """Aggregate many sessions' totals into one fresh snapshot.

        Counters sum; the ``by_backend`` / ``by_worker`` tallies merge
        by name.  This is how a :class:`~repro.fleet.session.FleetSession`
        folds its per-worker session stats into one report, and it is
        equally useful for aggregating independent sessions (e.g. one
        per thread) into a deployment-wide view.
        """
        merged = cls()
        for st in stats:
            merged.answers += st.answers
            merged.gathers += st.gathers
            merged.waves += st.waves
            merged.cache += st.cache
            merged.filter += st.filter
            merged.delta += st.delta
            merged.wave += st.wave
            for name, count in st.by_backend.items():
                merged.by_backend[name] = (
                    merged.by_backend.get(name, 0) + count)
            for name, count in st.by_worker.items():
                merged.by_worker[name] = (
                    merged.by_worker.get(name, 0) + count)
        return merged


class Session:
    """Facade over engine + planner: submit typed queries, gather answers.

    Parameters
    ----------
    graph:
        The base graph (anything :class:`ScenarioEngine` accepts).
        Omit it when adopting an existing ``engine``.
    engine:
        An existing engine to adopt instead of building one — a
        consumer already holding a warm engine pays nothing extra.
    scheme:
        Default tiebreaking scheme for
        :class:`~repro.query.queries.RestorationQuery` streams
        (overridable per :meth:`answer` call).
    memoize:
        LRU capacity for a freshly built engine (see
        :class:`ScenarioEngine`).
    delta:
        Incremental-delta strategy for a freshly built engine (see
        :class:`ScenarioEngine`; ignored when adopting an ``engine``,
        whose own setting governs).

    Example
    -------
    >>> from repro.graphs import generators
    >>> from repro.query import DistanceQuery, Session
    >>> session = Session(generators.grid(4, 4))
    >>> session.submit(DistanceQuery(0, 15, faults=[(0, 1)]))
    >>> [a.value for a in session.gather()]
    [6]
    """

    def __init__(self, graph=None, *, engine: Optional[ScenarioEngine] = None,
                 scheme=None, memoize: int = 4096, delta: bool = True):
        if engine is None:
            if graph is None:
                raise QueryError("Session needs a graph or an engine")
            engine = ScenarioEngine(graph, memoize=memoize, delta=delta)
        elif graph is not None and engine.graph is not graph:
            raise QueryError(
                "engine was built over a different graph; pass one or "
                "the other, not a mismatched pair"
            )
        self.engine = engine
        self.scheme = scheme
        self.planner = Planner(engine)
        self.stats = SessionStats()
        self._pending: List[Query] = []
        # Gathers serialize on this lock: the engine's LRU and the
        # session counters are not thread-safe, and answer_async runs
        # plans in executor threads — overlapping gathers from one
        # event loop must not interleave engine mutations.
        self._gather_lock = threading.Lock()
        # Lazily created single-thread executor for answer_async.
        # Gathers serialize on the lock anyway, so one worker thread
        # is the whole truth of the session's concurrency: N pending
        # answer_async calls queue N closures on one thread instead of
        # parking N default-executor threads on the gather lock.
        self._async_executor: Optional[ThreadPoolExecutor] = None
        self._async_lock = threading.Lock()

    @classmethod
    def adopt(cls, graph, engine: Optional[ScenarioEngine] = None,
              session: Optional["Session"] = None) -> "Session":
        """Resolve the consumer idiom "optional engine or session".

        The one implementation of the adoption contract shared by
        ``SourcewiseDSO``, ``restoration_success_rate`` and
        ``subset_replacement_paths``: reuse a passed session, wrap a
        passed engine, or build fresh — raising
        :class:`~repro.exceptions.GraphError` (the pre-PR-4 contract
        of those consumers) when the passed component was built over a
        different graph, or when both are passed and disagree.
        """
        if session is not None:
            if session.graph is not graph:
                raise GraphError(
                    "session was built over a different graph"
                )
            if engine is not None and engine is not session.engine:
                raise GraphError(
                    "pass engine or session, not a disagreeing pair"
                )
            return session
        if engine is not None:
            if engine.graph is not graph:
                raise GraphError(
                    "engine was built over a different graph"
                )
            return cls(engine=engine)
        return cls(graph)

    # ------------------------------------------------------------------
    # the declarative surface
    # ------------------------------------------------------------------
    @property
    def graph(self):
        return self.engine.graph

    @property
    def pending(self) -> int:
        """Queries submitted but not yet gathered."""
        return len(self._pending)

    def submit(self, *queries) -> "Session":
        """Queue queries (each argument a :class:`Query` or an iterable
        of them) for the next :meth:`gather`.  Returns ``self`` so
        submits chain.

        All-or-nothing: arguments are staged before the queue is
        touched, so an iterable that raises mid-way leaves nothing
        half-submitted for the next gather to mis-answer.
        """
        staged: List[Query] = []
        for q in queries:
            if isinstance(q, Query):
                staged.append(q)
                continue
            try:
                items = iter(q)
            except TypeError:
                raise QueryError(
                    f"submit() takes queries or iterables of "
                    f"queries, got {q!r}"
                ) from None
            # Errors raised while *consuming* the iterable (a buggy
            # generator body) propagate unchanged — they are the
            # caller's bug, not a submit() usage error.
            staged.extend(items)
        self._pending.extend(staged)
        return self

    def gather(self, scheme=None) -> List[Answer]:
        """Plan and answer everything queued, in submission order.

        The queue is drained even when planning fails, so one
        malformed stream cannot poison the next gather.
        """
        batch, self._pending = self._pending, []
        return self._run(batch, scheme)

    def answer(self, queries: Iterable[Query], scheme=None) -> List[Answer]:
        """One-shot: plan and answer ``queries`` (queue untouched)."""
        return self._run(list(queries), scheme)

    def answer_one(self, query: Query, scheme=None) -> Answer:
        """Convenience: answer a single query."""
        return self._run([query], scheme)[0]

    async def answer_async(self, queries: Iterable[Query],
                           scheme=None) -> List[Answer]:
        """Awaitable :meth:`answer` for asyncio consumers.

        The plan runs on the session's own single worker thread
        (created on first use, shut down by :meth:`close`), so the
        loop stays free to accept other work while the kernels sweep.
        Gathers serialize on an internal lock regardless, so one
        worker thread *is* the session's true concurrency: N pending
        ``answer_async`` calls queue N closures on that thread rather
        than parking N event-loop executor threads on the lock, which
        is what the pre-PR-9 default-executor path did.

        This is the right call for a single asyncio consumer sharing
        a process with its session.  A *served* deployment — many
        clients, one shared backend — should use
        :meth:`repro.service.client.ServiceClient.answer_async`,
        which additionally coalesces concurrent clients' queries into
        shared waves server-side.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor(),
            functools.partial(self.answer, list(queries), scheme),
        )

    def _executor(self) -> ThreadPoolExecutor:
        with self._async_lock:
            if self._async_executor is None:
                self._async_executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix="repro-session",
                )
            return self._async_executor

    def close(self) -> None:
        """Release the session's worker thread (idempotent).

        Only needed when :meth:`answer_async` was used; synchronous
        sessions hold no threads.  Pending async answers finish first.
        """
        with self._async_lock:
            executor, self._async_executor = self._async_executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def _run(self, queries: List[Query], scheme) -> List[Answer]:
        plan = self.planner.plan(queries)
        with self._gather_lock:
            answers = self.planner.execute(
                plan, scheme=scheme if scheme is not None else self.scheme
            )
            self.stats.record(plan, answers)
        return answers

    # ------------------------------------------------------------------
    # batch facades (compatibility spellings of algebra query kinds)
    # ------------------------------------------------------------------
    def preserver_violations(self, preserver_edges: Iterable[Edge],
                             sources: Iterable[int],
                             scenarios: Iterable[Iterable[Edge]],
                             targets: Optional[Iterable[int]] = None
                             ) -> List[Tuple]:
        """Definition-4 check of ``H ⊆ G`` over a scenario stream.

        A compatibility spelling of a
        :class:`~repro.query.queries.PreserverQuery` stream (one query
        per scenario); same output shape and order as
        :meth:`ScenarioEngine.preserver_violations`.
        """
        edges = tuple(preserver_edges)
        srcs = tuple(sources)
        tgts = None if targets is None else tuple(targets)
        answers = self.answer([
            PreserverQuery(edges=edges, sources=srcs, faults=tuple(sc),
                           targets=tgts)
            for sc in scenarios
        ])
        return [v for a in answers for v in a.value]

    def midpoint_scan(self, scheme, s: int, t: int,
                      faults: Iterable[Edge], subset: Iterable[Edge] = ()):
        """Midpoint restoration scan with the engine's cached tree
        indices — a compatibility spelling of a
        :class:`~repro.query.queries.MidpointQuery` (see
        :meth:`ScenarioEngine.midpoint_scan` for semantics)."""
        answer = self.answer_one(
            MidpointQuery(s, t, faults=tuple(faults),
                          subset=tuple(subset)),
            scheme=scheme,
        )
        return answer.value

    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """The engine's cache counters (frozen snapshot)."""
        return self.engine.cache_info()

    def __repr__(self) -> str:
        st = self.stats
        return (
            f"Session(n={self.engine.csr.n}, m={self.engine.csr.m}, "
            f"weighted={self.engine.weighted}, answers={st.answers} "
            f"({st.cache}c/{st.filter}f/{st.delta}d/{st.wave}w in "
            f"{st.waves} waves), "
            f"pending={len(self._pending)})"
        )
