"""The batching planner: a mixed query stream → grouped kernel calls.

The :class:`Planner` takes an arbitrary mix of typed queries (see
:mod:`repro.query.queries`), validates the stream *before any kernel
runs* (mixed weightedness, unknown vertices, unservable kinds all
raise :class:`~repro.exceptions.QueryError`), groups it by canonical
fault set, and serves each group with **one** batched multi-source
wave — after the engine's cheaper layers (pair memo, vector cache,
touch filter, and since PR 5 the incremental-delta patch: wave starts
whose orphaned region is small are served by
:meth:`~repro.scenarios.engine.ScenarioEngine.try_delta` and tagged
with ``"delta"`` provenance) have answered everything they can.

Side choice (the ROADMAP's target-side batching): within a group the
distance/pair queries could be waved from their sources *or* — since
distances are symmetric on an undirected graph with symmetric weights
— from their targets.  The cost model is the number of distinct
vertices a wave would have to start from: vector/eccentricity queries
pin their sources into the wave either way, so

    cost(side) = | {side vertex of each pair query} ∪ {pinned sources} |

and the planner waves the cheaper side (ties go to the source side;
an engine over an antisymmetric weighted snapshot never flips).  The
choice is recorded on the :class:`PlanGroup` so tests and benches can
audit it.

Plan first, execute second: :meth:`Planner.plan` is pure (no engine
counters move), so a plan can be inspected — group count, chosen
sides, estimated wave costs — before :meth:`Planner.execute` touches
any cache or kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import obs as _obs
from repro.exceptions import QueryError
from repro.query.queries import (
    Answer,
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    MidpointQuery,
    PairQuery,
    PairReport,
    PreserverQuery,
    Provenance,
    Query,
    RestorationQuery,
    VectorQuery,
)
from repro.scenarios.enumerate import FaultSet
from repro.spt.bfs import UNREACHABLE

__all__ = ["Planner", "Plan", "PlanGroup"]

_PAIR_KINDS = (DistanceQuery, PairQuery)
_VECTOR_KINDS = (VectorQuery, EccentricityQuery)


@dataclass
class PlanGroup:
    """One fault set's slice of the stream, plus the planned wave.

    ``cost_source`` / ``cost_target`` are the planner's *estimates*
    (distinct wave starts, cache-agnostic — the caches are consulted
    at execute time); ``wave_size`` is filled in by
    :meth:`Planner.execute` with the number of sources the group's
    wave actually traversed (0 when every query was served by a
    cache or the touch filter).
    """

    fault_key: FaultSet
    indices: List[int]
    side: str  # "source" | "target"
    cost_source: int
    cost_target: int
    wave_size: int = 0


@dataclass
class Plan:
    """A validated, grouped, side-chosen query stream, ready to run."""

    queries: List[Query]
    groups: List[PlanGroup] = field(default_factory=list)
    restoration: List[int] = field(default_factory=list)
    preserver: List[int] = field(default_factory=list)
    midpoint: List[int] = field(default_factory=list)
    waves: int = 0  # filled by execute(): kernel calls actually made

    def __len__(self) -> int:
        return len(self.queries)


class Planner:
    """Groups a mixed query stream and dispatches batched kernels.

    Parameters
    ----------
    engine:
        The :class:`~repro.scenarios.engine.ScenarioEngine` whose
        snapshot, caches and kernels serve the plans.  The planner
        only uses the engine's *kernel layer* (``source_vectors``,
        ``peek_pair`` / ``peek_vector`` / ``store_pair``,
        ``faults_touch_pair``, ``base_distances``,
        ``restoration_sweep``) — never the deprecated per-call query
        methods it replaces.
    """

    def __init__(self, engine):
        self.engine = engine

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, queries: Iterable[Query]) -> Plan:
        """Validate and group ``queries``; no engine state is touched.

        Raises :class:`~repro.exceptions.QueryError` on a malformed
        stream: anything that is not a :class:`Query`, an unknown
        vertex, mixed ``weighted=`` declarations, a declaration that
        contradicts the engine, or a restoration query against a
        weighted engine.
        """
        engine = self.engine
        items = list(queries)
        declared: Dict[bool, Query] = {}
        for q in items:
            if not isinstance(q, Query) or type(q) is Query:
                raise QueryError(
                    f"not a query object: {q!r} (use the typed query "
                    f"classes from repro.query)"
                )
            if q.weighted is not None:
                declared.setdefault(bool(q.weighted), q)
        if len(declared) > 1:
            raise QueryError(
                "mixed weighted and unweighted queries in one stream: "
                f"{declared[True]!r} vs {declared[False]!r}"
            )
        if declared:
            want = next(iter(declared))
            if want != engine.weighted:
                mode = "weighted" if engine.weighted else "unweighted"
                raise QueryError(
                    f"stream declares weighted={want} but the session "
                    f"engine is {mode}; serving it would silently use "
                    f"the wrong kernels"
                )
        has_vertex = engine.csr.has_vertex
        plan = Plan(queries=items)
        groups: "OrderedDict[FaultSet, List[int]]" = OrderedDict()
        seen_fault_keys = set()
        for i, q in enumerate(items):
            for attr in ("source", "target"):
                v = getattr(q, attr, None)
                if v is not None and not has_vertex(v):
                    raise QueryError(
                        f"unknown {attr} vertex {v} in {q!r}"
                    )
            if q.fault_key not in seen_fault_keys:
                seen_fault_keys.add(q.fault_key)
                # Fault edges between existing vertices that are not
                # present are tolerated (removing nothing, like
                # ``without()``), but an out-of-range endpoint is a
                # caller typo that would otherwise silently read as
                # "touches nothing" — surface it before any kernel.
                for u, v in q.fault_key:
                    if not (has_vertex(u) and has_vertex(v)):
                        raise QueryError(
                            f"fault edge ({u}, {v}) references an "
                            f"unknown vertex in {q!r}"
                        )
            if isinstance(q, RestorationQuery):
                if engine.weighted:
                    raise QueryError(
                        "RestorationQuery runs on hop distances and "
                        "tiebreaking schemes; the session engine is "
                        "weighted"
                    )
                plan.restoration.append(i)
                continue
            if isinstance(q, PreserverQuery):
                if engine.weighted:
                    raise QueryError(
                        "PreserverQuery checks hop-distance "
                        "preservation; the session engine is weighted"
                    )
                for label, vertices in (("source", q.sources),
                                        ("target", q.targets or ()),
                                        ("edge", [v for e in q.edges
                                                  for v in e])):
                    for v in vertices:
                        if not has_vertex(v):
                            raise QueryError(
                                f"unknown {label} vertex {v} in {q!r}"
                            )
                plan.preserver.append(i)
                continue
            if isinstance(q, MidpointQuery):
                if engine.weighted:
                    raise QueryError(
                        "MidpointQuery runs on hop distances and "
                        "tiebreaking schemes; the session engine is "
                        "weighted"
                    )
                plan.midpoint.append(i)
                continue
            groups.setdefault(q.fault_key, []).append(i)
        flip_ok = engine.symmetric_weights
        for fault_key, idxs in groups.items():
            pinned = {
                items[i].source for i in idxs
                if isinstance(items[i], _VECTOR_KINDS)
            }
            pairs = [items[i] for i in idxs
                     if isinstance(items[i], _PAIR_KINDS)]
            cost_source = len(pinned | {q.source for q in pairs})
            cost_target = len(pinned | {q.target for q in pairs})
            side = (
                "target"
                if pairs and flip_ok and cost_target < cost_source
                else "source"
            )
            plan.groups.append(PlanGroup(
                fault_key=fault_key, indices=idxs, side=side,
                cost_source=cost_source, cost_target=cost_target,
            ))
        return plan

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, plan: Plan, scheme=None) -> List[Answer]:
        """Run a plan: one batched kernel call per group that needs one.

        Answers align with the planned stream's order.  ``scheme`` is
        required iff the plan contains restoration queries.
        """
        if plan.restoration or plan.midpoint:
            # Scheme problems surface before ANY kernel runs (the
            # QueryError contract), not after the other groups' waves
            # have already mutated the engine caches.
            self._check_restoration_scheme(scheme)
        answers: List[Optional[Answer]] = [None] * len(plan.queries)
        plan.waves = 0
        with _obs.span("planner.execute", queries=len(plan.queries),
                       groups=len(plan.groups)):
            for group in plan.groups:
                self._execute_group(plan, group, answers)
            if plan.restoration:
                self._execute_restoration(plan, answers, scheme)
            if plan.preserver:
                self._execute_preserver(plan, answers)
            if plan.midpoint:
                self._execute_midpoint(plan, answers, scheme)
        if _obs.ENABLED:
            self._record_plan(plan, answers)
        return answers  # type: ignore[return-value]

    def run(self, queries: Iterable[Query], scheme=None) -> List[Answer]:
        """:meth:`plan` + :meth:`execute` in one call."""
        return self.execute(self.plan(queries), scheme=scheme)

    @staticmethod
    def _record_plan(plan: Plan,
                     answers: List[Optional[Answer]]) -> None:
        """The planner's observability seam: group sizes and the
        provenance mix, recorded once per executed plan (never inside
        the group loop's cache probes)."""
        _obs.inc("repro_plans_total")
        _obs.inc("repro_plan_waves_total", plan.waves)
        for group in plan.groups:
            _obs.observe("repro_plan_group_size",
                         float(len(group.indices)), side=group.side)
        # Tally locally, then one registry touch per provenance kind —
        # a per-answer inc would pay a label lookup per query and
        # dominate the enabled-overhead budget on large streams.
        tally: Dict[str, int] = {}
        for answer in answers:
            if answer is not None:
                source = answer.provenance.source
                tally[source] = tally.get(source, 0) + 1
        for source, count in tally.items():
            _obs.inc("repro_answers_total", count, provenance=source)

    # ------------------------------------------------------------------
    def _pair_value(self, query: Query, dist: int):
        """Wrap a scalar distance in the query kind's value type."""
        if isinstance(query, PairQuery):
            base = self.engine.base_distances(query.source)[query.target]
            return PairReport(base=base, distance=dist)
        return dist

    def _execute_group(self, plan: Plan, group: PlanGroup,
                       answers: List[Optional[Answer]]) -> None:
        engine = self.engine
        fault_key = group.fault_key
        flip = group.side == "target"
        kernel = ("csr_weighted_distances_many" if engine.weighted
                  else "csr_bfs_distances_many")
        queries = plan.queries
        # Phase 1: the cheap layers — pair memo, vector cache, touch
        # filter — answer what they can; the rest joins the wave.
        pending: List[int] = []          # query indices awaiting the wave
        wave: "OrderedDict[int, None]" = OrderedDict()  # dedup, ordered
        conn: List[int] = []             # connectivity queries, deferred
        conn_vector = None               # any cached vector, for them
        for i in group.indices:
            q = queries[i]
            if isinstance(q, ConnectivityQuery):
                conn.append(i)
                continue
            if isinstance(q, _PAIR_KINDS):
                dist = engine.peek_pair(q.source, q.target, fault_key)
                if dist is not None:
                    answers[i] = Answer(q, self._pair_value(q, dist),
                                        Provenance("cache", "pair-memo"))
                    continue
                served = False
                for origin, other in (
                    ((q.source, q.target),)
                    if not engine.symmetric_weights else
                    ((q.source, q.target), (q.target, q.source))
                ):
                    vec = engine.peek_vector(origin, fault_key)
                    if vec is not None:
                        dist = vec[other]
                        engine.store_pair(q.source, q.target,
                                          fault_key, dist)
                        answers[i] = Answer(
                            q, self._pair_value(q, dist),
                            Provenance("cache", "vector-cache"),
                        )
                        if conn_vector is None:
                            conn_vector = vec
                        served = True
                        break
                if served:
                    continue
                if not engine.faults_touch_pair(q.source, q.target,
                                                fault_key):
                    dist = engine.base_distances(q.source)[q.target]
                    engine.store_pair(q.source, q.target, fault_key, dist)
                    answers[i] = Answer(
                        q, self._pair_value(q, dist),
                        Provenance("filter", "touch-filter"),
                    )
                    continue
                pending.append(i)
                wave[q.target if flip else q.source] = None
                continue
            # VectorQuery / EccentricityQuery
            vec = engine.peek_vector(q.source, fault_key)
            if vec is not None:
                answers[i] = Answer(q, self._vector_value(q, vec),
                                    Provenance("cache", "vector-cache"))
                if conn_vector is None:
                    conn_vector = vec
                continue
            pending.append(i)
            wave[q.source] = None
        if conn and not wave and conn_vector is None:
            # Nothing else forces a traversal: connectivity can ride
            # ANY cached vector under this fault set (undirected: one
            # full row convicts or acquits the whole graph); only a
            # fully cold fault set pays a wave of its own.
            cached = (engine.peek_any_vector(fault_key)
                      if engine.csr.n else None)
            if cached is not None:
                conn_vector = cached
            elif engine.csr.n:
                wave[0] = None
        # Phase 1.5: the delta path — wave starts whose orphaned
        # region the engine's cost model deems small are patched from
        # the base vectors instead of traversed (the vector lands in
        # the LRU either way); what the patch cannot serve stays in
        # the wave.
        rows: Dict[int, List[int]] = {}
        delta_rows: Dict[int, Optional[str]] = {}
        if wave and fault_key and getattr(engine, "delta_enabled", False):
            batch_hint = len(wave)
            for origin in list(wave):
                vec = engine.try_delta(origin, fault_key,
                                       batch_hint=batch_hint)
                if vec is not None:
                    rows[origin] = vec
                    # Which kernel backend patched this origin — the
                    # engine records it per repair call.
                    delta_rows[origin] = getattr(
                        engine, "last_repair_backend", None)
                    del wave[origin]
        # Phase 2: one batched multi-source wave serves every pending
        # query (and populates the vector cache for later gathers).
        if wave:
            batch = list(wave)
            # try_delta=False: the delta offers already ran above (the
            # planner needs per-source attribution for provenance);
            # re-offering here would re-estimate and double-count.
            vectors = engine.source_vectors(batch, fault_key,
                                            try_delta=False)
            rows.update(zip(batch, vectors))
            group.wave_size = len(batch)
            plan.waves += 1
        wave_of = Provenance(
            "wave", "masked-wave", kernel=kernel,
            side=group.side, wave_size=group.wave_size,
            backend=(engine.wave_backend(group.wave_size)
                     if group.wave_size else None),
        )
        repair_kernel = ("csr_dijkstra_repair" if engine.weighted
                         else "csr_bfs_repair")
        # One Provenance per patched origin: backends dispatch on the
        # orphaned-region size, so origins in the same group may have
        # been served by different backends.
        delta_of = {
            origin: Provenance("delta", "patched-region",
                               kernel=repair_kernel, side=group.side,
                               backend=served_by)
            for origin, served_by in delta_rows.items()
        }
        for i in pending:
            q = queries[i]
            if isinstance(q, _PAIR_KINDS):
                origin = q.target if flip else q.source
                dist = rows[origin][q.source if flip else q.target]
                engine.store_pair(q.source, q.target, fault_key, dist)
                answers[i] = Answer(
                    q, self._pair_value(q, dist),
                    delta_of.get(origin, wave_of),
                )
            else:
                answers[i] = Answer(
                    q, self._vector_value(q, rows[q.source]),
                    delta_of.get(q.source, wave_of),
                )
        for i in conn:
            q = queries[i]
            if engine.csr.n == 0:
                answers[i] = Answer(q, True, Provenance("filter", "empty"))
                continue
            if rows:
                origin, vec = next(iter(rows.items()))
                answers[i] = Answer(
                    q, UNREACHABLE not in vec,
                    delta_of.get(origin, wave_of),
                )
            else:
                answers[i] = Answer(q, UNREACHABLE not in conn_vector,
                                    Provenance("cache", "vector-cache"))

    @staticmethod
    def _vector_value(query: Query, vec: List[int]):
        if isinstance(query, EccentricityQuery):
            return UNREACHABLE if UNREACHABLE in vec else max(vec)
        return vec

    def _check_restoration_scheme(self, scheme) -> None:
        if scheme is None:
            raise QueryError(
                "RestorationQuery/MidpointQuery needs a scheme: pass "
                "one to Session(scheme=...) or answer(..., scheme=...)"
            )
        scheme_graph = getattr(scheme, "graph", None)
        if scheme_graph is None or scheme_graph is self.engine.graph:
            return
        # Identity is the fast path; structural equality is what the
        # contract actually needs, and it is what a scheme that crossed
        # a pickle boundary (fleet shard, service payload) can offer —
        # its graph is a faithful copy, never the same object.
        if scheme_graph != self.engine.graph:
            raise QueryError(
                "scheme and session engine must share the same base "
                "graph (engine caches would silently answer for the "
                "wrong graph)"
            )

    def _execute_restoration(self, plan: Plan,
                             answers: List[Optional[Answer]],
                             scheme) -> None:
        engine = self.engine
        instances = [
            (plan.queries[i].source, plan.queries[i].target,
             plan.queries[i].fault_edge)
            for i in plan.restoration
        ]
        results = engine.restoration_sweep(scheme, instances)
        plan.waves += 1
        prov = Provenance("wave", "restoration-sweep",
                          kernel="restoration_sweep",
                          wave_size=len(instances))
        for i, res in zip(plan.restoration, results):
            answers[i] = Answer(plan.queries[i], res.value, prov)

    def _execute_preserver(self, plan: Plan,
                           answers: List[Optional[Answer]]) -> None:
        """One engine sweep per distinct ``(edges, sources, targets)``
        job: all fault sets of a job ride the same ``H`` snapshot, so
        a scenario stream pays the subgraph build exactly once."""
        engine = self.engine
        jobs: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for i in plan.preserver:
            q = plan.queries[i]
            jobs.setdefault((q.edges, q.sources, q.targets),
                            []).append(i)
        for (edges, sources, targets), idxs in jobs.items():
            fault_keys = list(dict.fromkeys(
                plan.queries[i].fault_key for i in idxs
            ))
            flat = engine.preserver_violations(
                edges, sources, fault_keys, targets
            )
            by_key: Dict[Any, List[Tuple]] = {k: [] for k in fault_keys}
            for violation in flat:
                by_key[violation[0]].append(violation)
            # One wave per scenario per graph side (G \ F and H \ F).
            plan.waves += len(fault_keys)
            prov = Provenance(
                "wave", "preserver-sweep",
                kernel="csr_bfs_distances_many",
                wave_size=len(sources),
            )
            for i in idxs:
                q = plan.queries[i]
                answers[i] = Answer(q, tuple(by_key[q.fault_key]), prov)

    def _execute_midpoint(self, plan: Plan,
                          answers: List[Optional[Answer]],
                          scheme) -> None:
        engine = self.engine
        prov = Provenance("wave", "midpoint-scan",
                          kernel="midpoint_scan",
                          wave_size=len(plan.midpoint))
        for i in plan.midpoint:
            q = plan.queries[i]
            result = engine.midpoint_scan(
                scheme, q.source, q.target, q.faults, q.subset
            )
            answers[i] = Answer(q, result, prov)
        # Consecutive scans share the engine's cached tree indices;
        # book the batch as one unit of kernel work.
        plan.waves += 1
