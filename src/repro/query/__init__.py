"""Declarative query API: typed queries, a batching planner, a session.

The paper's workload is *one base graph, many fault sets, many
questions*.  This package is the single public entry point for the
"many questions" part: callers describe **what** they want as typed
query objects and a :class:`Planner` — not each caller — decides
**which** batched kernel serves which queries.

The query algebra
-----------------
Eight frozen-dataclass query kinds, all carrying a fault set:

=========================  ============================================
:class:`DistanceQuery`     ``dist_{G \\ F}(s, t)`` → ``int``
:class:`PairQuery`         pair health → :class:`PairReport`
                           (base, replacement distance, stretch)
:class:`VectorQuery`       full vector from ``s`` in ``G \\ F`` →
                           read-only ``list``
:class:`EccentricityQuery` ``max_v dist_{G \\ F}(s, v)`` → ``int``
:class:`ConnectivityQuery` is ``G \\ F`` connected? → ``bool``
:class:`RestorationQuery`  Figure-1 midpoint-scan instance (needs a
                           scheme) → ``(target, result | None)`` or
                           ``None``
:class:`PreserverQuery`    Definition-4 check of ``H ⊆ G`` under one
                           fault set → tuple of violation tuples
:class:`MidpointQuery`     midpoint restoration scan (needs a scheme)
                           → the core scan's result
=========================  ============================================

The contract:

* **Canonical fault keys.**  ``faults`` is canonicalized at
  construction (edges sorted, set sorted, duplicates dropped): two
  queries asking the same question are equal, hashable, and share a
  planner group regardless of spelling.
* **Order.**  Answers align with the submitted stream, one typed
  :class:`Answer` per query, each tagged with :class:`Provenance`
  (``cache`` / ``filter`` / ``delta`` / ``wave``, plus the kernel and
  wave side).
* **Conventions.**  Distance values use the library-wide dense
  conventions: ``UNREACHABLE`` (-1) for cut-off pairs, read-only
  vectors shared with the engine caches.
* **Weightedness.**  A query may declare ``weighted=True/False``;
  ``None`` adapts to the session's engine.  A stream mixing both
  declarations — or contradicting the engine — raises
  :class:`~repro.exceptions.QueryError` before any kernel runs, never
  silently serving the wrong kernel.
* **Batching.**  The planner groups the stream by canonical fault
  set, answers what it can from the engine's memo/vector caches and
  touch filter, patches wave starts whose orphaned region is small
  (the incremental-delta path, :mod:`repro.incremental`), and serves
  each group's remainder with one masked multi-source wave — waved
  from whichever side (sources or targets) costs fewer traversals,
  since distances are symmetric on an undirected graph (antisymmetric
  weighted snapshots never flip).

Entry points
------------
:class:`Session` owns the engine and the planner::

    from repro.graphs import generators
    from repro.query import DistanceQuery, EccentricityQuery, Session

    session = Session(generators.torus(8, 8))
    session.submit(
        DistanceQuery(0, 27, faults=[(0, 1)]),
        EccentricityQuery(0, faults=[(0, 1)]),
    )
    d, ecc = session.gather()       # typed Answers, submission order
    assert d.value >= 0 and ecc.provenance.source in ("cache", "wave")

``examples/query_session.py`` is the guided tour;
``benchmarks/bench_query_planner.py`` measures the planner against
the per-call engine methods it replaces (which survive as deprecated
shims on :class:`~repro.scenarios.engine.ScenarioEngine`).
"""

from repro.exceptions import QueryError
from repro.query.planner import Plan, PlanGroup, Planner
from repro.query.queries import (
    Answer,
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    MidpointQuery,
    PairQuery,
    PairReport,
    PreserverQuery,
    Provenance,
    Query,
    RestorationQuery,
    VectorQuery,
)
from repro.query.session import Session, SessionStats

__all__ = [
    "Answer",
    "ConnectivityQuery",
    "DistanceQuery",
    "EccentricityQuery",
    "MidpointQuery",
    "PairQuery",
    "PairReport",
    "Plan",
    "PlanGroup",
    "Planner",
    "PreserverQuery",
    "Provenance",
    "Query",
    "QueryError",
    "RestorationQuery",
    "Session",
    "SessionStats",
    "VectorQuery",
]
