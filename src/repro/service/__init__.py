"""Scenario service: a network front over one shared session backend.

The paper's workload — many queries against many fault sets over one
base graph — is exactly the shape a shared service amortises:
individual clients are bursty, the aggregate is smooth, and
concurrent clients asking about the *same failure* should cost one
masked wave, not one each.  This package is that front:

* :mod:`~repro.service.protocol` — the framed, versioned JSON/pickle
  wire format (one dict-with-``type`` message per length-prefixed
  frame, handshake-enforced :data:`~repro.service.protocol.PROTOCOL_VERSION`).
* :class:`~repro.service.coalescer.Coalescer` — rolling micro-batches
  (flush on size or a few-ms deadline) that merge every connection's
  queries into one backend gather, where the planner's canonical
  fault-set grouping turns cross-client duplicates into shared waves;
  each answer's provenance carries the ``coalesced`` head-count.
* :class:`~repro.service.server.ScenarioServer` — the asyncio server:
  admission control (per-client and global in-flight weights, typed
  ``admission`` backpressure replies), graceful drain, ``epoch`` push
  notifications to subscribed clients when a tenant graph changes.
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.AsyncServiceClient` — the session
  dialect (submit/gather/answer/answer_one, stats, cache_info) over
  the wire, sync and native-asyncio.
* :class:`~repro.service.background.BackgroundServer` — the server on
  a daemon thread, for synchronous callers and tests.

The backend is any session: an in-process
:class:`~repro.query.session.Session` or a sharded
:class:`~repro.fleet.session.FleetSession` — the service is the seam
that later turns fleet workers into socket-connected machines.

CLI: ``repro serve`` runs a server; ``repro query --connect
HOST:PORT`` drives the standard query stream through it.

Example
-------
>>> from repro.graphs import generators
>>> from repro.query import DistanceQuery, Session
>>> from repro.service import BackgroundServer, ServiceClient
>>> with BackgroundServer(Session(generators.grid(4, 4))) as server:
...     with ServiceClient(*server.address) as client:
...         client.answer_one(DistanceQuery(0, 15, [(0, 1)])).value
6
"""

from repro.exceptions import ServiceError
from repro.service.background import BackgroundServer
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.coalescer import Coalescer, Ticket
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import ScenarioServer

__all__ = [
    "AsyncServiceClient",
    "BackgroundServer",
    "Coalescer",
    "PROTOCOL_VERSION",
    "ScenarioServer",
    "ServiceClient",
    "ServiceError",
    "Ticket",
]
