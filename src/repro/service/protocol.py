"""Wire protocol of the scenario service: framing, codecs, messages.

One frame per message, in both directions::

    +----------------+-------+----------------------+
    | length (u32 BE)| codec | payload (length bytes)|
    +----------------+-------+----------------------+

``codec`` is one byte: ``J`` for a UTF-8 JSON object (control
messages — handshake, errors, acks, epoch pushes) or ``P`` for a
pickle (anything carrying typed query/answer/stats objects).  Every
payload decodes to a ``dict`` with a ``"type"`` key; anything else is
a protocol violation and raises
:class:`~repro.exceptions.ServiceError` with ``code="frame"``.
Frames above ``max_frame`` are refused *before* the payload is read,
so a garbled length header cannot make either side allocate
gigabytes.

Versioning is explicit: the first client message must be
``{"type": "hello", "version": PROTOCOL_VERSION, ...}`` and the
server answers ``welcome`` (echoing its version, tenant names, and
admission limits) or a ``version``-coded ``error`` — nothing else
crosses the socket until the handshake agrees.  Bump
:data:`PROTOCOL_VERSION` whenever a message's meaning changes; the
mismatch then fails loudly at connect time instead of mid-stream.

Trust model: the pickle codec executes arbitrary constructors on
decode, exactly like the fleet's pipe protocol one layer down.  The
service is a *backend* front for clients you already run — bind it to
loopback or a trusted network, never the open internet.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Any, Dict, Optional

import asyncio

from repro.exceptions import ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "encode_message",
    "decode_payload",
    "read_message",
    "send_message",
    "recv_message",
    "raise_error_reply",
]

#: Bump on any change to message meaning; the handshake enforces it.
PROTOCOL_VERSION = 1

#: Default refusal threshold for a single frame, either direction.
DEFAULT_MAX_FRAME = 32 * 1024 * 1024

_HEADER = struct.Struct(">IB")
_CODEC_JSON = ord("J")
_CODEC_PICKLE = ord("P")

Message = Dict[str, Any]


def encode_message(message: Message,
                   max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message to a full frame (header + payload).

    JSON when the message is JSON-native (all control messages are,
    by construction), pickle otherwise — the codec byte records the
    choice so the receiver never guesses.
    """
    try:
        payload = json.dumps(message, separators=(",", ":")).encode()
        codec = _CODEC_JSON
    except (TypeError, ValueError):
        payload = pickle.dumps(message,
                               protocol=pickle.HIGHEST_PROTOCOL)
        codec = _CODEC_PICKLE
    if len(payload) > max_frame:
        raise ServiceError(
            f"message of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit", code="frame",
        )
    return _HEADER.pack(len(payload), codec) + payload


def decode_payload(codec: int, payload: bytes) -> Message:
    """Decode one frame's payload; enforce the dict-with-type shape."""
    if codec == _CODEC_JSON:
        try:
            message = json.loads(payload.decode())
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"undecodable JSON frame: {exc}", code="frame"
            ) from exc
    elif codec == _CODEC_PICKLE:
        try:
            message = pickle.loads(payload)
        except Exception as exc:  # pickle raises a zoo of types
            raise ServiceError(
                f"undecodable pickle frame: {exc}", code="frame"
            ) from exc
    else:
        raise ServiceError(
            f"unknown codec byte {codec!r}", code="frame"
        )
    if not isinstance(message, dict) or "type" not in message:
        raise ServiceError(
            f"frame decodes to {type(message).__name__}, not a "
            f"typed message dict", code="frame",
        )
    return message


async def read_message(reader: asyncio.StreamReader,
                       max_frame: int = DEFAULT_MAX_FRAME) -> Message:
    """Read one frame from an asyncio stream (server side).

    Raises :class:`asyncio.IncompleteReadError` on EOF — the caller's
    disconnect signal — and :class:`ServiceError` on violations.
    """
    header = await reader.readexactly(_HEADER.size)
    length, codec = _HEADER.unpack(header)
    if length > max_frame:
        raise ServiceError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit", code="frame",
        )
    payload = await reader.readexactly(length)
    return decode_payload(codec, payload)


def send_message(sock: socket.socket, message: Message,
                 max_frame: int = DEFAULT_MAX_FRAME) -> None:
    """Write one frame to a blocking socket (sync client side)."""
    sock.sendall(encode_message(message, max_frame))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise ServiceError(
                "connection closed mid-frame", code="closed"
            )
        chunks.extend(chunk)
    return bytes(chunks)


def recv_message(sock: socket.socket,
                 max_frame: int = DEFAULT_MAX_FRAME) -> Message:
    """Read one frame from a blocking socket (sync client side)."""
    length, codec = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    if length > max_frame:
        raise ServiceError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit", code="frame",
        )
    return decode_payload(codec, _recv_exactly(sock, length))


def raise_error_reply(reply: Message) -> None:
    """Raise the client-side exception for an ``error`` reply.

    Mirrors the fleet's ``raise_reply`` contract: a server-side
    :class:`~repro.exceptions.ReproError` subclass named in
    ``exc_type`` re-raises as that type (so a malformed query stream
    surfaces as the :class:`~repro.exceptions.QueryError` callers
    already handle); anything else — admission backpressure, drain,
    version or frame violations — raises :class:`ServiceError`
    carrying the server's ``code``.
    """
    import repro.exceptions as _exc

    message = str(reply.get("message", "service error"))
    exc_name: Optional[str] = reply.get("exc_type")
    if exc_name and exc_name != "ServiceError":
        exc_class = getattr(_exc, exc_name, None)
        if isinstance(exc_class, type) and issubclass(exc_class,
                                                      _exc.ReproError):
            raise exc_class(message)
    raise ServiceError(message, code=str(reply.get("code", "service")))
