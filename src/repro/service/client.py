""":class:`ServiceClient` — the session dialect, spoken over a socket.

Two surfaces over the same wire protocol:

* :class:`ServiceClient` — blocking sockets, the exact
  submit/gather/answer/answer_one dialect of
  :class:`~repro.query.session.Session`, plus an
  :meth:`ServiceClient.answer_async` coroutine (the request runs on
  the client's single worker thread, mirroring the session's own
  async seam).  This is the drop-in: code written against a session
  runs against a served backend by swapping the constructor.
* :class:`AsyncServiceClient` — native asyncio streams for callers
  already living on an event loop; ``await connect(...)`` then
  ``await answer(...)``.

Both keep a client-side :class:`~repro.query.session.SessionStats`
ledger (fed by
:meth:`~repro.query.session.SessionStats.record_answers`), track
``epoch`` pushes from the server in :attr:`epochs`, and re-raise
typed error replies through
:func:`~repro.service.protocol.raise_error_reply` — so a malformed
stream surfaces as the same
:class:`~repro.exceptions.QueryError` an in-process session raises,
and backpressure surfaces as
:class:`~repro.exceptions.ServiceError` with a machine-readable
``code`` (``admission``, ``draining``, ``version``, ...).
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import obs as _obs
from repro.exceptions import QueryError, ServiceError
from repro.query.queries import (
    Answer,
    MidpointQuery,
    PreserverQuery,
    Query,
)
from repro.query.session import SessionStats
from repro.scenarios.engine import CacheInfo
from repro.service import protocol
from repro.service.protocol import Message

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _stage(queries: Tuple[Any, ...]) -> List[Query]:
    """The session's all-or-nothing submit staging, shared verbatim."""
    staged: List[Query] = []
    for q in queries:
        if isinstance(q, Query):
            staged.append(q)
            continue
        try:
            items = iter(q)
        except TypeError:
            raise QueryError(
                f"submit() takes queries or iterables of "
                f"queries, got {q!r}"
            ) from None
        staged.extend(items)
    return staged


class ServiceClient:
    """Blocking client for a :class:`~repro.service.server.ScenarioServer`.

    Parameters
    ----------
    host, port:
        The server's bound address.
    client:
        Name sent in the handshake; shows up in server-side admission
        messages.  Defaults to ``host:port`` of the local socket.
    tenant:
        Tenant this client's streams answer against (``None`` = the
        server's first tenant).
    scheme:
        Default restoration scheme, like ``Session(scheme=...)`` —
        pickled to the server with each request that needs it.
    timeout:
        Socket timeout in seconds (``None`` = block forever; waves on
        big graphs can be slow, so the default is patient).
    """

    def __init__(self, host: str, port: int, *,
                 client: Optional[str] = None,
                 tenant: Optional[str] = None,
                 scheme: Any = None,
                 timeout: Optional[float] = None) -> None:
        self.scheme = scheme
        self.tenant = tenant
        self.stats = SessionStats()
        self.epochs: Dict[str, int] = {}
        self._pending: List[Query] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._async_executor: Optional[ThreadPoolExecutor] = None
        self._sock: Optional[socket.socket] = socket.create_connection(
            (host, port), timeout)
        name = client or "{}:{}".format(
            *self._sock.getsockname()[:2])
        self.name = name
        try:
            protocol.send_message(self._sock, {
                "type": "hello",
                "version": protocol.PROTOCOL_VERSION,
                "client": name,
            })
            welcome = protocol.recv_message(self._sock)
        except Exception:
            self._sock.close()
            self._sock = None
            raise
        if welcome.get("type") == "error":
            self._sock.close()
            self._sock = None
            protocol.raise_error_reply(welcome)
        self.server = str(welcome.get("server", ""))
        self.tenants: Tuple[str, ...] = tuple(
            welcome.get("tenants", ()))
        self.limits: Dict[str, int] = dict(welcome.get("limits", {}))
        self.max_frame = int(
            self.limits.get("max_frame", protocol.DEFAULT_MAX_FRAME))

    # ------------------------------------------------------------------
    # the session dialect
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Queries submitted but not yet gathered (client-side queue)."""
        return len(self._pending)

    def submit(self, *queries: Any) -> "ServiceClient":
        """Queue queries for the next :meth:`gather` — the
        :meth:`~repro.query.session.Session.submit` contract."""
        self._pending.extend(_stage(queries))
        return self

    def gather(self, scheme: Any = None) -> List[Answer]:
        batch, self._pending = self._pending, []
        return self._answer(batch, scheme)

    def answer(self, queries: Iterable[Query],
               scheme: Any = None) -> List[Answer]:
        return self._answer(list(queries), scheme)

    def answer_one(self, query: Query, scheme: Any = None) -> Answer:
        return self._answer([query], scheme)[0]

    async def answer_async(self, queries: Iterable[Query],
                           scheme: Any = None) -> List[Answer]:
        """Awaitable :meth:`answer` — the service-grade replacement
        for :meth:`Session.answer_async`.

        The request runs on the client's single worker thread (the
        socket dialog is serialized anyway), so N concurrent awaits
        queue N requests instead of holding N threads — and the
        *server* coalesces concurrent clients' queries into shared
        waves, which no in-process ``answer_async`` can do.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor(),
            functools.partial(self._answer, list(queries), scheme),
        )

    def _answer(self, queries: List[Query],
                scheme: Any) -> List[Answer]:
        for q in queries:
            if not isinstance(q, Query) or type(q) is Query:
                raise QueryError(
                    f"not a query object: {q!r} (use the typed query "
                    f"classes from repro.query)"
                )
        message: Message = {
            "type": "answer",
            "id": next(self._ids),
            "queries": queries,
            "scheme": scheme if scheme is not None else self.scheme,
            "tenant": self.tenant,
        }
        # When tracing, the request rides under a client-side root
        # span whose context crosses the wire in the "trace" slot —
        # the first link of the socket → coalescer → wave chain.
        with _obs.span("client.request", client=self.name,
                       queries=len(queries)) as span_obj:
            if span_obj is not None:
                message["trace"] = span_obj.context().to_dict()
            reply = self._request(message)
        answers = list(reply["answers"])
        self.stats.record_answers(answers)
        return answers

    # ------------------------------------------------------------------
    # domain facades — compatibility spellings over the typed algebra,
    # identical to Session's so the dialect swap stays drop-in
    # ------------------------------------------------------------------
    def preserver_violations(
        self, preserver_edges: Iterable[Tuple[int, int]],
        sources: Iterable[int],
        scenarios: Iterable[Iterable[Tuple[int, int]]],
        targets: Optional[Iterable[int]] = None,
    ) -> List[Tuple[Any, ...]]:
        edges = tuple(preserver_edges)
        srcs = tuple(sources)
        tgts = None if targets is None else tuple(targets)
        answers = self.answer([
            PreserverQuery(edges=edges, sources=srcs,
                           faults=tuple(sc), targets=tgts)
            for sc in scenarios
        ])
        return [v for a in answers for v in a.value]

    def midpoint_scan(self, scheme: Any, s: int, t: int,
                      faults: Iterable[Tuple[int, int]],
                      subset: Iterable[int] = ()) -> Any:
        return self.answer_one(
            MidpointQuery(s, t, faults=tuple(faults),
                          subset=tuple(subset)),
            scheme=scheme,
        ).value

    # ------------------------------------------------------------------
    # service extras
    # ------------------------------------------------------------------
    def subscribe(self) -> Dict[str, int]:
        """Subscribe to epoch pushes; returns the current epochs."""
        reply = self._request({"type": "subscribe",
                               "id": next(self._ids)})
        self.epochs.update(reply.get("epochs", {}))
        return dict(self.epochs)

    def server_stats(self) -> Message:
        """The server's view of this client: per-client
        :class:`SessionStats` (``"client"``), backend
        :class:`CacheInfo` (``"cache"``), and JSON server counters
        (``"server"``: batches, coalesced queries, rejections...)."""
        return self._request({"type": "stats", "id": next(self._ids)})

    def cache_info(self) -> CacheInfo:
        """The shared backend's cache counters (server-side view)."""
        info = self.server_stats()["cache"]
        assert isinstance(info, CacheInfo)
        return info

    def poll_pushes(self, timeout: float = 0.0) -> Dict[str, int]:
        """Drain queued epoch pushes without sending a request.

        Waits up to ``timeout`` seconds for at least one frame; a
        timeout just returns the epochs seen so far.
        """
        sock = self._require_sock()
        old = sock.gettimeout()
        sock.settimeout(max(timeout, 1e-3))
        try:
            while True:
                reply = protocol.recv_message(sock, self.max_frame)
                self._absorb_push(reply)
        except socket.timeout:
            pass
        finally:
            sock.settimeout(old)
        return dict(self.epochs)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, message: Message) -> Message:
        """One request/reply dialog; pushes absorbed along the way."""
        sock = self._require_sock()
        with self._lock:
            protocol.send_message(sock, message, self.max_frame)
            while True:
                reply = protocol.recv_message(sock, self.max_frame)
                if self._absorb_push(reply):
                    continue
                if reply.get("type") == "error":
                    protocol.raise_error_reply(reply)
                if reply.get("id") != message["id"]:
                    raise ServiceError(
                        f"reply {reply.get('id')!r} does not answer "
                        f"request {message['id']!r}", code="protocol",
                    )
                return reply

    def _absorb_push(self, reply: Message) -> bool:
        if reply.get("type") == "epoch":
            self.epochs[str(reply["tenant"])] = int(reply["epoch"])
            return True
        return False

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise ServiceError("client is closed", code="closed")
        return self._sock

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._async_executor is None:
                self._async_executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix="repro-client",
                )
            return self._async_executor

    def close(self) -> None:
        """Say goodbye and release the socket (idempotent)."""
        sock, self._sock = self._sock, None
        executor, self._async_executor = self._async_executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if sock is None:
            return
        try:
            protocol.send_message(sock, {"type": "goodbye",
                                         "id": next(self._ids)})
        except Exception:
            pass
        finally:
            sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        st = self.stats
        state = "closed" if self._sock is None else "connected"
        return (
            f"ServiceClient(name={self.name!r}, server="
            f"{self.server!r}, {state}, answers={st.answers} "
            f"({st.cache}c/{st.filter}f/{st.delta}d/{st.wave}w), "
            f"pending={len(self._pending)})"
        )


class AsyncServiceClient:
    """Native-asyncio client: the same dialect, awaited.

    Build with ``await AsyncServiceClient.connect(host, port)``;
    requests serialize on an internal asyncio lock (one socket, one
    dialog at a time) while the event loop stays free.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 welcome: Message, name: str,
                 tenant: Optional[str], scheme: Any) -> None:
        self._reader = reader
        self._writer = writer
        self.name = name
        self.tenant = tenant
        self.scheme = scheme
        self.stats = SessionStats()
        self.epochs: Dict[str, int] = {}
        self._pending: List[Query] = []
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()
        self.server = str(welcome.get("server", ""))
        self.tenants: Tuple[str, ...] = tuple(
            welcome.get("tenants", ()))
        self.limits: Dict[str, int] = dict(welcome.get("limits", {}))
        self.max_frame = int(
            self.limits.get("max_frame", protocol.DEFAULT_MAX_FRAME))

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      client: Optional[str] = None,
                      tenant: Optional[str] = None,
                      scheme: Any = None) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        name = client or "{}:{}".format(
            *writer.get_extra_info("sockname")[:2])
        writer.write(protocol.encode_message({
            "type": "hello",
            "version": protocol.PROTOCOL_VERSION,
            "client": name,
        }))
        await writer.drain()
        welcome = await protocol.read_message(reader)
        if welcome.get("type") == "error":
            writer.close()
            protocol.raise_error_reply(welcome)
        return cls(reader, writer, welcome=welcome, name=name,
                   tenant=tenant, scheme=scheme)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, *queries: Any) -> "AsyncServiceClient":
        self._pending.extend(_stage(queries))
        return self

    async def gather(self, scheme: Any = None) -> List[Answer]:
        batch, self._pending = self._pending, []
        return await self._answer(batch, scheme)

    async def answer(self, queries: Iterable[Query],
                     scheme: Any = None) -> List[Answer]:
        return await self._answer(list(queries), scheme)

    # The canonical name answer_async is an alias of answer — both
    # surfaces expose it so swapping ServiceClient in and out of
    # asyncio code never renames the call site.
    async def answer_async(self, queries: Iterable[Query],
                           scheme: Any = None) -> List[Answer]:
        return await self._answer(list(queries), scheme)

    async def answer_one(self, query: Query,
                         scheme: Any = None) -> Answer:
        return (await self._answer([query], scheme))[0]

    async def subscribe(self) -> Dict[str, int]:
        reply = await self._request({"type": "subscribe",
                                     "id": next(self._ids)})
        self.epochs.update(reply.get("epochs", {}))
        return dict(self.epochs)

    async def server_stats(self) -> Message:
        return await self._request({"type": "stats",
                                    "id": next(self._ids)})

    async def cache_info(self) -> CacheInfo:
        info = (await self.server_stats())["cache"]
        assert isinstance(info, CacheInfo)
        return info

    # ------------------------------------------------------------------
    async def _answer(self, queries: List[Query],
                      scheme: Any) -> List[Answer]:
        message: Message = {
            "type": "answer",
            "id": next(self._ids),
            "queries": queries,
            "scheme": scheme if scheme is not None else self.scheme,
            "tenant": self.tenant,
        }
        with _obs.span("client.request", client=self.name,
                       queries=len(queries)) as span_obj:
            if span_obj is not None:
                message["trace"] = span_obj.context().to_dict()
            reply = await self._request(message)
        answers = list(reply["answers"])
        self.stats.record_answers(answers)
        return answers

    async def _request(self, message: Message) -> Message:
        async with self._lock:
            self._writer.write(
                protocol.encode_message(message, self.max_frame))
            await self._writer.drain()
            while True:
                reply = await protocol.read_message(
                    self._reader, self.max_frame)
                if reply.get("type") == "epoch":
                    self.epochs[str(reply["tenant"])] = int(
                        reply["epoch"])
                    continue
                if reply.get("type") == "error":
                    protocol.raise_error_reply(reply)
                if reply.get("id") != message["id"]:
                    raise ServiceError(
                        f"reply {reply.get('id')!r} does not answer "
                        f"request {message['id']!r}",
                        code="protocol",
                    )
                return reply

    async def close(self) -> None:
        if self._writer.is_closing():
            return
        try:
            self._writer.write(protocol.encode_message(
                {"type": "goodbye", "id": next(self._ids)}))
            await self._writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        self._writer.close()

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def __repr__(self) -> str:
        st = self.stats
        return (
            f"AsyncServiceClient(name={self.name!r}, "
            f"server={self.server!r}, answers={st.answers}, "
            f"pending={len(self._pending)})"
        )
