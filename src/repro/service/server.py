""":class:`ScenarioServer` — the asyncio network front over one backend.

A long-lived ``asyncio.start_server`` accepting the framed protocol
of :mod:`repro.service.protocol` from many concurrent clients, all
answered through **one** shared backend — an in-process
:class:`~repro.query.session.Session` or a sharded
:class:`~repro.fleet.session.FleetSession` — with every connection's
queries admitted into the :class:`~repro.service.coalescer.Coalescer`
so concurrent clients querying the same fault set ride one masked
wave.

Admission control is weight-based and deterministic: a request of
``k`` queries is refused (typed ``admission`` error reply, nothing
queued) when it would push the sending client above
``max_inflight_client`` or the server above ``max_inflight`` — typed
backpressure instead of unbounded queues, the same budget idiom as
the fleet's capacity accounting.  Shutdown is a graceful
:meth:`ScenarioServer.drain`: stop accepting, refuse new requests
with a ``draining`` error, flush the coalescer, answer everything
in flight, then close.  Tenant graph changes are announced by
:meth:`ScenarioServer.bump_epoch` — an ``epoch`` push to subscribed
clients, the listen-channel idiom — so clients holding derived state
know to re-derive.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs as _obs
from repro.exceptions import ReproError, ServiceError
from repro.query.queries import Answer, Query
from repro.query.session import SessionStats
from repro.scenarios.engine import CacheInfo
from repro.service import protocol
from repro.service.coalescer import Coalescer, Ticket
from repro.service.protocol import Message

__all__ = ["ScenarioServer"]

_DEFAULT_TENANT = "default"


class _Connection:
    """Per-connection server state: identity, ledger, in-flight weight."""

    def __init__(self, name: str,
                 writer: asyncio.StreamWriter) -> None:
        self.name = name
        self.writer = writer
        self.stats = SessionStats()
        self.inflight = 0
        self.subscribed = False
        self.write_lock = asyncio.Lock()


class ScenarioServer:
    """Serve one shared session backend to many socket clients.

    Parameters
    ----------
    backend:
        A :class:`~repro.query.session.Session` or
        :class:`~repro.fleet.session.FleetSession` (anything speaking
        ``answer(queries, scheme)`` / ``cache_info()``; a ``tenants``
        attribute makes it multi-tenant).  The server owns its use,
        not its lifetime — callers close their own backend.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    max_batch, max_delay:
        Coalescer flush thresholds (queries per micro-batch, seconds).
    max_inflight, max_inflight_client:
        Admission-control weights: queries in flight globally and per
        connection.
    max_frame:
        Per-frame byte limit, both directions.
    name:
        Server name echoed in the ``welcome`` message.
    """

    def __init__(self, backend: Any, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 64, max_delay: float = 0.002,
                 max_inflight: int = 1024,
                 max_inflight_client: int = 256,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME,
                 name: str = "scenario-service") -> None:
        self.backend = backend
        self.name = name
        self._host = host
        self._port = port
        self.max_inflight = int(max_inflight)
        self.max_inflight_client = int(max_inflight_client)
        self.max_frame = int(max_frame)
        self.tenants: Tuple[str, ...] = tuple(
            getattr(backend, "tenants", ()) or (_DEFAULT_TENANT,))
        self.coalescer = Coalescer(
            self._backend_answer,
            max_batch=max_batch, max_delay=max_delay,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[_Connection] = set()
        self._finish_tasks: Set["asyncio.Task[None]"] = set()
        self._inflight = 0
        self._draining = False
        self._epochs: Dict[str, int] = {t: 0 for t in self.tenants}
        self._answered = 0
        self._rejected = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not started", code="state")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish what's admitted.

        New connections and new requests get ``draining`` errors from
        the moment this is called; everything already admitted is
        flushed through the coalescer and answered before the
        listener and the client connections close.  Idempotent.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self.coalescer.drain()
        while self._finish_tasks:
            await asyncio.gather(*list(self._finish_tasks),
                                 return_exceptions=True)
        for conn in list(self._connections):
            conn.writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self.coalescer.close()

    async def close(self) -> None:
        """Drain, then make double-closes harmless."""
        await self.drain()
        self._server = None

    # ------------------------------------------------------------------
    # epoch pushes
    # ------------------------------------------------------------------
    def bump_epoch(self, tenant: str = _DEFAULT_TENANT) -> int:
        """Announce a tenant graph change to subscribed clients.

        Increments the tenant's epoch and pushes
        ``{"type": "epoch", "tenant": ..., "epoch": ...}`` to every
        subscriber — the invalidation signal for clients holding
        state derived from answers (the server's own engine caches
        are the backend owner's concern).  Returns the new epoch.
        Must be called on the server's event loop.
        """
        if tenant not in self._epochs:
            raise ServiceError(f"unknown tenant {tenant!r}",
                               code="tenant")
        self._epochs[tenant] += 1
        epoch = self._epochs[tenant]
        push = {"type": "epoch", "tenant": tenant, "epoch": epoch}
        for conn in list(self._connections):
            if conn.subscribed:
                task = asyncio.get_running_loop().create_task(
                    self._send(conn, push))
                self._finish_tasks.add(task)
                task.add_done_callback(self._finish_tasks.discard)
        return epoch

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn: Optional[_Connection] = None
        try:
            conn = await self._handshake(reader, writer)
            if conn is None:
                return
            self._connections.add(conn)
            while True:
                message = await protocol.read_message(
                    reader, self.max_frame)
                if not await self._dispatch(conn, message):
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                ServiceError):
            # Disconnect mid-stream (or a garbled frame): the
            # connection dies, the server lives.  Tickets already in
            # flight complete against the backend; their replies hit
            # the closed-writer guard in _send and are dropped.
            pass
        finally:
            if conn is not None:
                self._connections.discard(conn)
            writer.close()

    async def _handshake(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter
                         ) -> Optional[_Connection]:
        hello = await protocol.read_message(reader, self.max_frame)
        peer = writer.get_extra_info("peername")
        name = str(hello.get("client") or peer or "client")
        conn = _Connection(name, writer)
        if hello.get("type") != "hello":
            await self._send(conn, {
                "type": "error", "code": "protocol",
                "message": f"expected hello, got "
                           f"{hello.get('type')!r}",
            })
            return None
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            await self._send(conn, {
                "type": "error", "code": "version",
                "message": (
                    f"server speaks protocol "
                    f"{protocol.PROTOCOL_VERSION}, client offered "
                    f"{hello.get('version')!r}"),
            })
            return None
        if self._draining:
            await self._send(conn, {
                "type": "error", "code": "draining",
                "message": "server is draining",
            })
            return None
        await self._send(conn, {
            "type": "welcome",
            "version": protocol.PROTOCOL_VERSION,
            "server": self.name,
            "tenants": list(self.tenants),
            "limits": {
                "max_inflight": self.max_inflight,
                "max_inflight_client": self.max_inflight_client,
                "max_frame": self.max_frame,
            },
        })
        return conn

    async def _dispatch(self, conn: _Connection,
                        message: Message) -> bool:
        """Serve one request; return False to end the connection."""
        kind = message.get("type")
        mid = message.get("id")
        if kind == "answer":
            self._handle_answer(conn, message)
            return True
        if kind == "stats":
            await self._send(conn, {
                "type": "stats", "id": mid,
                "client": conn.stats,
                "cache": self.cache_info(),
                "server": self.counters(),
                "obs": {
                    "enabled": _obs.ENABLED,
                    "metrics": _obs.snapshot(),
                    "spans": _obs.span_records(),
                },
            })
            return True
        if kind == "subscribe":
            conn.subscribed = True
            await self._send(conn, {
                "type": "subscribed", "id": mid,
                "epochs": dict(self._epochs),
            })
            return True
        if kind == "goodbye":
            await self._send(conn, {"type": "bye", "id": mid})
            return False
        await self._send(conn, {
            "type": "error", "id": mid, "code": "protocol",
            "message": f"unknown message type {kind!r}",
        })
        return True

    # ------------------------------------------------------------------
    # the answer path
    # ------------------------------------------------------------------
    def _handle_answer(self, conn: _Connection,
                       message: Message) -> None:
        mid = message.get("id")
        refusal = self._admission_refusal(conn, message)
        if refusal is not None:
            self._rejected += 1
            code, text = refusal
            if _obs.ENABLED:
                _obs.inc("repro_admission_refusals_total", code=code)
            task = asyncio.get_running_loop().create_task(
                self._send(conn, {
                    "type": "error", "id": mid,
                    "code": code, "message": text,
                }))
            self._finish_tasks.add(task)
            task.add_done_callback(self._finish_tasks.discard)
            return
        queries = list(message["queries"])
        tenant = str(message.get("tenant") or self.tenants[0])
        weight = len(queries)
        conn.inflight += weight
        self._inflight += weight
        # A traced request (a "trace" slot in the frame) turns
        # recording on server-side — sticky, like a fleet worker —
        # and runs under a service.request span linking the client's
        # root to the coalescer's shared wave span.
        ctx = _obs.TraceContext.from_dict(message.get("trace"))
        if ctx is not None and not _obs.ENABLED:
            _obs.enable()
        span_obj = None
        if _obs.ENABLED:
            span_obj = _obs.start_span(
                "service.request", parent=ctx,
                client=conn.name, tenant=tenant, queries=weight)
        future: "asyncio.Future[List[Answer]]" = (
            asyncio.get_running_loop().create_future())
        ticket = Ticket(queries=queries,
                        scheme=message.get("scheme"),
                        tenant=tenant, future=future,
                        trace=(span_obj.context().to_dict()
                               if span_obj is not None else None))
        self.coalescer.submit(ticket)
        task = asyncio.get_running_loop().create_task(
            self._finish(conn, mid, ticket, span_obj))
        self._finish_tasks.add(task)
        task.add_done_callback(self._finish_tasks.discard)

    def _admission_refusal(self, conn: _Connection, message: Message
                           ) -> Optional[Tuple[str, str]]:
        """The reason to refuse this request, or None to admit it."""
        if self._draining:
            return "draining", "server is draining"
        queries = message.get("queries")
        if not isinstance(queries, (list, tuple)) or not all(
                isinstance(q, Query) for q in queries):
            return "protocol", "answer request carries no typed queries"
        tenant = message.get("tenant")
        if tenant is not None and tenant not in self.tenants:
            return "tenant", (
                f"unknown tenant {tenant!r}; server hosts "
                f"{list(self.tenants)}")
        weight = len(queries)
        if conn.inflight + weight > self.max_inflight_client:
            return "admission", (
                f"client {conn.name!r} would hold "
                f"{conn.inflight + weight} queries in flight "
                f"(limit {self.max_inflight_client}); back off and "
                f"retry")
        if self._inflight + weight > self.max_inflight:
            return "admission", (
                f"server would hold {self._inflight + weight} "
                f"queries in flight (limit {self.max_inflight}); "
                f"back off and retry")
        return None

    async def _finish(self, conn: _Connection, mid: Any,
                      ticket: Ticket,
                      span_obj: Optional[Any] = None) -> None:
        weight = len(ticket.queries)
        try:
            answers = await ticket.future
        except ReproError as exc:
            await self._send(conn, {
                "type": "error", "id": mid,
                "code": getattr(exc, "code", "query"),
                "exc_type": type(exc).__name__,
                "message": str(exc),
            })
        except Exception as exc:  # noqa: BLE001 — connection boundary
            await self._send(conn, {
                "type": "error", "id": mid, "code": "internal",
                "exc_type": type(exc).__name__,
                "message": str(exc),
            })
        else:
            conn.stats.record_answers(answers)
            self._answered += len(answers)
            if _obs.ENABLED:
                _obs.inc("repro_service_answers_total", len(answers),
                         client=conn.name)
            await self._send(conn, {
                "type": "answers", "id": mid, "answers": answers,
            })
        finally:
            if span_obj is not None:
                _obs.finish_span(span_obj)
            conn.inflight -= weight
            self._inflight -= weight

    def _backend_answer(self, queries: List[Query], scheme: Any,
                        tenant: str) -> List[Answer]:
        """The blocking backend call (runs on the coalescer thread)."""
        if hasattr(self.backend, "tenants"):
            return list(self.backend.answer(
                queries, scheme, tenant=tenant))
        if tenant != self.tenants[0]:
            raise ServiceError(
                f"unknown tenant {tenant!r}", code="tenant")
        return list(self.backend.answer(queries, scheme))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """The shared backend's cache counters."""
        info = self.backend.cache_info()
        assert isinstance(info, CacheInfo)
        return info

    def counters(self) -> Dict[str, int]:
        """JSON-able server counters (answers, rejections, batches)."""
        counters = dict(self.coalescer.counters())
        counters.update(
            answered=self._answered,
            rejected=self._rejected,
            connections=len(self._connections),
            inflight=self._inflight,
        )
        return counters

    async def _send(self, conn: _Connection,
                    message: Message) -> None:
        """Write one frame; a dead connection drops the write."""
        async with conn.write_lock:
            if conn.writer.is_closing():
                return
            try:
                conn.writer.write(
                    protocol.encode_message(message, self.max_frame))
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                conn.writer.close()

    def __repr__(self) -> str:
        state = ("draining" if self._draining
                 else "serving" if self._server is not None
                 else "stopped")
        return (
            f"ScenarioServer(tenants={list(self.tenants)}, "
            f"{state}, connections={len(self._connections)}, "
            f"inflight={self._inflight}, "
            f"batches={self.coalescer.batches})"
        )
