""":class:`BackgroundServer` — a scenario server on its own thread.

The server is asyncio; most of this library's consumers (tests,
benchmarks, synchronous scripts) are not.  ``BackgroundServer`` runs
a :class:`~repro.service.server.ScenarioServer` on a daemon thread
with a private event loop, exposes the bound address, and forwards
the control surface (:meth:`drain`, :meth:`bump_epoch`,
:meth:`flush`) through ``run_coroutine_threadsafe`` /
``call_soon_threadsafe`` — so synchronous code gets a served backend
in three lines::

    with BackgroundServer(Session(graph)) as server:
        with ServiceClient(*server.address) as client:
            answers = client.answer(queries)

The wrapped backend's lifetime stays the caller's: closing the
background server stops serving but does not close the session or
fleet behind it.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional, Tuple

from repro.exceptions import ServiceError
from repro.service.server import ScenarioServer

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """Run a :class:`ScenarioServer` on a daemon thread.

    Constructor keyword arguments are forwarded verbatim to
    :class:`ScenarioServer`; the server is started before the
    constructor returns (or the startup exception is re-raised here).
    """

    def __init__(self, backend: Any, **kwargs: Any) -> None:
        self.server = ScenarioServer(backend, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The server's bound ``(host, port)``."""
        return self.server.address

    def drain(self, timeout: Optional[float] = None) -> None:
        """Gracefully drain the server (see
        :meth:`ScenarioServer.drain`), blocking until done."""
        asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop).result(timeout)

    def flush(self) -> None:
        """Flush the coalescer's pending micro-batch now."""
        self._loop.call_soon_threadsafe(self.server.coalescer.flush)

    def bump_epoch(self, tenant: str = "default") -> int:
        """Thread-safe :meth:`ScenarioServer.bump_epoch`."""

        async def _bump() -> int:
            return self.server.bump_epoch(tenant)

        return asyncio.run_coroutine_threadsafe(
            _bump(), self._loop).result()

    def close(self) -> None:
        """Drain, stop the loop, join the thread (idempotent)."""
        if not self._thread.is_alive():
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self.server.close(), self._loop).result()
        except ServiceError:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"BackgroundServer({self.server!r})"
