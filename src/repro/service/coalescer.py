"""Cross-client wave coalescing: rolling micro-batches over one backend.

The service's reason to exist: the paper's workload is *many queries
against many fault sets over one base graph*, and concurrent clients
asking about the same failure should cost one masked wave, not N.
The :class:`Coalescer` makes that happen without touching the
planner: it admits every connection's queries into one rolling
micro-batch (flushed on size or a few-ms deadline), hands the merged
batch to the shared backend session — whose planner already groups by
canonical fault set, so queries from different clients sharing a
fault set ride one wave — and then demultiplexes the answers back to
each :class:`Ticket` in submission order.

Each answer's :class:`~repro.query.queries.Provenance` is stamped
with ``coalesced``: how many queries across the whole flushed batch
shared its canonical fault set.  A value above 1 is the service
paying one wave for several clients.

Isolation: one client's malformed stream must not poison a merged
batch.  When a multi-ticket batch fails with a
:class:`~repro.exceptions.ReproError`, every ticket is re-answered
alone, so exactly the guilty tickets see the error and the innocent
ones still get answers (they lose this batch's coalescing, nothing
else).
"""

from __future__ import annotations

import asyncio
import pickle
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

from repro import obs as _obs
from repro.exceptions import ReproError
from repro.obs.trace import TraceContext
from repro.query.queries import Answer, Query

__all__ = ["Coalescer", "Ticket"]

#: A blocking backend call: (queries, scheme, tenant) -> answers.
AnswerFn = Callable[[List[Query], Any, str], List[Answer]]


@dataclass
class Ticket:
    """One connection's admitted sub-batch, awaiting its answers.

    ``trace`` is the requesting client's observability context (a
    :class:`~repro.obs.trace.TraceContext` wire dict, or ``None``
    when untraced) — the coalescer's shared wave span parents to the
    first traced ticket in its batch and records every batch-mate's
    trace id, so one wave shows up in each client's trace.
    """

    queries: List[Query]
    scheme: Any
    tenant: str
    future: "asyncio.Future[List[Answer]]" = field(repr=False)
    trace: Any = None


def _stamp(answers: List[Answer],
           counts: "Counter[Any]") -> List[Answer]:
    """Return answers with ``provenance.coalesced`` set from counts."""
    return [
        replace(a, provenance=replace(
            a.provenance, coalesced=counts[a.query.fault_key]))
        for a in answers
    ]


class Coalescer:
    """Admit tickets into rolling micro-batches over one backend.

    Parameters
    ----------
    answer_fn:
        The blocking backend call ``(queries, scheme, tenant) ->
        answers``.  It runs on the coalescer's single worker thread —
        the backend session serializes gathers anyway, so one thread
        is the true concurrency and the event loop never blocks on a
        wave.
    max_batch:
        Flush as soon as the pending micro-batch holds this many
        queries (counting queries, not tickets — admission control
        upstream bounds both).
    max_delay:
        Flush at most this many seconds after the first pending
        ticket arrived, so a lone client's latency is bounded even
        when nobody else shows up to share its wave.

    All entry points must be called on the owning event loop.
    """

    def __init__(self, answer_fn: AnswerFn, *,
                 max_batch: int = 64,
                 max_delay: float = 0.002) -> None:
        self._answer_fn = answer_fn
        self.max_batch = max(1, int(max_batch))
        self.max_delay = float(max_delay)
        self._pending: List[Ticket] = []
        self._pending_queries = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-coalescer",
        )
        #: Micro-batches flushed so far.
        self.batches = 0
        #: Queries answered through flushed batches.
        self.flushed_queries = 0
        #: Queries that shared their batch's fault set with another
        #: query (i.e. answers stamped ``coalesced > 1``).
        self.coalesced_queries = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, ticket: Ticket) -> None:
        """Admit one ticket; flush on size, else arm the deadline."""
        self._pending.append(ticket)
        self._pending_queries += len(ticket.queries)
        if self._pending_queries >= self.max_batch:
            self.flush("size")
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.max_delay, self._deadline)

    def _deadline(self) -> None:
        self._timer = None
        self.flush("deadline")

    def flush(self, reason: str = "manual") -> None:
        """Flush the pending micro-batch now (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        queries = self._pending_queries
        self._pending_queries = 0
        if not batch:
            return
        self.batches += 1
        if _obs.ENABLED:
            _obs.inc("repro_coalescer_flushes_total", reason=reason)
            _obs.observe("repro_coalescer_batch_size", float(queries))
        task = asyncio.get_running_loop().create_task(
            self._run_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _run_batch(self, batch: List[Ticket]) -> None:
        """Group one flushed batch, answer each group, demultiplex.

        Groups split by ``(tenant, scheme)``: tenants answer over
        different graphs, and two different schemes cannot share a
        restoration pass.  Scheme equality is byte equality of its
        pickle — the form it crossed the wire in — so two clients
        sending the same scheme coalesce.
        """
        groups: "OrderedDict[Tuple[str, Optional[bytes]], List[Ticket]]"
        groups = OrderedDict()
        for ticket in batch:
            scheme_key = (None if ticket.scheme is None else
                          pickle.dumps(ticket.scheme,
                                       protocol=pickle.HIGHEST_PROTOCOL))
            groups.setdefault((ticket.tenant, scheme_key),
                              []).append(ticket)
        for (tenant, _), tickets in groups.items():
            await self._run_group(tenant, tickets)

    async def _run_group(self, tenant: str,
                         tickets: List[Ticket]) -> None:
        queries = [q for t in tickets for q in t.queries]
        scheme = tickets[0].scheme
        counts: "Counter[Any]" = Counter(q.fault_key for q in queries)
        # One shared wave span for the whole merged group: parented to
        # the first traced ticket, carrying every batch-mate's trace
        # id — the record that several clients paid one wave.
        wave_span: Any = None
        ctx: Optional[TraceContext] = None
        if _obs.ENABLED:
            parents = [c for c in (TraceContext.from_dict(t.trace)
                                   for t in tickets) if c is not None]
            wave_span = _obs.start_span(
                "coalescer.wave",
                parent=parents[0] if parents else None,
                tenant=tenant, tickets=len(tickets),
                queries=len(queries),
                traces=sorted({p.trace_id for p in parents}),
            )
            ctx = wave_span.context()
        try:
            await self._answer_group(tenant, tickets, queries, scheme,
                                     counts, ctx)
        finally:
            if wave_span is not None:
                _obs.finish_span(wave_span)

    async def _answer_group(self, tenant: str, tickets: List[Ticket],
                            queries: List[Query], scheme: Any,
                            counts: "Counter[Any]",
                            ctx: Optional[TraceContext]) -> None:
        try:
            answers = await self._call(queries, scheme, tenant, ctx)
        except ReproError:
            # A merged batch failed: isolate the guilty ticket(s) by
            # re-answering each alone, so one client's malformed
            # stream cannot fail its batch-mates (a lone ticket just
            # gets its own error back).
            await self._retry_alone(tenant, tickets, ctx)
            return
        except Exception as exc:  # backend bug — fail every waiter
            for ticket in tickets:
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
            return
        self.flushed_queries += len(queries)
        self.coalesced_queries += sum(
            1 for q in queries if counts[q.fault_key] > 1)
        answers = _stamp(answers, counts)
        cursor = 0
        for ticket in tickets:
            chunk = answers[cursor:cursor + len(ticket.queries)]
            cursor += len(ticket.queries)
            if not ticket.future.done():
                ticket.future.set_result(chunk)

    async def _retry_alone(self, tenant: str, tickets: List[Ticket],
                           ctx: Optional[TraceContext] = None) -> None:
        for ticket in tickets:
            counts: "Counter[Any]" = Counter(
                q.fault_key for q in ticket.queries)
            try:
                answers = await self._call(
                    ticket.queries, ticket.scheme, tenant, ctx)
            except Exception as exc:
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
                continue
            self.flushed_queries += len(ticket.queries)
            if not ticket.future.done():
                ticket.future.set_result(_stamp(answers, counts))

    async def _call(self, queries: List[Query], scheme: Any,
                    tenant: str,
                    ctx: Optional[TraceContext] = None) -> List[Answer]:
        loop = asyncio.get_running_loop()

        # run_in_executor does not carry contextvars into the worker
        # thread, so the wave context is re-activated explicitly —
        # backend spans (planner.execute, fleet.gather, engine waves)
        # then parent under the coalescer's shared wave span.
        def call() -> List[Answer]:
            with _obs.activate(ctx):
                return self._answer_fn(queries, scheme, tenant)

        return await loop.run_in_executor(self._executor, call)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Flush pending work and wait for every in-flight batch."""
        self.flush("drain")
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    def close(self) -> None:
        """Release the worker thread (idempotent; after :meth:`drain`)."""
        self._executor.shutdown(wait=False)

    def counters(self) -> Dict[str, int]:
        """JSON-able snapshot of the coalescing counters."""
        return {
            "batches": self.batches,
            "flushed_queries": self.flushed_queries,
            "coalesced_queries": self.coalesced_queries,
        }
