"""Developer tooling that ships with the library but is not part of it.

Nothing in :mod:`repro.devtools` is imported by the library proper —
the packages here sit at the top of the layer DAG and are invoked as
command-line tools (``python -m repro.devtools.lint``) by contributors
and CI, never by runtime code paths.
"""
