"""Finding renderers: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.devtools.lint.core import Finding

JSON_SCHEMA_VERSION = 1


def render_text(findings: List[Finding], files_checked: int,
                show_suppressed: bool = False) -> str:
    """GCC-style ``path:line:col: ID message`` lines plus a summary."""
    lines: List[str] = []
    active = 0
    shown_suppressed = 0
    for finding in findings:
        if finding.suppressed:
            if not show_suppressed:
                continue
            shown_suppressed += 1
            marker = " (suppressed)"
        else:
            active += 1
            marker = ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule.id} [{finding.rule.name}] "
            f"{finding.message}{marker}"
        )
    noun = "finding" if active == 1 else "findings"
    summary = f"{active} {noun} in {files_checked} files"
    if shown_suppressed:
        summary += f" (+{shown_suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: List[Finding], files_checked: int) -> str:
    """Stable machine-readable report (suppressed entries included)."""
    counts: Dict[str, int] = {}
    records = []
    for finding in findings:
        records.append({
            "path": finding.path,
            "module": finding.module,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule.id,
            "rule_name": finding.rule.name,
            "family": finding.rule.family,
            "message": finding.message,
            "suppressed": finding.suppressed,
        })
        if not finding.suppressed:
            counts[finding.rule.id] = counts.get(finding.rule.id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": records,
        "counts": counts,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
