"""Framework core: rules, findings, suppressions, and the runner.

The analyzer is deliberately self-contained (stdlib ``ast`` +
``tokenize`` only) and deliberately simple: each rule family module
exposes ``RULES`` (the :class:`Rule` objects it can emit) and a
``check(ctx)`` generator yielding ``(rule, node, message)`` triples.
This module turns those into :class:`Finding` records, applies
per-line ``# reprolint: disable=...`` pragmas, and walks file trees.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Rule:
    """One enforceable convention."""

    id: str
    name: str
    family: str
    description: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    module: str
    line: int
    col: int
    rule: Rule
    message: str
    suppressed: bool = False

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule.id)


PARSE_ERROR = Rule(
    id="E001",
    name="parse-error",
    family="framework",
    description="The file could not be parsed as Python source.",
)


# ---------------------------------------------------------------------------
# Suppression pragmas: ``# reprolint: disable=KH101,cache-augassign`` on
# the offending line.  Tokens may be rule ids, rule names, or ``all``.
# ---------------------------------------------------------------------------
_PRAGMA = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\-\s]+)")


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> lowercased suppression tokens on that line."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            names = {
                part.strip().lower()
                for part in match.group(1).replace(" ", ",").split(",")
                if part.strip()
            }
            if names:
                out.setdefault(tok.start[0], set()).update(names)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # An unparsable file is reported separately as E001.
        return {}
    return out


class ModuleContext:
    """Everything a rule needs to check one module."""

    def __init__(self, source: str, module: str, path: str = "<string>"):
        self.source = source
        self.module = module
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.suppressions = _scan_suppressions(source)

    def is_suppressed(self, line: int, rule: Rule) -> bool:
        tokens = self.suppressions.get(line)
        if not tokens:
            return False
        return ("all" in tokens
                or rule.id.lower() in tokens
                or rule.name.lower() in tokens)


# ---------------------------------------------------------------------------
# Rule registry — populated from the family modules at import time
# (see ``all_rules`` below; imported lazily to avoid a module cycle).
# ---------------------------------------------------------------------------
def _families():
    from repro.devtools.lint import aliasing, hygiene, layering, obsrules

    return (hygiene, layering, aliasing, obsrules)


def all_rules() -> Tuple[Rule, ...]:
    """Every rule the analyzer can emit, parse errors included."""
    rules: List[Rule] = [PARSE_ERROR]
    for family in _families():
        rules.extend(family.RULES)
    return tuple(rules)


def _selected(rule: Rule, select: Optional[Set[str]],
              ignore: Optional[Set[str]]) -> bool:
    keys = {rule.id.lower(), rule.name.lower()}
    if select is not None and not (keys & select):
        return False
    if ignore is not None and (keys & ignore):
        return False
    return True


def _normalize_filter(names: Optional[Iterable[str]]) -> Optional[Set[str]]:
    if names is None:
        return None
    return {n.strip().lower() for n in names if n.strip()}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def lint_source(source: str, module: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns sorted findings.

    Suppressed findings are *included*, flagged with
    ``suppressed=True`` — callers decide whether they fail the run
    (the CLI does not).
    """
    select_set = _normalize_filter(select)
    ignore_set = _normalize_filter(ignore)
    try:
        ctx = ModuleContext(source, module, path)
    except SyntaxError as exc:
        finding = Finding(
            path=path, module=module,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR, message=f"syntax error: {exc.msg}",
        )
        return [finding] if _selected(PARSE_ERROR, select_set, ignore_set) else []

    findings: List[Finding] = []
    for family in _families():
        for rule, node, message in family.check(ctx):
            if not _selected(rule, select_set, ignore_set):
                continue
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            finding = Finding(
                path=path, module=module, line=line, col=col,
                rule=rule, message=message,
            )
            if ctx.is_suppressed(line, rule):
                finding = replace(finding, suppressed=True)
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def module_name_for(path: Path) -> str:
    """Infer the dotted module name from the package layout on disk."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part == "__pycache__" or part.startswith(".")
                   for part in candidate.parts):
                continue
            yield candidate


def lint_file(path: Path, select: Optional[Iterable[str]] = None,
              ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, module_name_for(path), str(path),
                       select=select, ignore=ignore)


def lint_paths(paths: Sequence[Path], select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None
               ) -> Tuple[List[Finding], int]:
    """Lint every Python file under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted and
    include suppressed entries.
    """
    findings: List[Finding] = []
    checked = 0
    for file in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file, select=select, ignore=ignore))
    findings.sort(key=Finding.sort_key)
    return findings, checked
