"""Cache-aliasing rules (CA3xx): engine-returned vectors are read-only.

The scenario engine's ``peek_vector`` / ``source_vectors`` /
``try_delta`` / ``base_distances`` family may return the *same list
object* that sits in the shared LRU (and, under the delta strategy,
the base vector every future patch starts from).  Mutating one in
place corrupts every later query that hits the cache.  The contract:
copy before writing (``list(vec)``, ``vec.copy()``, ``vec[:]``).

The checker runs a simple forward taint pass per scope: names bound
from a getter (directly, via aliasing, or by indexing/iterating a
tainted collection) are tainted until rebound; a recognised copy
(``list(x)``, ``x.copy()``, ``x[a:b]``) produces a fresh object.
Branches are processed in source order (an over-approximation that
keeps the checker honest and predictable rather than flow-precise).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.lint.config import (
    CACHE_GETTERS,
    COPY_CALLS,
    COPY_METHODS,
    MUTATING_METHODS,
)
from repro.devtools.lint.core import ModuleContext, Rule

CA301 = Rule(
    id="CA301", name="cache-subscript-write", family="cache-aliasing",
    description="Subscript or slice assignment to a name aliasing an "
                "engine-cached vector; copy it before writing.",
)
CA302 = Rule(
    id="CA302", name="cache-augassign", family="cache-aliasing",
    description="Augmented assignment mutating a name aliasing an "
                "engine-cached vector; copy it before writing.",
)
CA303 = Rule(
    id="CA303", name="cache-mutating-call", family="cache-aliasing",
    description="In-place mutating method call on a name aliasing an "
                "engine-cached vector; copy it first.",
)

RULES = (CA301, CA302, CA303)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)

# taint map: name -> getter it came from
Taint = Dict[str, str]


def _base_name(node: ast.AST) -> Optional[str]:
    """The root ``Name`` of a ``x[i][j]``-style access chain."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _expr_taint(expr: Optional[ast.AST], taint: Taint) -> Optional[str]:
    """Getter name when ``expr`` may alias a cached vector, else None."""
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        return taint.get(expr.id)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in COPY_CALLS:
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in COPY_METHODS:
                return None
            if func.attr in CACHE_GETTERS:
                return func.attr
        return None
    if isinstance(expr, ast.Subscript):
        if isinstance(expr.slice, ast.Slice):
            return None  # a slice of a list is a fresh list
        base = _base_name(expr.value) if isinstance(expr.value, ast.Subscript) \
            else (expr.value.id if isinstance(expr.value, ast.Name) else None)
        return taint.get(base) if base is not None else None
    if isinstance(expr, ast.IfExp):
        return _expr_taint(expr.body, taint) or _expr_taint(expr.orelse, taint)
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            origin = _expr_taint(value, taint)
            if origin is not None:
                return origin
        return None
    if isinstance(expr, ast.NamedExpr):
        return _expr_taint(expr.value, taint)
    if isinstance(expr, ast.Await):
        return _expr_taint(expr.value, taint)
    return None


def _bind(target: ast.AST, origin: Optional[str], taint: Taint) -> None:
    if isinstance(target, ast.Name):
        if origin is None:
            taint.pop(target.id, None)
        else:
            taint[target.id] = origin
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind(elt, origin, taint)
    elif isinstance(target, ast.Starred):
        _bind(target.value, origin, taint)
    # Subscript / Attribute targets bind no name.


def _scan_mutations(stmt: ast.stmt, taint: Taint
                    ) -> Iterator[Tuple[Rule, ast.AST, str]]:
    """Flag in-place writes in one statement under the current taint."""

    def msg(name: str, origin: str, what: str) -> str:
        return (f"{what} mutates '{name}', which may alias a cached vector "
                f"returned by {origin}(); copy it first "
                f"(e.g. list({name}) or {name}.copy())")

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                name = _base_name(target)
                if name is not None and name in taint:
                    what = ("slice assignment"
                            if isinstance(target.slice, ast.Slice)
                            else "subscript assignment")
                    yield CA301, target, msg(name, taint[name], what)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                name = _base_name(target)
                if name is not None and name in taint:
                    yield CA301, target, msg(name, taint[name], "del")
    elif isinstance(stmt, ast.AugAssign):
        target = stmt.target
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Subscript):
            name = _base_name(target)
        if name is not None and name in taint:
            yield CA302, target, msg(name, taint[name], "augmented assignment")

    # Mutating method calls can hide anywhere in the statement's own
    # expressions (nested statements are scanned by _process itself).
    for expr in _own_exprs(stmt):
        yield from _scan_calls(expr, taint, msg)


def _own_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions evaluated by ``stmt`` itself, not by nested bodies."""
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
        return []
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    return [node for node in ast.iter_child_nodes(stmt)
            if isinstance(node, ast.expr)]


def _scan_calls(expr: ast.expr, taint: Taint, msg
                ) -> Iterator[Tuple[Rule, ast.AST, str]]:
    for node in ast.walk(expr):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS):
            name = _base_name(node.func.value)
            if name is not None and name in taint:
                yield (CA303, node,
                       msg(name, taint[name], f".{node.func.attr}()"))


def _process(stmts: List[ast.stmt], taint: Taint
             ) -> Iterator[Tuple[Rule, ast.AST, str]]:
    for stmt in stmts:
        if isinstance(stmt, _FUNCS + (ast.ClassDef,)):
            continue  # nested scopes are checked independently

        yield from _scan_mutations(stmt, taint)

        if isinstance(stmt, ast.Assign):
            origin = _expr_taint(stmt.value, taint)
            for target in stmt.targets:
                _bind(target, origin, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            _bind(stmt.target, _expr_taint(stmt.value, taint), taint)
        elif isinstance(stmt, ast.For):
            _bind(stmt.target, _expr_taint(stmt.iter, taint), taint)
            yield from _process(stmt.body, taint)
            yield from _process(stmt.orelse, taint)
        elif isinstance(stmt, ast.While):
            yield from _process(stmt.body, taint)
            yield from _process(stmt.orelse, taint)
        elif isinstance(stmt, ast.If):
            yield from _process(stmt.body, taint)
            yield from _process(stmt.orelse, taint)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            yield from _process(stmt.body, taint)
            for handler in stmt.handlers:
                yield from _process(handler.body, taint)
            yield from _process(stmt.orelse, taint)
            yield from _process(stmt.finalbody, taint)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    _bind(item.optional_vars,
                          _expr_taint(item.context_expr, taint), taint)
            yield from _process(stmt.body, taint)


def _scopes(tree: ast.Module) -> Iterator[List[ast.stmt]]:
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, _FUNCS):
            yield node.body


def check(ctx: ModuleContext) -> Iterator[Tuple[Rule, ast.AST, str]]:
    for body in _scopes(ctx.tree):
        taint: Taint = {}
        yield from _process(body, taint)
