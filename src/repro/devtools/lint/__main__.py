"""Module entry point for ``python -m repro.devtools.lint``."""

import sys

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
