"""Command-line front end: ``python -m repro.devtools.lint [paths...]``.

Exit codes: 0 clean, 1 active findings, 2 usage errors (argparse).
Suppressed findings never fail the run.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.devtools.lint.core import all_rules, lint_paths
from repro.devtools.lint.reporters import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST analyzer for kernel hygiene, layering, and the "
                    "cache-aliasing contract (see CONTRIBUTING.md).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids/names to enable")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids/names to disable")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print pragma-suppressed findings (text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:<24} [{rule.family}] "
                  f"{rule.description}")
        return 0

    select = options.select.split(",") if options.select else None
    ignore = options.ignore.split(",") if options.ignore else None
    paths = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    findings, files_checked = lint_paths(paths, select=select, ignore=ignore)
    if options.format == "json":
        print(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked,
                          show_suppressed=options.show_suppressed))
    active = sum(1 for f in findings if not f.suppressed)
    return 1 if active else 0
