"""``reprolint`` — the repo's AST static analyzer.

Three rule families enforce the conventions the PR 1–5 performance
story depends on (see ``CONTRIBUTING.md`` for the full catalogue):

* **kernel hygiene** (KH1xx) — hot kernels listed in the registry keep
  attribute/global lookups and allocation out of their inner loops;
* **layering** (LD2xx) — module-level imports respect the declared
  layer DAG, and nothing internal calls the deprecated engine shims;
* **cache aliasing** (CA3xx) — vectors returned by the engine's cache
  getters are read-only until copied.

Run ``python -m repro.devtools.lint src/`` (exit 1 on findings), or use
:func:`lint_source` / :func:`lint_paths` programmatically.  Suppress a
single line with ``# reprolint: disable=RULE`` plus a justification.
"""

from repro.devtools.lint.core import (
    Finding,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
