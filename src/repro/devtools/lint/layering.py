"""Layering rules (LD2xx): imports must respect the declared layer DAG.

Only module-level imports are checked — a deferred (function-level)
import is the sanctioned escape hatch for cross-layer conveniences,
because it cannot create a load-time cycle and costs nothing until
first use.  The deprecated-shim rule, by contrast, applies everywhere:
internal code must never call the PR-4 engine shims, deferred or not.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.lint.config import DEPRECATED_SHIMS, layer_rank
from repro.devtools.lint.core import ModuleContext, Rule

LD201 = Rule(
    id="LD201", name="layer-back-edge", family="layering",
    description="Module-level import from a higher layer of the declared "
                "DAG; invert the dependency or defer the import into the "
                "function that needs it.",
)
LD202 = Rule(
    id="LD202", name="deprecated-shim-call", family="layering",
    description="Call to a deprecated PR-4 engine shim; enter through "
                "query.Session / query.Planner or the kernel-layer engine "
                "surface instead.",
)

RULES = (LD201, LD202)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Import statements executed at module load time.

    Descends through ``if``/``try`` (guarded imports still run at load
    time) but not into function or class bodies.
    """

    def scan(stmts: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in stmts:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                yield stmt
            elif isinstance(stmt, ast.If):
                yield from scan(stmt.body)
                yield from scan(stmt.orelse)
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                yield from scan(stmt.body)
                for handler in stmt.handlers:
                    yield from scan(handler.body)
                yield from scan(stmt.orelse)
                yield from scan(stmt.finalbody)

    yield from scan(tree.body)


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> Optional[str]:
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def _import_targets(stmt: ast.stmt, module: str,
                    is_package: bool) -> List[str]:
    """Dotted modules a statement imports (best-effort resolution)."""
    if isinstance(stmt, ast.Import):
        return [alias.name for alias in stmt.names]
    assert isinstance(stmt, ast.ImportFrom)
    if stmt.level:
        resolved = _resolve_relative(module, is_package, stmt.level, stmt.module)
        base = resolved
    else:
        base = stmt.module
    if base is None:
        return []
    targets = [base]
    if base == "repro":
        # ``from repro import spt`` pulls in the submodule: rank the
        # submodule, not the top-rank facade.
        targets = [f"repro.{alias.name}" for alias in stmt.names
                   if alias.name != "*"] or [base]
    return targets


def check(ctx: ModuleContext) -> Iterator[Tuple[Rule, ast.AST, str]]:
    own_rank = layer_rank(ctx.module)
    is_package = ctx.path.endswith("__init__.py")
    if own_rank is not None:
        for stmt in _module_level_imports(ctx.tree):
            for target in _import_targets(stmt, ctx.module, is_package):
                target_rank = layer_rank(target)
                if target_rank is None or target_rank <= own_rank:
                    continue
                yield (LD201, stmt,
                       f"'{ctx.module}' (layer {own_rank}) imports "
                       f"'{target}' (layer {target_rank}) at module level; "
                       "this is a back-edge in the declared layer DAG — "
                       "invert the dependency or defer the import")

    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DEPRECATED_SHIMS):
            yield (LD202, node,
                   f"call to deprecated engine shim '.{node.func.attr}()'; "
                   "internal code must use query.Session / query.Planner "
                   "or the kernel-layer engine surface")
