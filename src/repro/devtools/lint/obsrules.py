"""Observability-hygiene rules (OB4xx): no obs in hot kernels.

The observability layer's overhead contract (see :mod:`repro.obs`) is
that instrumentation lives at *wave seams* — one guarded call per
batched wave, per delta repair, per coalescer flush — never inside the
kernel inner loops the PR 1–5 speedups live in.  A single
``obs.inc(...)`` per visited arc would cost more than the traversal.

OB401 enforces that mechanically: any reference to the
:mod:`repro.obs` plane (a call through an ``obs`` module alias, a
directly imported helper, or even reading ``obs.ENABLED``) inside a
function matched by the hot-path registries
(:data:`~repro.devtools.lint.config.HOT_PATHS`,
:data:`~repro.devtools.lint.config.VECTORIZED_HOT_PATHS`) is flagged.
Hot kernels stay instrumentation-free; their callers record.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator, List, Set, Tuple

from repro.devtools.lint.config import HOT_PATHS, VECTORIZED_HOT_PATHS
from repro.devtools.lint.core import ModuleContext, Rule

OB401 = Rule(
    id="OB401", name="hot-obs-call", family="obs-hygiene",
    description="Observability use inside a hot-path kernel; record at "
                "the wave seam (the kernel's caller) instead.",
)

RULES = (OB401,)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _obs_bindings(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names bound to the obs plane, module-wide.

    Returns ``(aliases, members)``: single names that refer to the
    ``repro.obs`` module itself (``from repro import obs [as _obs]``,
    ``import repro.obs as o``) and names bound to one of its members
    (``from repro.obs import inc [as bump]``).  Function-level
    deferred imports count too — deferring an import doesn't make a
    hot loop any cheaper.
    """
    aliases: Set[str] = set()
    members: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (alias.name == "repro.obs"
                        or alias.name.startswith("repro.obs.")):
                    if alias.asname is not None:
                        aliases.add(alias.asname)
                    else:
                        # ``import repro.obs`` binds ``repro``; the
                        # dotted-use case is matched separately.
                        aliases.add("repro.obs")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                for alias in node.names:
                    if alias.name == "obs":
                        aliases.add(alias.asname or alias.name)
            elif node.module and (node.module == "repro.obs"
                                  or node.module.startswith("repro.obs.")):
                for alias in node.names:
                    members.add(alias.asname or alias.name)
    return aliases, members


def _hot_qualnames(module: str) -> List[str]:
    patterns: List[str] = []
    for entry in HOT_PATHS + VECTORIZED_HOT_PATHS:
        mod_pat, _, qual_pat = entry.partition(":")
        if fnmatch(module, mod_pat):
            patterns.append(qual_pat)
    return patterns


def _functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCS):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a pure Name/Attribute chain, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def check(ctx: ModuleContext) -> Iterator[Tuple[Rule, ast.AST, str]]:
    patterns = _hot_qualnames(ctx.module)
    if not patterns:
        return
    aliases, members = _obs_bindings(ctx.tree)
    if not aliases and not members:
        return

    def msg(qual: str, use: str) -> str:
        return (f"hot kernel '{qual}' touches the observability plane "
                f"via '{use}'; record at the wave seam (the kernel's "
                f"caller), not in the kernel")

    for qual, fn in _functions(ctx.tree):
        if not any(fnmatch(qual, pat) for pat in patterns):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                if node.id in aliases or node.id in members:
                    yield OB401, node, msg(qual, node.id)
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                # The ``import repro.obs`` spelling: flag the chain
                # node that *is* the module reference (``repro.obs``),
                # exactly once per use.
                if _dotted(node) in aliases:
                    yield OB401, node, msg(qual, _dotted(node))
