"""Single source of truth for what ``reprolint`` enforces.

Three registries, one per rule family:

* :data:`LAYERS` — the declared layer DAG.  The order here is the
  *enforced* architecture: a module may import (at module level) only
  from its own layer or below.  Function-level (deferred) imports are
  the sanctioned escape hatch for the handful of genuinely cyclic
  conveniences (``graphs.io`` exporting labelings, ``Graph.csr()``),
  because they cost an import only on first use and cannot create an
  import cycle at module-load time.
* :data:`HOT_PATHS` — the hot-path registry: ``"module:qualname"``
  :mod:`fnmatch` patterns naming the functions whose inner loops carry
  the PR 1–5 speedup story.  Kernel-hygiene rules fire only inside
  these.
* :data:`CACHE_GETTERS` / :data:`DEPRECATED_SHIMS` — the engine
  surface the cache-aliasing and layering rules key on.
"""

from __future__ import annotations

from typing import Optional, Tuple

# ---------------------------------------------------------------------------
# Layer DAG.  Rank 0 is the bottom; a module whose first package segment
# sits at rank r may import, at module level, only segments of rank <= r.
# The order differs deliberately from a naive reading of the package
# list: ``core`` (restoration schemes, weight perturbations) *consumes*
# ``spt`` trees, the scenario engine consumes ``incremental`` repair
# kernels, and since PR 4 the domain packages (oracles, preservers,
# replacement, ...) enter through ``query.Session`` — so ``query`` sits
# below them, not above.
# ---------------------------------------------------------------------------
LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("exceptions",),
    # The observability plane sits at the very bottom (stdlib-only, no
    # repro imports beyond exceptions-level hygiene) so every layer —
    # kernel dispatch included — may instrument through it at module
    # level.  Its use inside hot kernels is separately forbidden by
    # OB401.
    ("obs",),
    ("graphs",),
    # The kernel-backend seam sits below ``spt``: the public kernels
    # dispatch *down* into it, and the pyloops backend's upward binding
    # of the loop implementations is a function-level deferred import.
    ("backends",),
    ("spt",),
    ("core", "dag"),
    ("incremental",),
    ("scenarios",),
    ("query",),
    # The engine fleet shards ``query.Session`` streams across worker
    # processes — it builds sessions, so it sits strictly above
    # ``query`` and below the domain packages (which may one day adopt
    # a fleet the way they adopt a session).
    ("fleet",),
    # The scenario service is a network front over a session or a
    # fleet: it builds neither graphs nor kernels, only serves them,
    # so it sits directly above ``fleet`` and below the domain
    # packages (a served domain consumer connects as a client).
    ("service",),
    ("weighted", "oracles", "preservers", "replacement",
     "spanners", "labeling", "distributed"),
    # Top of the DAG: entry points and tooling may import anything.
    # "" is the root ``repro`` facade package itself.
    ("analysis", "cli", "devtools", "__main__", ""),
)

_SEGMENT_RANK = {
    segment: rank
    for rank, family in enumerate(LAYERS)
    for segment in family
}


def layer_rank(module: str) -> Optional[int]:
    """Rank of a dotted module name, or None when outside the DAG.

    ``repro.spt.fastpaths`` -> rank of ``spt``; ``repro`` itself is the
    top-rank facade; non-``repro`` modules and unknown segments return
    None (not checked).
    """
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    segment = parts[1] if len(parts) > 1 else ""
    return _SEGMENT_RANK.get(segment)


# ---------------------------------------------------------------------------
# Hot-path registry: ``"module-pattern:qualname-pattern"`` (fnmatch on
# both sides).  Keep this list tight — hygiene findings are only as
# credible as the claim that the function is genuinely hot.
# ---------------------------------------------------------------------------
HOT_PATHS: Tuple[str, ...] = (
    # CSR traversal kernels: one call per (scenario, source) wave.
    "repro.spt.fastpaths:csr_*",
    "repro.spt.batched:csr_*",
    "repro.spt.batched:_blocked_rows",
    # Delta-repair kernels: one call per patched scenario.
    "repro.incremental.repair:csr_*",
    "repro.incremental.affected:affected_region",
    # Engine inner loops: one pass per query batch / fault set.
    "repro.scenarios.engine:ScenarioEngine._evaluate_pairs",
    "repro.scenarios.engine:ScenarioEngine.source_vectors",
    "repro.scenarios.engine:TreeFaultIndex.cut_intervals",
    "repro.scenarios.engine:TreeFaultIndex.orphans_of_intervals",
    "repro.scenarios.engine:TreeFaultIndex.fault_free_vertices",
)

# ---------------------------------------------------------------------------
# Vectorized hot paths: ndarray kernels, same per-call heat as
# HOT_PATHS but a different hygiene profile — whole-array temporaries
# are the *point*, so the allocation rules (KH103/KH104/KH106) don't
# apply, while attribute loads off module globals in inner loops
# (``np.minimum.at`` unhoisted) still do (KH101, relaxed to
# module-global bases) and so does unhoisted global access (KH102).
# ---------------------------------------------------------------------------
VECTORIZED_HOT_PATHS: Tuple[str, ...] = (
    "repro.backends.vectorized:csr_*",
    "repro.backends.vectorized:_weighted_dist",
    "repro.backends.vectorized:_repair_region",
    "repro.backends.vectorized:_arc_ids",
)

# ---------------------------------------------------------------------------
# Cache-aliasing contract.  Methods whose return value may alias a
# vector held in the engine's shared LRU (or its base-distance cache).
# Anything bound from one of these is read-only until copied.
# ---------------------------------------------------------------------------
CACHE_GETTERS: Tuple[str, ...] = (
    "peek_vector",
    "peek_any_vector",
    "try_delta",
    "source_vector",
    "source_vectors",
    "base_distances",
    "distance_vectors",
)

# Calls recognised as producing a fresh object (clearing taint).
COPY_CALLS: Tuple[str, ...] = ("list", "sorted", "tuple", "dict", "set", "frozenset")
COPY_METHODS: Tuple[str, ...] = ("copy", "deepcopy")

# Methods that mutate their receiver in place.
MUTATING_METHODS: Tuple[str, ...] = (
    "sort", "reverse", "append", "extend", "insert", "remove", "pop", "clear",
)

# The five PR-4 deprecated engine shims: warn-and-delegate wrappers kept
# for external callers.  Internal modules must use Session/Planner or
# the kernel-layer surface instead.
DEPRECATED_SHIMS: Tuple[str, ...] = (
    "replacement_distances",
    "evaluate_pairs",
    "run_pairs",
    "distance_vectors",
    "connectivity",
)
