"""Kernel-hygiene rules (KH1xx): keep hot inner loops allocation-free.

These rules fire only inside functions matched by the hot-path
registry (:data:`repro.devtools.lint.config.HOT_PATHS`).  The CPython
cost model behind them: every ``obj.attr`` load is a dict probe (two
for methods), every global-name load is a second dict probe after the
locals array misses, and every display/comprehension is an allocation
— all per loop iteration unless hoisted to a local before the loop.

Path sensitivity is deliberately coarse but honest:

* a load is only flagged on the *unconditional* path of its innermost
  enclosing loop — code under ``if``/``except`` guards runs on the
  rare branch and hoisting it would pessimise the common one;
* allocation (KH103) is only flagged in *innermost* loops (loops
  containing no other loop), where per-iteration allocation multiplies
  with the full trip count;
* ``For`` iterables are evaluated once and are treated as outside
  their loop; ``While`` tests run every iteration and are inside.

Two kernel classes, two hygiene profiles.  Functions matched by
:data:`~repro.devtools.lint.config.HOT_PATHS` are ``loops`` kernels —
every rule applies.  Functions matched by
:data:`~repro.devtools.lint.config.VECTORIZED_HOT_PATHS` are
``vectorized`` (ndarray) kernels: whole-array temporaries are the
point, so the allocation rules (KH103/KH104/KH106) are off, and
KH101 narrows to attribute loads whose base is a *module global*
(``np.minimum.at`` unhoisted in a level loop) — loads off locals
(``frontier.size``) are O(1) probes next to O(m) array ops and not
worth a finding.  KH102 and KH105 apply to both classes.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.config import HOT_PATHS, VECTORIZED_HOT_PATHS
from repro.devtools.lint.core import ModuleContext, Rule

KH101 = Rule(
    id="KH101", name="hot-attr-load", family="kernel-hygiene",
    description="Attribute load repeated on the unconditional path of a "
                "loop in a hot kernel; bind it to a local before the loop.",
)
KH102 = Rule(
    id="KH102", name="hot-global-load", family="kernel-hygiene",
    description="Module-global name loaded on the unconditional path of a "
                "loop in a hot kernel; bind it to a local before the loop.",
)
KH103 = Rule(
    id="KH103", name="hot-loop-alloc", family="kernel-hygiene",
    description="Container display or comprehension allocated on the "
                "unconditional path of an innermost loop in a hot kernel.",
)
KH104 = Rule(
    id="KH104", name="hot-list-concat", family="kernel-hygiene",
    description="List concatenation with a display inside a loop in a hot "
                "kernel allocates a fresh list per iteration.",
)
KH105 = Rule(
    id="KH105", name="hot-try-in-loop", family="kernel-hygiene",
    description="try/except inside a loop in a hot kernel pays exception-"
                "machinery setup per iteration; hoist or restructure.",
)
KH106 = Rule(
    id="KH106", name="hot-list-membership", family="kernel-hygiene",
    description="Membership test against a list display in a hot kernel is "
                "a linear scan of a freshly allocated list; use a set or "
                "tuple constant.",
)

RULES = (KH101, KH102, KH103, KH104, KH105, KH106)

_LOOPS = (ast.For, ast.While)
_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_DISPLAYS = (ast.List, ast.Dict, ast.Set,
             ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _hot_patterns(module: str) -> List[Tuple[str, str]]:
    """``(qualname-pattern, kernel-class)`` pairs applying to ``module``.

    The kernel class is ``"loops"`` for :data:`HOT_PATHS` entries and
    ``"vectorized"`` for :data:`VECTORIZED_HOT_PATHS` ones; a function
    matched by both registries gets the loops (strict) profile.
    """
    out = []
    for entry in HOT_PATHS:
        mod_pat, _, qual_pat = entry.partition(":")
        if fnmatch(module, mod_pat):
            out.append((qual_pat, "loops"))
    for entry in VECTORIZED_HOT_PATHS:
        mod_pat, _, qual_pat = entry.partition(":")
        if fnmatch(module, mod_pat):
            out.append((qual_pat, "vectorized"))
    return out


def _functions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, node)`` for every function in the module."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCS):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def _child_in(parent: ast.AST, field: str, child: ast.AST) -> bool:
    value = getattr(parent, field, None)
    if value is child:
        return True
    return isinstance(value, list) and any(item is child for item in value)


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(root)
        for child in ast.iter_child_nodes(parent)
    }


def _annotation_nodes(root: ast.AST) -> Set[ast.AST]:
    """All nodes inside annotation expressions (never evaluated hot)."""
    out: Set[ast.AST] = set()
    for node in ast.walk(root):
        exprs: List[Optional[ast.AST]] = []
        if isinstance(node, ast.AnnAssign):
            exprs.append(node.annotation)
        elif isinstance(node, ast.arg):
            exprs.append(node.annotation)
        elif isinstance(node, _FUNCS):
            exprs.append(node.returns)
        for expr in exprs:
            if expr is not None:
                out.update(ast.walk(expr))
    return out


def _module_globals(tree: ast.Module) -> Set[str]:
    """Names bound at module scope (imports, assignments, defs)."""
    names: Set[str] = set()

    def bind_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    def scan(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign,)):
                for target in stmt.targets:
                    bind_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                bind_target(stmt.target)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(stmt, (_FUNCS[0], _FUNCS[1], ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.If):
                scan(stmt.body)
                scan(stmt.orelse)
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                scan(stmt.body)
                for handler in stmt.handlers:
                    scan(handler.body)
                scan(stmt.orelse)
                scan(stmt.finalbody)
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                if isinstance(stmt, ast.For):
                    bind_target(stmt.target)
                scan(stmt.body)
    scan(tree.body)
    return names


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names bound anywhere in the function (params, stores, defs)."""
    names: Set[str] = set()
    arguments = fn.args
    for arg in (arguments.posonlyargs + arguments.args + arguments.kwonlyargs):
        names.add(arg.arg)
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (_FUNCS[0], _FUNCS[1], ast.ClassDef)) and node is not fn:
            names.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.difference_update(node.names)
    return names


def _enclosing_loops(node: ast.AST, parents: Dict[ast.AST, ast.AST],
                     fn: ast.AST) -> List[ast.AST]:
    """Loops enclosing ``node`` within ``fn``, innermost first.

    A ``For`` encloses only its ``target``/``body`` (the iterable and
    ``orelse`` are evaluated once); a ``While`` encloses its ``test``
    and ``body``.
    """
    loops: List[ast.AST] = []
    child = node
    parent = parents.get(child)
    while parent is not None and child is not fn:
        if isinstance(parent, ast.For):
            if _child_in(parent, "target", child) or _child_in(parent, "body", child):
                loops.append(parent)
        elif isinstance(parent, ast.While):
            if _child_in(parent, "test", child) or _child_in(parent, "body", child):
                loops.append(parent)
        child, parent = parent, parents.get(parent)
    return loops


def _is_conditional(node: ast.AST, loop: ast.AST,
                    parents: Dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` sits on a guarded branch within ``loop``."""
    child = node
    parent = parents.get(child)
    while parent is not None and child is not loop:
        if isinstance(parent, ast.If):
            if _child_in(parent, "body", child) or _child_in(parent, "orelse", child):
                return True
        elif isinstance(parent, ast.IfExp):
            if parent.body is child or parent.orelse is child:
                return True
        elif isinstance(parent, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            if _child_in(parent, "handlers", child) or _child_in(parent, "orelse", child):
                return True
        elif isinstance(parent, ast.ExceptHandler):
            return True
        elif isinstance(parent, ast.BoolOp):
            if any(item is child for item in parent.values[1:]):
                return True
        child, parent = parent, parents.get(parent)
    return False


def _stored_in(loop: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names


def _is_innermost(loop: ast.AST) -> bool:
    return not any(
        isinstance(node, _LOOPS) and node is not loop for node in ast.walk(loop)
    )


def check(ctx: ModuleContext) -> Iterator[Tuple[Rule, ast.AST, str]]:
    patterns = _hot_patterns(ctx.module)
    if not patterns:
        return
    globals_ = _module_globals(ctx.tree)
    for qual, fn in _functions(ctx.tree):
        classes = {klass for pat, klass in patterns if fnmatch(qual, pat)}
        if not classes:
            continue
        klass = "loops" if "loops" in classes else "vectorized"
        yield from _check_hot_function(ctx, qual, fn, globals_, klass)


def _check_hot_function(ctx: ModuleContext, qual: str, fn: ast.AST,
                        globals_: Set[str], klass: str = "loops"
                        ) -> Iterator[Tuple[Rule, ast.AST, str]]:
    parents = _parent_map(fn)
    skip = _annotation_nodes(fn)
    locals_ = _local_bindings(fn)
    stored_cache: Dict[ast.AST, Set[str]] = {}
    innermost_cache: Dict[ast.AST, bool] = {}

    def stored(loop: ast.AST) -> Set[str]:
        if loop not in stored_cache:
            stored_cache[loop] = _stored_in(loop)
        return stored_cache[loop]

    def innermost(loop: ast.AST) -> bool:
        if loop not in innermost_cache:
            innermost_cache[loop] = _is_innermost(loop)
        return innermost_cache[loop]

    for node in ast.walk(fn):
        if node in skip:
            continue

        if isinstance(node, ast.Try):
            if _enclosing_loops(node, parents, fn):
                yield (KH105, node,
                       f"try/except inside a loop in hot kernel '{qual}'; "
                       "the setup cost is paid every iteration")
            continue

        if isinstance(node, ast.Compare):
            if klass == "vectorized":
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if (isinstance(op, (ast.In, ast.NotIn))
                        and isinstance(comparator, (ast.List, ast.ListComp))):
                    yield (KH106, comparator,
                           f"membership test against a list in hot kernel "
                           f"'{qual}'; use a set/frozenset or tuple constant")
            continue

        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if klass == "vectorized":
                continue
            if isinstance(node.left, (ast.List, ast.ListComp)) or \
                    isinstance(node.right, (ast.List, ast.ListComp)):
                loops = _enclosing_loops(node, parents, fn)
                if loops and not _is_conditional(node, loops[0], parents):
                    yield (KH104, node,
                           f"list concatenation inside a loop in hot kernel "
                           f"'{qual}' allocates a new list per iteration")
            continue

        if isinstance(node, _DISPLAYS):
            if klass == "vectorized":
                continue
            if isinstance(node, (ast.List, ast.Set)) and \
                    not isinstance(getattr(node, "ctx", ast.Load()), ast.Load):
                continue
            loops = _enclosing_loops(node, parents, fn)
            if (loops and innermost(loops[0])
                    and not _is_conditional(node, loops[0], parents)):
                kind = type(node).__name__
                yield (KH103, node,
                       f"{kind} allocated every iteration of an innermost "
                       f"loop in hot kernel '{qual}'; hoist it or restructure")
            continue

        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load) \
                and isinstance(node.value, ast.Name):
            base = node.value.id
            if klass == "vectorized" and (base not in globals_
                                          or base in locals_):
                # ndarray-local attribute probes are O(1) beside the
                # O(m) array ops; only unhoisted module-global bases
                # (an `np.minimum.at` left in a level loop) stay hot.
                continue
            loops = _enclosing_loops(node, parents, fn)
            if not loops:
                continue
            loop = loops[0]
            if base in stored(loop):
                continue
            if _is_conditional(node, loop, parents):
                continue
            yield (KH101, node,
                   f"'{base}.{node.attr}' is looked up every iteration of a "
                   f"loop in hot kernel '{qual}'; bind it to a local before "
                   "the loop")
            continue

        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in globals_ or node.id in locals_:
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # the attribute rule owns dotted loads
            loops = _enclosing_loops(node, parents, fn)
            if not loops:
                continue
            if _is_conditional(node, loops[0], parents):
                continue
            yield (KH102, node,
                   f"module global '{node.id}' is re-resolved every iteration "
                   f"of a loop in hot kernel '{qual}'; bind it to a local "
                   "before the loop")
