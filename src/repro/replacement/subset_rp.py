"""Algorithm 1 — subset replacement paths (Theorems 3 / 29).

Given a graph ``G`` and sources ``S`` (|S| = σ), report, for every pair
``s1, s2 ∈ S`` and every edge ``e`` on the selected ``s1 ~> s2``
shortest path, the replacement distance ``dist_{G \\ e}(s1, s2)``.

The algorithm is exactly the paper's:

1. build a consistent, stable, 1-restorable RPTS ``pi`` (an
   antisymmetric tiebreaking weight function, Theorem 20);
2. for each ``s ∈ S`` compute the selected out-tree ``T_s`` — σ
   Dijkstra runs, the ``O(σ m)`` term;
3. for each pair, solve single-pair replacement paths *inside the
   union* ``T_{s1} ∪ T_{s2}`` — a graph with only O(n) edges — via the
   candidate sweep, the ``Õ(σ² n)`` term.

Correctness (Theorem 29): 1-restorability promises that for any failing
edge some optimal replacement path decomposes into ``pi(s1, x)`` and
``pi(s2, x)``, both of which live inside the two trees; so replacement
distances measured in the union equal those in ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph
from repro.query.queries import VectorQuery
from repro.query.session import Session
from repro.replacement.single_pair import candidate_sweep
from repro.core.scheme import RestorableTiebreaking
from repro.spt.batched import csr_dijkstra_flat_many
from repro.spt.bfs import UNREACHABLE
from repro.spt.paths import Path
from repro.spt.trees import ShortestPathTree


@dataclass
class SubsetRPResult:
    """Output of :func:`subset_replacement_paths`.

    Attributes
    ----------
    sources:
        The source set, sorted.
    paths:
        The selected ``s1 ~> s2`` path per pair (``s1 < s2``).
    distances:
        Per pair, a map from each edge of the selected path to
        ``dist_{G \\ e}(s1, s2)`` (``-1`` if the edge disconnects).
    union_sizes:
        Diagnostic: edge count of each pair's tree union, confirming
        the O(n) bound the runtime analysis leans on.
    """

    sources: List[int]
    paths: Dict[Tuple[int, int], Path] = field(default_factory=dict)
    distances: Dict[Tuple[int, int], Dict[Edge, int]] = field(
        default_factory=dict
    )
    union_sizes: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def query(self, s1: int, s2: int, e: Edge) -> int:
        """Replacement distance for a pair under one failing edge.

        Edges off the selected path leave the distance unchanged
        (stability), so those queries return the fault-free length.
        """
        key = (min(s1, s2), max(s1, s2))
        if key not in self.paths:
            raise GraphError(f"pair {key} not in result")
        per_edge = self.distances[key]
        if e in per_edge:
            return per_edge[e]
        return self.paths[key].hops


def _tree_union_graph(n: int, *trees) -> Graph:
    """A standalone graph on the same ids holding the trees' edge union."""
    union = Graph(n)
    for tree in trees:
        for u, v in tree.edges():
            union.add_edge(u, v)
    return union


def subset_replacement_paths(
    graph: Graph,
    sources: Iterable[int],
    scheme: Optional[RestorableTiebreaking] = None,
    seed: int = 0,
    session: Optional[Session] = None,
) -> SubsetRPResult:
    """Run Algorithm 1.  See the module docstring for the construction.

    Parameters
    ----------
    graph:
        Undirected unweighted input graph.
    sources:
        The subset ``S``.
    scheme:
        A prebuilt 1-restorable scheme to reuse (e.g. across repeated
        calls in a benchmark); a fresh random one is built otherwise.
    seed:
        Seed for the fresh scheme.
    session:
        Optional shared :class:`~repro.query.session.Session` over
        ``graph``.  When given, the pair-connectivity gating goes
        through it as fault-free
        :class:`~repro.query.queries.VectorQuery` probes (one per
        connected component met, answered from — and warming — the
        engine's unbounded base-distance cache; the bounded LRU is
        untouched).  Without one, gating uses the already-built scheme
        trees for free; no throwaway session is constructed.
    """
    source_list = sorted(set(sources))
    for s in source_list:
        if not graph.has_vertex(s):
            raise GraphError(f"source {s} not in graph")
    if scheme is None:
        scheme = RestorableTiebreaking.build(graph, f=1, seed=seed)

    trees = {s: scheme.tree(s) for s in source_list}
    weights = scheme.weights

    # Which pairs are connected at all?  A pair is solvable iff its
    # sources share a component.  The scheme trees just built answer
    # that for free (a selected tree spans its root's component); a
    # caller-provided session answers it from (and warms) the shared
    # base-distance cache instead — one fault-free VectorQuery per
    # component representative, nothing if the cache is already warm.
    if session is not None:
        session = Session.adopt(graph, session=session)
        component: Dict[int, int] = {}
        for s in source_list:
            if s in component:
                continue
            vector = session.answer_one(VectorQuery(s)).value
            for t in source_list:
                if t not in component and vector[t] != UNREACHABLE:
                    component[t] = s

        def solvable(s1: int, s2: int) -> bool:
            return component[s1] == component[s2]
    else:
        def solvable(s1: int, s2: int) -> bool:
            return trees[s1].reaches(s2)

    result = SubsetRPResult(sources=source_list)
    for i, s1 in enumerate(source_list):
        for s2 in source_list[i + 1:]:
            if not solvable(s1, s2):
                continue
            union = _tree_union_graph(graph.n, trees[s1], trees[s2])
            # Flatten the scheme's tiebreaking weights into the union
            # snapshot once, then compute both selected trees in one
            # amortised flat-Dijkstra batch: the pair's two runs share
            # the settled/tentative scratch and read weights by array
            # index instead of one Python weight() call per arc.  ATW
            # weights make shortest paths unique, so the selections
            # are identical to sweeping the Graph directly.
            wcsr = union.csr().with_arc_weights(weights.weight)
            (d1, p1), (d2, p2) = csr_dijkstra_flat_many(
                wcsr, None, [s1, s2]
            )
            path, distances = candidate_sweep(
                wcsr, s1, s2, wcsr.arc_weight, weights.scale,
                trees=(
                    ShortestPathTree(s1, p1, d1, weights.scale),
                    ShortestPathTree(s2, p2, d2, weights.scale),
                ),
            )
            key = (s1, s2)
            result.paths[key] = path
            result.distances[key] = distances
            result.union_sizes[key] = union.m
    return result
