"""The sourcewise setting (Chechik–Cohen): ``{s} x V`` replacement paths.

Section 1.1 recounts the sourcewise problem: report
``dist_{G \\ e}(s, v)`` for every vertex ``v`` and every edge ``e`` on
the selected ``s ~> v`` path.  This module answers it with the
library's machinery: one BFS per *selected tree edge*, optionally run
inside the 1-FT ``{s} x V`` preserver (correct by Definition 4, and on
dense graphs far fewer edges than ``G``).  The output format matches
:func:`repro.replacement.baselines.naive_sourcewise_replacement_distances`
so the test-suite can diff them entry by entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.graphs.base import Edge, Graph, canonical_edge
from repro.core.scheme import RestorableTiebreaking
from repro.oracles.dso import SourcewiseDSO


def sourcewise_replacement_distances(
    graph: Graph,
    source: int,
    scheme: Optional[RestorableTiebreaking] = None,
    use_preserver: bool = True,
    seed: int = 0,
) -> Dict[Tuple[int, Edge], int]:
    """``{(v, e): dist_{G \\ e}(source, v)}`` for all selected-path faults.

    Parameters
    ----------
    graph:
        Undirected unweighted input.
    source:
        The single source ``s``.
    scheme:
        Optional prebuilt restorable scheme (shared across calls).
    use_preserver:
        Run the per-fault BFS inside the 1-FT ``{s} x V`` preserver
        (default) rather than the full graph.
    seed:
        Seed for a fresh scheme.
    """
    oracle = SourcewiseDSO(
        graph, [source], scheme=scheme,
        use_preserver=use_preserver, seed=seed,
    )
    if scheme is None:
        scheme = oracle.scheme  # reuse the one the oracle built
    tree = scheme.tree(source)
    out: Dict[Tuple[int, Edge], int] = {}
    for v in tree.reached_vertices():
        if v == source:
            continue
        path = tree.path_to(v)
        for e in path.edges():
            out[(v, e)] = oracle.query(source, v, e)
    return out
