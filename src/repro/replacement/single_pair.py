"""Single-pair replacement paths via the candidate sweep (Theorem 28).

The paper uses Hershberger–Suri / Malik–Mittal–Gupta as a black box:
given a pair ``(s, t)``, report ``dist_{G \\ e}(s, t)`` for every edge
``e`` on the shortest ``s ~> t`` path, in near-linear time.  We
implement the same machinery the paper sketches in its proof of
Theorem 28:

1. perturb edge weights so shortest paths are unique (any
   tiebreaking weight function works here; antisymmetry not needed);
2. compute the two selected shortest-path trees ``T_s`` and ``T_t``;
3. by the weighted restoration lemma (Theorem 11) every edge
   ``(u, v)`` defines one *candidate* replacement path
   ``pi(s, u) + (u, v) + reverse(pi(t, v))``, whose length is known in
   O(1) from the two trees;
4. sort candidates by length and sweep: the first candidate avoiding a
   failing edge ``e`` is an exact replacement shortest path for ``e``.

Our sweep labels path edges in ``O(#candidates * L)`` for an ``L``-hop
path instead of the paper's cleverer data structure — on the O(n)-edge
tree unions Algorithm 1 feeds it, that is the same Õ(n) shape per pair.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, canonical_edge
from repro.spt.bfs import UNREACHABLE
from repro.spt.trees import ShortestPathTree
from repro.spt.paths import Path


class Candidate:
    """One weighted-restoration-lemma candidate replacement path.

    The candidate for middle arc ``(u, v)`` is
    ``pi(s, u) + (u, v) + reverse(pi(t, v))``; only its hop length and
    *edge set* are needed by the sweep, both derived lazily from the
    two trees.
    """

    __slots__ = ("arc", "hops", "weighted", "_tree_s", "_tree_t", "_edges")

    def __init__(self, arc: Edge, hops: int, weighted: int,
                 tree_s: ShortestPathTree, tree_t: ShortestPathTree):
        self.arc = arc
        self.hops = hops
        self.weighted = weighted
        self._tree_s = tree_s
        self._tree_t = tree_t
        self._edges: Optional[frozenset] = None

    def edge_set(self) -> frozenset:
        if self._edges is None:
            u, v = self.arc
            edges = set(self._tree_s.path_to(u).edges())
            edges.add(canonical_edge(u, v))
            edges.update(self._tree_t.path_to(v).edges())
            self._edges = frozenset(edges)
        return self._edges

    def path(self) -> Path:
        u, v = self.arc
        front = self._tree_s.path_to(u)
        back = self._tree_t.path_to(v).reverse()
        return front.concat(Path([u, v])).concat(back)


def candidate_sweep(graph, s: int, t: int, weight, scale: int,
                    trees: Optional[Tuple[ShortestPathTree,
                                          ShortestPathTree]] = None
                    ) -> Tuple[Path, Dict[Edge, int]]:
    """Run the full candidate sweep for one pair.

    Parameters
    ----------
    graph:
        Graph (or view) to operate on — Algorithm 1 passes the union of
        two selected trees here, not the whole input graph.
    s, t:
        The pair.
    weight, scale:
        A unique-shortest-path arc weight function and its hop scale
        (e.g. an :class:`~repro.core.weights.AntisymmetricWeights`).
    trees:
        Optional precomputed ``(T_s, T_t)`` selected trees over
        ``graph`` under ``weight`` — callers holding a batched kernel
        (e.g. Algorithm 1's amortised per-pair Dijkstra batch) inject
        them here; when absent the sweep computes both itself.

    Returns
    -------
    (path, distances):
        The selected ``s ~> t`` shortest path and a map from each of
        its edges ``e`` to ``dist_{G \\ e}(s, t)`` (``UNREACHABLE`` when
        ``e`` disconnects the pair).
    """
    if trees is None:
        tree_s = ShortestPathTree.compute(graph, s, weight, scale)
        tree_t = ShortestPathTree.compute(graph, t, weight, scale)
    else:
        tree_s, tree_t = trees
    if not tree_s.reaches(t):
        raise GraphError(f"{s} and {t} are disconnected")
    base_path = tree_s.path_to(t)

    candidates: List[Candidate] = []
    for u, v in graph.arcs():
        if not (tree_s.reaches(u) and tree_t.reaches(v)):
            continue
        weighted = (
            tree_s.weighted_distance(u)
            + weight(u, v)
            + tree_t.weighted_distance(v)
        )
        hops = tree_s.hop_distance(u) + 1 + tree_t.hop_distance(v)
        candidates.append(Candidate((u, v), hops, weighted, tree_s, tree_t))
    # Hop count first (machine ints), exact weight only to break hop
    # ties — same order as sorting by weight, much cheaper comparisons.
    candidates.sort(key=lambda c: (c.hops, c.weighted))

    unlabeled = set(base_path.edges())
    distances: Dict[Edge, int] = {}
    for cand in candidates:
        if not unlabeled:
            break
        # Edges of the base path that this candidate avoids get labeled
        # with the candidate's length: it is the shortest candidate
        # avoiding them, hence (Theorem 11) the replacement distance.
        covered = cand.edge_set()
        newly = [e for e in unlabeled if e not in covered]
        for e in newly:
            distances[e] = cand.hops
            unlabeled.discard(e)
    for e in unlabeled:
        distances[e] = UNREACHABLE
    return base_path, distances


def single_pair_replacement_distances(graph, s: int, t: int, weight=None,
                                      scale: int = 1, seed: int = 0
                                      ) -> Tuple[Path, Dict[Edge, int]]:
    """Convenience wrapper: build weights if absent, then sweep.

    When ``weight`` is None a fresh random tiebreaking weight function
    is drawn over ``graph`` (antisymmetric ones are fine and reuse the
    library's machinery).
    """
    if weight is None:
        from repro.core.weights import AntisymmetricWeights
        from repro.graphs.base import Graph

        base = graph if isinstance(graph, Graph) else graph.materialize()
        atw = AntisymmetricWeights.random(base, f=1, seed=seed)
        weight, scale = atw.weight, atw.scale
    return candidate_sweep(graph, s, t, weight, scale)
