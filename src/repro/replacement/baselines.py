"""Naive recompute-from-scratch replacement-path baselines.

These are the comparators every fast algorithm in the library is
validated against and benchmarked next to: remove the fault, rerun BFS,
read the distance.  Their asymptotics (``O(L * m)`` per pair for an
``L``-hop path, ``O(σ² L m)`` for subset-rp) are exactly the cost
Algorithm 1 beats.

Deliberately *not* routed through the CSR fast paths: these functions
are the naive yardstick the benchmark assertions measure against (and
the ``bench_scenario_engine`` baseline), so they keep the plain
``FaultView`` + reference-BFS shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.graphs.base import Edge, canonical_edge
from repro.spt.bfs import bfs_distances, bfs_tree
from repro.spt.paths import Path


def _tree_path(parent: Dict[int, int], target: int) -> Path:
    chain = [target]
    v = target
    while parent[v] is not None:
        v = parent[v]
        chain.append(v)
    return Path(reversed(chain))


def naive_single_pair_replacement_distances(
    graph, s: int, t: int, path: Path
) -> Dict[Edge, int]:
    """``dist_{G \\ e}(s, t)`` for each edge ``e`` of ``path``, by BFS.

    One full BFS per path edge — the textbook baseline.
    """
    out: Dict[Edge, int] = {}
    for edge in path.edges():
        out[edge] = bfs_distances(graph.without([edge]), s)[t]
    return out


def naive_subset_replacement_paths(
    graph, sources: Iterable[int]
) -> Dict[Tuple[int, int], Dict[Edge, int]]:
    """Solve subset-rp by rerunning BFS for every (pair, fault).

    For each ordered-by-id pair ``s1 < s2`` in ``sources``, picks the
    deterministic BFS path between them and reports the replacement
    distance for each of its edges.  Output shape matches
    :func:`repro.replacement.subset_rp.subset_replacement_paths`.
    """
    source_list = sorted(set(sources))
    out: Dict[Tuple[int, int], Dict[Edge, int]] = {}
    for i, s1 in enumerate(source_list):
        parent = bfs_tree(graph, s1)
        for s2 in source_list[i + 1:]:
            if s2 not in parent:
                out[(s1, s2)] = {}
                continue
            path = _tree_path(parent, s2)
            out[(s1, s2)] = naive_single_pair_replacement_distances(
                graph, s1, s2, path
            )
    return out


def naive_sourcewise_replacement_distances(
    graph, s: int
) -> Dict[Tuple[int, Edge], int]:
    """The sourcewise setting (Chechik–Cohen): ``{s} x V`` replacement
    distances for every tree-edge fault, by brute force.

    Returns ``{(v, e): dist_{G \\ e}(s, v)}`` for every vertex ``v`` and
    edge ``e`` on the BFS path to ``v``.  Quadratic-ish and only used
    as an oracle.
    """
    parent = bfs_tree(graph, s)
    paths = {v: _tree_path(parent, v) for v in parent}
    needed_faults = set()
    for v, path in paths.items():
        for edge in path.edges():
            needed_faults.add(edge)
    dist_without: Dict[Edge, List[int]] = {
        e: bfs_distances(graph.without([e]), s) for e in needed_faults
    }
    out: Dict[Tuple[int, Edge], int] = {}
    for v, path in paths.items():
        for edge in path.edges():
            out[(v, edge)] = dist_without[edge][v]
    return out
