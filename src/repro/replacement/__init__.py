"""Replacement-path algorithms (Section 4.2).

* :mod:`repro.replacement.single_pair` — the single-pair replacement
  paths subroutine (Theorem 28's role): for one pair ``(s, t)``, report
  ``dist_{G \\ e}(s, t)`` for every edge ``e`` on the selected shortest
  path, via the weighted-restoration-lemma candidate sweep.
* :mod:`repro.replacement.subset_rp` — Algorithm 1: ``subset-rp`` for
  all pairs in ``S x S`` in ``O(σm) + Õ(σ²n)`` time, by solving each
  pair inside the union of two selected shortest-path trees.
* :mod:`repro.replacement.baselines` — naive recompute-from-scratch
  baselines used for correctness oracles and benchmark comparison.
"""

from repro.replacement.single_pair import (
    single_pair_replacement_distances,
    candidate_sweep,
)
from repro.replacement.subset_rp import subset_replacement_paths, SubsetRPResult
from repro.replacement.sourcewise import sourcewise_replacement_distances
from repro.replacement.baselines import (
    naive_single_pair_replacement_distances,
    naive_subset_replacement_paths,
    naive_sourcewise_replacement_distances,
)

__all__ = [
    "single_pair_replacement_distances",
    "candidate_sweep",
    "subset_replacement_paths",
    "SubsetRPResult",
    "sourcewise_replacement_distances",
    "naive_single_pair_replacement_distances",
    "naive_subset_replacement_paths",
    "naive_sourcewise_replacement_distances",
]
