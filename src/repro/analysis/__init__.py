"""Theoretical bounds and the shared experiment harness.

* :mod:`repro.analysis.bounds` — closed-form bound formulas for every
  theorem in the paper, plus log-log exponent fitting used to compare
  measured growth against the claimed exponents.
* :mod:`repro.analysis.experiments` — the experiment runners behind
  the benchmark suite: each returns printable rows recording
  paper-bound vs measured values (mirrored into EXPERIMENTS.md).
"""

from repro.analysis.bounds import (
    fit_exponent,
    thm3_subset_rp_time,
    thm26_sv_preserver_bound,
    thm27_lower_bound,
    thm30_label_bits_bound,
    thm33_spanner_bound,
    cor22_bits_per_edge,
)
from repro.analysis.experiments import format_table

__all__ = [
    "fit_exponent",
    "thm3_subset_rp_time",
    "thm26_sv_preserver_bound",
    "thm27_lower_bound",
    "thm30_label_bits_bound",
    "thm33_spanner_bound",
    "cor22_bits_per_edge",
    "format_table",
]
