"""Closed-form statements of every bound in the paper.

Each function is the literal formula from the corresponding theorem,
so benchmarks and tests compare *measured* quantities against the
*claimed* ones by calling these rather than re-deriving exponents
inline.  :func:`fit_exponent` estimates the growth exponent of a
measured series on a log-log scale; the benchmarks assert the fitted
exponent stays at or below the theorem's.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def thm26_sv_preserver_bound(n: int, num_sources: int, f: int) -> float:
    """Theorem 26 / 5 / 31: ``n^{2 - 1/2^f} * |S|^{1/2^f}`` edges."""
    exp = 1.0 / (2 ** f)
    return (n ** (2 - exp)) * (num_sources ** exp)


def thm31_ss_preserver_bound(n: int, num_sources: int,
                             faults_tolerated: int) -> float:
    """Theorem 31 in ``faults_tolerated`` form: the (f+1)-FT S x S
    preserver bound with ``f = faults_tolerated - 1``."""
    return thm26_sv_preserver_bound(n, num_sources, faults_tolerated - 1)


def thm33_spanner_bound(n: int, f: int) -> float:
    """Theorem 33 / 7: ``n^{1 + 2^f/(2^f + 1)}`` edges for the
    (f+1)-FT +4 spanner (``f`` is the overlay parameter)."""
    p = 2 ** f
    return n ** (1 + p / (p + 1))


def thm30_label_bits_bound(n: int, f: int) -> float:
    """Theorem 30 / 10: ``n^{2 - 1/2^f} log n`` bits per label for the
    (f+1)-FT exact distance labeling."""
    exp = 1.0 / (2 ** f)
    return (n ** (2 - exp)) * max(1.0, math.log2(n))


def thm3_subset_rp_time(n: int, m: int, sigma: int) -> float:
    """Theorem 3: ``σ m + σ² n`` (log factors dropped)."""
    return sigma * m + sigma * sigma * n


def naive_subset_rp_time(n: int, m: int, sigma: int,
                         avg_path_len: float) -> float:
    """The recompute baseline: ``σ² * L * m`` BFS work."""
    return sigma * sigma * avg_path_len * m


def thm27_lower_bound(n: int, f: int, sigma: int = 1) -> float:
    """Theorem 27: ``Ω(σ^{1/2^f} (n/f)^{2 - 1/2^f})`` forced edges."""
    exp = 1.0 / (2 ** f)
    return (sigma ** exp) * ((n / f) ** (2 - exp))


def cor22_bits_per_edge(n: int, f: int, c: int = 2) -> float:
    """Corollary 22: ``log2(n^{f+4+c})`` bits per perturbation value."""
    return (f + 4 + c) * math.log2(max(n, 2))


def thm23_bits_per_edge(m: int, base: int = 4) -> float:
    """Theorem 23: the deterministic weights need ``O(|E|)`` bits."""
    return m * math.log2(base)


def lemma36_round_bound(diameter: int, num_sources: int, n: int) -> float:
    """Lemma 36 / Theorem 8(1): ``Õ(D + |S|)`` rounds."""
    return (diameter + num_sources) * max(1.0, math.log2(max(n, 2)))


def fit_exponent(xs: Sequence[float], ys: Sequence[float]
                 ) -> Tuple[float, float]:
    """Least-squares slope and intercept of ``log y`` against ``log x``.

    Returns ``(exponent, log_coefficient)`` such that
    ``y ≈ exp(log_coefficient) * x**exponent``.  Requires at least two
    distinct positive points.
    """
    from repro.backends.api import numpy_or_none

    np = numpy_or_none()
    if np is None:
        raise RuntimeError(
            "fit_exponent needs numpy (install the repro[numpy] extra); "
            "it is unavailable or disabled via REPRO_NO_NUMPY"
        )
    xs = [float(x) for x in xs]
    ys = [float(y) for y in ys]
    if len(xs) < 2 or any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("need >= 2 positive points for a log-log fit")
    log_x = np.log(np.asarray(xs))
    log_y = np.log(np.asarray(ys))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    return float(slope), float(intercept)
