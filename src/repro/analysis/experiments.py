"""Experiment runners shared by the benchmark suite.

Every benchmark in ``benchmarks/`` is a thin pytest-benchmark wrapper
around one of these runners; each runner returns a list of row dicts
recording the paper's claimed bound next to the measured quantity so
the tables printed by the benches (and recorded in EXPERIMENTS.md) all
share one format.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.core.scheme import BFSTiebreaking, RestorableTiebreaking
from repro.scenarios.engine import ScenarioEngine


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned text table (benchmark stdout format)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {
        c: max(len(c), max(len(fmt(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            "  ".join(fmt(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1 — tiebreaking sensitivity
# ----------------------------------------------------------------------
def restoration_success_rate(scheme, pairs_with_faults,
                             engine: Optional[ScenarioEngine] = None
                             ) -> Dict[str, int]:
    """Count midpoint-scan (F' = ∅) successes/failures for a scheme.

    For each ``(s, t, e)`` instance, the scan concatenates *non-faulty*
    selections only — exactly the naive restoration-by-concatenation of
    the introduction.  An instance fails when the best concatenation
    avoiding ``e`` is longer than the true replacement distance (or no
    midpoint survives).

    The instance stream is batched through a
    :class:`~repro.scenarios.engine.ScenarioEngine` (one may be passed
    in to share its caches across schemes over the same graph), which
    amortises base BFS vectors and per-tree fault indices instead of
    rebuilding a :class:`~repro.graphs.views.FaultView` per instance.
    The replacement-distance targets additionally flow through the
    engine's :meth:`~repro.scenarios.engine.ScenarioEngine.evaluate_pairs`
    grouping, so the sweep's many pairs per fault edge share one
    masked multi-source wave (and, across schemes on a shared engine,
    its ``(source, F)`` vector cache).
    """
    if engine is None:
        engine = ScenarioEngine(scheme.graph)
    elif engine.graph is not scheme.graph:
        raise GraphError(
            "engine and scheme must share the same base graph "
            "(engine caches would silently answer for the wrong graph)"
        )
    counts = {"instances": 0, "successes": 0, "failures": 0}
    for item in engine.restoration_sweep(scheme, pairs_with_faults):
        if item.value is None:
            continue  # fault disconnects the pair; nothing to restore
        target, result = item.value
        counts["instances"] += 1
        if result is not None and result.path.hops == target:
            counts["successes"] += 1
        else:
            counts["failures"] += 1
    return counts


def sensitivity_instances(graph, scheme, limit: Optional[int] = None):
    """All ``(s, t, e)`` with ``e`` on the selected ``s ~> t`` path."""
    out = []
    for s in graph.vertices():
        for t in graph.vertices():
            if s >= t:
                continue
            path = scheme.path(s, t)
            if path is None:
                continue
            for e in path.edges():
                out.append((s, t, e))
                if limit is not None and len(out) >= limit:
                    return out
    return out


def figure1_experiment(families: Sequence[str], size: int,
                       seed: int = 0, limit: int = 2000) -> List[Dict]:
    """Fig. 1: naive concatenation under BFS vs restorable tiebreaking."""
    rows = []
    for family in families:
        graph = generators.by_name(family, size, seed=seed)
        engine = ScenarioEngine(graph)  # shared across the two schemes
        for name, scheme in (
            ("bfs-lex", BFSTiebreaking(graph)),
            ("restorable", RestorableTiebreaking.build(graph, f=1, seed=seed)),
        ):
            instances = sensitivity_instances(graph, scheme, limit=limit)
            counts = restoration_success_rate(scheme, instances, engine=engine)
            total = max(counts["instances"], 1)
            rows.append({
                "family": family,
                "scheme": name,
                "instances": counts["instances"],
                "failures": counts["failures"],
                "failure_rate": counts["failures"] / total,
            })
    return rows


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------
def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` once; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
