"""Experiment runners shared by the benchmark suite.

Every benchmark in ``benchmarks/`` is a thin pytest-benchmark wrapper
around one of these runners; each runner returns a list of row dicts
recording the paper's claimed bound next to the measured quantity so
the tables printed by the benches (and recorded in EXPERIMENTS.md) all
share one format.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.graphs import generators
from repro.core.scheme import BFSTiebreaking, RestorableTiebreaking
from repro.query.queries import RestorationQuery
from repro.query.session import Session
from repro.scenarios.engine import ScenarioEngine


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned text table (benchmark stdout format)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {
        c: max(len(c), max(len(fmt(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            "  ".join(fmt(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1 — tiebreaking sensitivity
# ----------------------------------------------------------------------
def restoration_success_rate(scheme, pairs_with_faults,
                             engine: Optional[ScenarioEngine] = None,
                             session: Optional[Session] = None
                             ) -> Dict[str, int]:
    """Count midpoint-scan (F' = ∅) successes/failures for a scheme.

    For each ``(s, t, e)`` instance, the scan concatenates *non-faulty*
    selections only — exactly the naive restoration-by-concatenation of
    the introduction.  An instance fails when the best concatenation
    avoiding ``e`` is longer than the true replacement distance (or no
    midpoint survives).

    The instance stream is submitted as
    :class:`~repro.query.queries.RestorationQuery` objects through a
    :class:`~repro.query.session.Session` (one may be passed in to
    share its caches across schemes over the same graph — ``engine``
    is the pre-PR-4 spelling, wrapped on sight), which amortises base
    BFS vectors and per-tree fault indices instead of rebuilding a
    :class:`~repro.graphs.views.FaultView` per instance, and groups
    the sweep's many pairs per fault edge onto one masked multi-source
    wave (sharing the ``(source, F)`` vector cache across schemes on
    a shared session).
    """
    # Session.adopt enforces the sharing contract: the passed session
    # or engine must cover the scheme's base graph (GraphError
    # otherwise — caches would silently answer for the wrong graph),
    # and passing both only works when they agree.
    session = Session.adopt(scheme.graph, engine=engine, session=session)
    answers = session.answer(
        (RestorationQuery(s, t, (e,)) for s, t, e in pairs_with_faults),
        scheme=scheme,
    )
    counts = {"instances": 0, "successes": 0, "failures": 0}
    for answer in answers:
        if answer.value is None:
            continue  # fault disconnects the pair; nothing to restore
        target, result = answer.value
        counts["instances"] += 1
        if result is not None and result.path.hops == target:
            counts["successes"] += 1
        else:
            counts["failures"] += 1
    return counts


def sensitivity_instances(graph, scheme, limit: Optional[int] = None):
    """All ``(s, t, e)`` with ``e`` on the selected ``s ~> t`` path."""
    out = []
    for s in graph.vertices():
        for t in graph.vertices():
            if s >= t:
                continue
            path = scheme.path(s, t)
            if path is None:
                continue
            for e in path.edges():
                out.append((s, t, e))
                if limit is not None and len(out) >= limit:
                    return out
    return out


def figure1_experiment(families: Sequence[str], size: int,
                       seed: int = 0, limit: int = 2000) -> List[Dict]:
    """Fig. 1: naive concatenation under BFS vs restorable tiebreaking."""
    rows = []
    for family in families:
        graph = generators.by_name(family, size, seed=seed)
        session = Session(graph)  # shared across the two schemes
        for name, scheme in (
            ("bfs-lex", BFSTiebreaking(graph)),
            ("restorable", RestorableTiebreaking.build(graph, f=1, seed=seed)),
        ):
            instances = sensitivity_instances(graph, scheme, limit=limit)
            counts = restoration_success_rate(scheme, instances,
                                              session=session)
            total = max(counts["instances"], 1)
            rows.append({
                "family": family,
                "scheme": name,
                "instances": counts["instances"],
                "failures": counts["failures"],
                "failure_rate": counts["failures"] / total,
            })
    return rows


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------
def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` once; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
