"""repro — Restorable Shortest Path Tiebreaking for Edge-Faulty Graphs.

A faithful, production-quality reproduction of Bodwin & Parter
(PODC 2021, arXiv:2102.10174).  The package implements the paper's
restorable tiebreaking schemes and every application built on them:

* :mod:`repro.graphs` — graph substrate, generators, Appendix-B
  lower-bound families.
* :mod:`repro.spt` — paths, BFS, exact-integer Dijkstra, SPTs.
* :mod:`repro.core` — antisymmetric tiebreaking weights, f-RPTSes,
  restoration-by-concatenation, routing tables (the main result).
* :mod:`repro.replacement` — subset replacement paths (Algorithm 1).
* :mod:`repro.preservers` — fault-tolerant S×V / S×S distance
  preservers (Theorems 26, 31).
* :mod:`repro.spanners` — fault-tolerant +4 additive spanners
  (Lemma 32, Theorem 33).
* :mod:`repro.labeling` — fault-tolerant exact distance labels
  (Theorem 30).
* :mod:`repro.distributed` — CONGEST simulator and the distributed
  constructions of Section 4.5.
* :mod:`repro.analysis` — theoretical bound formulas and the shared
  experiment harness behind the benchmarks.
* :mod:`repro.scenarios` — the batched fault-scenario engine (the
  kernel layer: one base graph, many fault sets).
* :mod:`repro.query` — the declarative query API over it: typed
  queries, a batching planner, and the :class:`Session` facade (the
  preferred entry point for query streams).

Quickstart
----------
>>> from repro import Graph, RestorableTiebreaking, restore_by_concatenation
>>> from repro.graphs import generators
>>> g = generators.grid(4, 4)
>>> scheme = RestorableTiebreaking.build(g, f=1, seed=7)
>>> broken = next(iter(scheme.path(0, 15).edges()))
>>> result = restore_by_concatenation(scheme, 0, 15, [broken])
>>> result.path.hops  # still a shortest path in G minus the fault
6
"""

from repro.exceptions import (
    CongestError,
    DisconnectedError,
    GraphError,
    LabelingError,
    QueryError,
    ReproError,
    RestorationError,
    TiebreakingError,
)
from repro.graphs import FaultView, Graph, canonical_edge
from repro.spt import Path, ShortestPathTree
from repro.core import (
    AntisymmetricWeights,
    BFSTiebreaking,
    ExplicitScheme,
    MplsRouter,
    RestorableTiebreaking,
    RoutingTable,
    WeightedTiebreaking,
    restore_by_concatenation,
    verify_restoration_lemma,
    verify_weighted_restoration_lemma,
)
from repro.replacement import subset_replacement_paths
from repro.preservers import Preserver, ft_ss_preserver, ft_sv_preserver
from repro.spanners import Spanner, ft_plus4_spanner
from repro.labeling import DistanceLabeling
from repro.query import (
    Answer,
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    PairQuery,
    RestorationQuery,
    Session,
    VectorQuery,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "DisconnectedError",
    "TiebreakingError",
    "RestorationError",
    "CongestError",
    "LabelingError",
    "QueryError",
    # substrate
    "Graph",
    "FaultView",
    "canonical_edge",
    "Path",
    "ShortestPathTree",
    # core
    "AntisymmetricWeights",
    "RestorableTiebreaking",
    "WeightedTiebreaking",
    "BFSTiebreaking",
    "ExplicitScheme",
    "MplsRouter",
    "RoutingTable",
    "restore_by_concatenation",
    "verify_restoration_lemma",
    "verify_weighted_restoration_lemma",
    # applications
    "subset_replacement_paths",
    "Preserver",
    "ft_sv_preserver",
    "ft_ss_preserver",
    "Spanner",
    "ft_plus4_spanner",
    "DistanceLabeling",
    # the declarative query API
    "Session",
    "Answer",
    "DistanceQuery",
    "PairQuery",
    "VectorQuery",
    "EccentricityQuery",
    "ConnectivityQuery",
    "RestorationQuery",
]
