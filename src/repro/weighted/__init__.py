"""Weighted-graph extensions (Section 1.2, Theorem 11).

The main theorem does not extend to weighted graphs — the paper proves
undirectedness and unweightedness are both used, and notes the
restoration lemma itself fails there.  What *does* survive is the
weighted restoration lemma (Theorem 11): a replacement path always
decomposes as shortest-path + middle edge + shortest-path, and that
decomposition is tiebreaking-insensitive.

This package implements that surviving theory:

* :class:`~repro.weighted.graph.WeightedGraph` — undirected graphs
  with positive integer edge weights, carrying a cached
  weight-array CSR snapshot (:meth:`~repro.weighted.graph.WeightedGraph.csr`)
  that routes every Dijkstra over the flat-array kernel.
* :mod:`~repro.weighted.restoration` — Theorem 11 as a decision
  procedure on weighted instances, and edge-candidate restoration;
  both accept a shared weighted
  :class:`~repro.scenarios.engine.ScenarioEngine` to amortise
  distance vectors and perturbed trees across a fault stream.
* :mod:`~repro.weighted.base_set` — Afek et al.'s base-set method:
  the O(mn)-path set from which any replacement path is a two-path
  concatenation, sized against Theorem 2's 2·n(n-1) selected paths —
  the paper's "intermediate open question" about base-set size,
  measured (``bench_ablation_base_sets``).

``benchmarks/bench_weighted_engine.py`` measures the weighted engine
against the naive per-scenario Dijkstra loop it replaces;
``examples/weighted_scenarios.py`` is the guided tour.
"""

from repro.weighted.graph import WeightedGraph
from repro.weighted.restoration import (
    restore_via_middle_edge,
    weighted_restoration_lemma_holds,
)
from repro.weighted.base_set import BaseSet

__all__ = [
    "WeightedGraph",
    "weighted_restoration_lemma_holds",
    "restore_via_middle_edge",
    "BaseSet",
]
