"""The weighted restoration lemma (Theorem 11) as algorithms.

Theorem 11: in an undirected positively-weighted graph, for any
``s, t`` and failing edge ``e``, there is an edge ``(u, v)`` such that
for *any* shortest paths ``pi(s, u)`` and ``pi(v, t)``, the path
``pi(s, u) + (u, v) + pi(v, t)`` is a replacement shortest path
avoiding ``e``.  Unlike the unweighted restoration lemma this is not
tiebreaking-sensitive, which makes it directly algorithmic:

* :func:`weighted_restoration_lemma_holds` decides the guarantee on a
  concrete instance (used by the tests as a universal property).
* :func:`restore_via_middle_edge` *uses* it: restore a weighted
  shortest path by scanning middle edges against two precomputed
  shortest-path trees — the engine inside the candidate sweep of
  Theorem 28, here exposed for weighted graphs.

Both run on a (shared or per-call) weighted
:class:`~repro.scenarios.engine.ScenarioEngine`: base and per-fault
distance vectors come from the flat-array Dijkstra kernels, the
per-candidate distance vectors of the lemma checker are cached across
the middle-edge sweep, and the perturbed-unique trees of the restorer
are materialised into flat antisymmetric weight arrays once per seed.
Pass the same ``engine`` across calls against one graph to share all
of that state — exactly the "one base graph, many fault scenarios"
amortisation the engine exists for.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import DisconnectedError, GraphError
from repro.graphs.base import Edge, canonical_edge
from repro.scenarios.engine import ScenarioEngine
from repro.spt.bfs import UNREACHABLE
from repro.spt.dijkstra import extract_path
from repro.spt.paths import Path
from repro.weighted.graph import WeightedGraph


def _engine_for(wg: WeightedGraph,
                engine: Optional[ScenarioEngine]) -> ScenarioEngine:
    if engine is None:
        return ScenarioEngine(wg)
    if engine.graph is not wg:
        raise GraphError("engine was built over a different graph")
    return engine


def weighted_restoration_lemma_holds(wg: WeightedGraph, s: int, t: int,
                                     e: Edge,
                                     engine: Optional[ScenarioEngine] = None
                                     ) -> bool:
    """Decide Theorem 11's guarantee for one weighted instance.

    True iff some edge ``(u, v) != e`` satisfies
    ``dist(s, u) + w(u, v) + dist(v, t) == dist_{G\\e}(s, t)`` with
    *no* shortest ``s ~> u`` or ``v ~> t`` path using ``e`` (so any
    tie choice concatenates validly).  Vacuously true when ``e``
    disconnects the pair.

    ``engine`` may be a weighted :class:`ScenarioEngine` over ``wg``;
    sharing one across many instances reuses every base distance
    vector the candidate sweep touches.
    """
    e = canonical_edge(*e)
    a, b = e
    w_e = wg.weight(a, b)
    engine = _engine_for(wg, engine)
    # Through the pair query, not a full vector: the touch filter
    # answers off-path faults in O(1), the memo answers repeats, and
    # the masked traversal early-exits at t.
    target = engine.pair_replacement_distance(s, t, (e,))
    if target == UNREACHABLE:
        return True
    dist_s = engine.base_distances(s)
    dist_t = engine.base_distances(t)

    def every_shortest_avoids(dist_from: List[int], x: int) -> bool:
        """No shortest (origin ~> x) path crosses e = (a, b)."""
        if dist_from[x] == UNREACHABLE:
            return False
        dist_x = engine.base_distances(x)
        via_ab = (
            dist_from[a] != UNREACHABLE and dist_x[b] != UNREACHABLE
            and dist_from[a] + w_e + dist_x[b] == dist_from[x]
        )
        via_ba = (
            dist_from[b] != UNREACHABLE and dist_x[a] != UNREACHABLE
            and dist_from[b] + w_e + dist_x[a] == dist_from[x]
        )
        return not (via_ab or via_ba)

    csr = engine.csr
    weights, indptr, indices = csr.weights, csr.indptr, csr.indices
    for u in range(csr.n):
        if dist_s[u] == UNREACHABLE:
            continue
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            if canonical_edge(u, v) == e:
                continue
            if dist_t[v] == UNREACHABLE:
                continue
            if dist_s[u] + weights[i] + dist_t[v] != target:
                continue
            if every_shortest_avoids(dist_s, u) and \
                    every_shortest_avoids(dist_t, v):
                return True
    return False


def restore_via_middle_edge(wg: WeightedGraph, s: int, t: int,
                            e: Edge, seed: int = 0,
                            engine: Optional[ScenarioEngine] = None
                            ) -> Tuple[Path, int]:
    """Restore a weighted shortest path around ``e`` (Theorem 11 style).

    Precomputes perturbed-unique shortest-path trees from ``s`` and
    ``t``, scans all middle edges ``(u, v)``, and returns the best
    concatenation avoiding ``e`` together with its *unperturbed*
    weight.  By Theorem 11 the best candidate is a true replacement
    shortest path.

    The perturbed weights are materialised into a flat antisymmetric
    arc array and the two SSSP runs are cached on the engine (per
    ``(seed, source)``), so a stream of faults against the same
    monitored pair pays for the trees once.

    Raises :class:`DisconnectedError` when ``e`` cuts the pair.
    """
    e = canonical_edge(*e)
    engine = _engine_for(wg, engine)
    pcsr, _scale = engine.perturbed_csr(seed)
    dist_s, parent_s = engine.perturbed_sssp(s, seed)
    dist_t, parent_t = engine.perturbed_sssp(t, seed)

    weights, indptr, indices = pcsr.weights, pcsr.indptr, pcsr.indices
    best = None
    for u in range(pcsr.n):
        du = dist_s.get(u)
        if du is None:
            continue
        for i in range(indptr[u], indptr[u + 1]):
            v = indices[i]
            if canonical_edge(u, v) == e:
                continue
            dv = dist_t.get(v)
            if dv is None:
                continue
            candidate_weight = du + weights[i] + dv
            if best is not None and candidate_weight >= best[0]:
                continue
            front = extract_path(parent_s, u)
            back = extract_path(parent_t, v)
            walk = front.concat(Path([u, v])).concat(back.reverse())
            if not walk.avoids([e]):
                continue
            best = (candidate_weight, walk)
    if best is None:
        raise DisconnectedError(s, t, [e])
    _, walk = best
    return walk, wg.path_weight(walk)
