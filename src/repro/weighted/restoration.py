"""The weighted restoration lemma (Theorem 11) as algorithms.

Theorem 11: in an undirected positively-weighted graph, for any
``s, t`` and failing edge ``e``, there is an edge ``(u, v)`` such that
for *any* shortest paths ``pi(s, u)`` and ``pi(v, t)``, the path
``pi(s, u) + (u, v) + pi(v, t)`` is a replacement shortest path
avoiding ``e``.  Unlike the unweighted restoration lemma this is not
tiebreaking-sensitive, which makes it directly algorithmic:

* :func:`weighted_restoration_lemma_holds` decides the guarantee on a
  concrete instance (used by the tests as a universal property).
* :func:`restore_via_middle_edge` *uses* it: restore a weighted
  shortest path by scanning middle edges against two precomputed
  shortest-path trees — the engine inside the candidate sweep of
  Theorem 28, here exposed for weighted graphs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.exceptions import DisconnectedError, GraphError
from repro.graphs.base import Edge, canonical_edge
from repro.spt.dijkstra import dijkstra, extract_path
from repro.spt.paths import Path
from repro.weighted.graph import WeightedGraph


def _weighted_distances(wg, source: int) -> Dict[int, int]:
    dist, _ = dijkstra(wg, source, wg.arc_weight)
    return dist


def weighted_restoration_lemma_holds(wg: WeightedGraph, s: int, t: int,
                                     e: Edge) -> bool:
    """Decide Theorem 11's guarantee for one weighted instance.

    True iff some edge ``(u, v) != e`` satisfies
    ``dist(s, u) + w(u, v) + dist(v, t) == dist_{G\\e}(s, t)`` with
    *no* shortest ``s ~> u`` or ``v ~> t`` path using ``e`` (so any
    tie choice concatenates validly).  Vacuously true when ``e``
    disconnects the pair.
    """
    e = canonical_edge(*e)
    a, b = e
    view = wg.without([e])
    dist_after = _weighted_distances(view, s)
    if t not in dist_after:
        return True
    target = dist_after[t]
    dist_s = _weighted_distances(wg, s)
    dist_t = _weighted_distances(wg, t)
    w_e = wg.weight(a, b)

    def every_shortest_avoids(dist_from: Dict[int, int], x: int) -> bool:
        """No shortest (origin ~> x) path crosses e = (a, b)."""
        if x not in dist_from:
            return False
        dist_x = _weighted_distances(wg, x)
        via_ab = (
            a in dist_from and b in dist_x
            and dist_from[a] + w_e + dist_x[b] == dist_from[x]
        )
        via_ba = (
            b in dist_from and a in dist_x
            and dist_from[b] + w_e + dist_x[a] == dist_from[x]
        )
        return not (via_ab or via_ba)

    for u, v in wg.arcs():
        if canonical_edge(u, v) == e:
            continue
        if u not in dist_s or v not in dist_t:
            continue
        if dist_s[u] + wg.weight(u, v) + dist_t[v] != target:
            continue
        if every_shortest_avoids(dist_s, u) and \
                every_shortest_avoids(dist_t, v):
            return True
    return False


def restore_via_middle_edge(wg: WeightedGraph, s: int, t: int,
                            e: Edge, seed: int = 0
                            ) -> Tuple[Path, int]:
    """Restore a weighted shortest path around ``e`` (Theorem 11 style).

    Precomputes perturbed-unique shortest-path trees from ``s`` and
    ``t``, scans all middle edges ``(u, v)``, and returns the best
    concatenation avoiding ``e`` together with its *unperturbed*
    weight.  By Theorem 11 the best candidate is a true replacement
    shortest path.

    Raises :class:`DisconnectedError` when ``e`` cuts the pair.
    """
    e = canonical_edge(*e)
    arc_weight, scale = wg.perturbed_weight(seed=seed)
    dist_s, parent_s = dijkstra(wg, s, arc_weight)
    dist_t, parent_t = dijkstra(wg, t, arc_weight)

    def path_from(parent, x) -> Optional[Path]:
        return extract_path(parent, x)

    best = None
    for u, v in wg.arcs():
        if canonical_edge(u, v) == e:
            continue
        if u not in dist_s or v not in dist_t:
            continue
        candidate_weight = (
            dist_s[u] + arc_weight(u, v) + dist_t[v]
        )
        if best is not None and candidate_weight >= best[0]:
            continue
        front = path_from(parent_s, u)
        back = path_from(parent_t, v)
        walk = front.concat(Path([u, v])).concat(back.reverse())
        if not walk.avoids([e]):
            continue
        best = (candidate_weight, walk)
    if best is None:
        raise DisconnectedError(s, t, [e])
    _, walk = best
    return walk, wg.path_weight(walk)
