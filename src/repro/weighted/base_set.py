"""Afek et al.'s base-set method for path restoration.

Before restorable tiebreaking existed, the practical route around
tiebreaking-sensitivity was the *base set* (Afek et al. [3],
footnote 1 of this paper): fix an arbitrary set of C(n, 2) canonical
shortest paths, then take every canonical path extended by at most one
extra edge at either end.  Any replacement path concatenates two base
paths (provable from Theorem 11), at the cost of a much larger object:
up to ``m(n-1)`` base paths versus the ``n(n-1)`` selected paths of
Theorem 2.  Closing that gap was the paper's "intermediate open
question"; the ``bench_ablation_base_sets`` benchmark measures it.

Canonical paths here are made unique and *symmetric* by a symmetric
random perturbation (unlike the antisymmetric one of Definition 18 —
symmetry is fine for the base set because correctness never depended
on tiebreaking).  The perturbed weights are materialised into a flat
per-arc array once (see :meth:`repro.graphs.csr.CSRGraph.with_arc_weights`),
so every canonical tree is computed by the flat Dijkstra kernel, and
restoration queries run through a :class:`ScenarioEngine` — shared
base distances, tree fault indices and the replacement-distance memo.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import DisconnectedError, GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.scenarios.engine import ScenarioEngine
from repro.spt.bfs import UNREACHABLE
from repro.spt.trees import ShortestPathTree
from repro.spt.paths import Path


class BaseSet:
    """The Afek-et-al. base set over an unweighted graph.

    Parameters
    ----------
    graph:
        Undirected unweighted input.
    seed:
        Randomness for the symmetric tie-breaking perturbation.
    engine:
        Optional shared (unweighted) :class:`ScenarioEngine` over
        ``graph``; one is built if absent.  Restoration queries reuse
        its base distance vectors, subtree interval indices, and
        scenario memo.
    """

    def __init__(self, graph: Graph, seed: int = 0,
                 engine: Optional[ScenarioEngine] = None):
        self._graph = graph
        if engine is not None and engine.graph is not graph:
            raise GraphError("engine was built over a different graph")
        self._engine = engine if engine is not None else ScenarioEngine(graph)
        n = max(graph.n, 2)
        rng = random.Random(seed)
        big = n ** 6
        self._scale = 2 * n * (big + 1)
        perturbation = {
            edge: rng.randint(-big, big) for edge in graph.edges()
        }

        scale = self._scale

        def weight(u: int, v: int) -> int:
            return scale + perturbation[canonical_edge(u, v)]

        # Flat symmetric perturbed weights over the engine's snapshot:
        # every canonical tree below is one flat-kernel Dijkstra (and
        # the closure and perturbation dict die with this frame).
        self._wcsr = self._engine.csr.with_arc_weights(weight)
        self._trees: Dict[int, ShortestPathTree] = {}

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    def _tree(self, source: int) -> ShortestPathTree:
        tree = self._trees.get(source)
        if tree is None:
            tree = ShortestPathTree.compute(
                self._wcsr, source, self._wcsr.arc_weight, self._scale
            )
            self._trees[source] = tree
        return tree

    def canonical(self, u: int, v: int) -> Optional[Path]:
        """The canonical shortest ``u ~> v`` path (symmetric choice)."""
        tree = self._tree(u)
        if not tree.reaches(v):
            return None
        return tree.path_to(v)

    # ------------------------------------------------------------------
    def count_paths(self) -> int:
        """Number of base paths: canonical pairs + one-edge extensions.

        Counted as the paper's footnote does: each base path is a
        canonical path with an extra edge appended at one end (or no
        extra edge), deduplicating the zero-extension case, bounded by
        ``m (n - 1)``.
        """
        n, m = self._graph.n, self._graph.m
        connected_pairs = 0
        extension_count = 0
        for u in self._graph.vertices():
            tree = self._tree(u)
            reached = len(tree.reached_vertices()) - 1
            connected_pairs += reached
            for v in tree.reached_vertices():
                if v != u:
                    extension_count += self._graph.degree(v)
        # ordered pairs were counted twice; canonical paths are
        # symmetric so halve, extensions stay per (path, end-edge).
        return connected_pairs // 2 + extension_count // 2

    def theoretical_bound(self) -> int:
        """Afek et al.'s bound: ``m (n - 1)`` one-edge extensions plus
        the ``C(n, 2)`` canonical paths themselves."""
        n, m = self._graph.n, self._graph.m
        return m * (n - 1) + n * (n - 1) // 2

    # ------------------------------------------------------------------
    def restore(self, s: int, t: int, e: Edge) -> Path:
        """Restore ``s ~> t`` around ``e`` by base-path concatenation.

        Scans middle edges ``(u, v)``: the candidate
        ``canonical(s, u) + (u, v) + canonical(v, t)`` is a base path
        (canonical + one extension) concatenated with a canonical
        path.  The shortest fault-avoiding candidate is optimal by the
        weighted restoration lemma.  Also tries the pure canonical
        ``s ~> t`` path in case ``e`` is off it.
        """
        e = canonical_edge(*e)
        direct = self.canonical(s, t)
        if direct is not None and direct.avoids([e]):
            return direct
        target = self._engine.pair_replacement_distance(s, t, [e])
        if target == UNREACHABLE:
            raise DisconnectedError(s, t, [e])
        tree_s = self._tree(s)
        tree_t = self._tree(t)
        good_s = self._engine.tree_index(tree_s).fault_free_vertices([e])
        good_t = self._engine.tree_index(tree_t).fault_free_vertices([e])
        best: Optional[Tuple[int, Edge]] = None
        for u, v in self._graph.arcs():
            if canonical_edge(u, v) == e:
                continue
            if u not in good_s or v not in good_t:
                continue
            hops = tree_s.hop_distance(u) + 1 + tree_t.hop_distance(v)
            if best is None or hops < best[0]:
                best = (hops, (u, v))
        if best is None or best[0] != target:
            raise GraphError(
                f"base-set restoration failed for {s}~>{t} under {e}: "
                f"target {target}, best {best}"
            )
        u, v = best[1]
        return (
            tree_s.path_to(u)
            .concat(Path([u, v]))
            .concat(tree_t.path_to(v).reverse())
        )

    def __repr__(self) -> str:
        return f"BaseSet(n={self._graph.n}, m={self._graph.m})"
