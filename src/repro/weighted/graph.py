"""Undirected graphs with positive integer edge weights.

The weighted setting of Theorem 11.  Weights are integers (exactness,
as everywhere in this library); callers with rational weights should
pre-scale.  The class deliberately mirrors the read interface of
:class:`repro.graphs.base.Graph` plus a ``weight`` accessor, so the
Dijkstra/tree machinery of :mod:`repro.spt` works on it unchanged via
:meth:`arc_weight`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge


class WeightedGraph:
    """An undirected graph with positive integer edge weights.

    Parameters
    ----------
    num_vertices:
        Vertex count; vertices are ``0 .. n-1``.
    weighted_edges:
        Iterable of ``(u, v, w)`` triples with ``w >= 1``.
    """

    __slots__ = ("_graph", "_weights")

    def __init__(self, num_vertices: int = 0,
                 weighted_edges: Iterable[Tuple[int, int, int]] = ()):
        self._graph = Graph(num_vertices)
        self._weights: Dict[Edge, int] = {}
        for u, v, w in weighted_edges:
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    @classmethod
    def from_unit_graph(cls, graph: Graph) -> "WeightedGraph":
        """Lift an unweighted graph to weight-1 edges."""
        wg = cls(graph.n)
        for u, v in graph.edges():
            wg.add_edge(u, v, 1)
        return wg

    @classmethod
    def random(cls, n: int, p: float, max_weight: int = 20,
               seed: int = 0) -> "WeightedGraph":
        """A connected random weighted graph with uniform weights."""
        from repro.graphs.generators import connected_erdos_renyi

        rng = random.Random(seed + 1)
        base = connected_erdos_renyi(n, p, seed=seed)
        wg = cls(n)
        for u, v in base.edges():
            wg.add_edge(u, v, rng.randint(1, max_weight))
        return wg

    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        return self._graph.add_vertex()

    def add_edge(self, u: int, v: int, weight: int) -> Edge:
        if weight < 1:
            raise GraphError(f"edge weight must be >= 1, got {weight}")
        edge = self._graph.add_edge(u, v)
        self._weights[edge] = weight
        return edge

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._graph.n

    @property
    def m(self) -> int:
        return self._graph.m

    def vertices(self) -> range:
        return self._graph.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._graph.has_vertex(v)

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, v: int) -> Iterator[int]:
        return self._graph.neighbors(v)

    def sorted_neighbors(self, v: int) -> List[int]:
        return self._graph.sorted_neighbors(v)

    def edges(self) -> Iterator[Edge]:
        return self._graph.edges()

    def arcs(self) -> Iterator[Edge]:
        return self._graph.arcs()

    def weight(self, u: int, v: int) -> int:
        edge = canonical_edge(u, v)
        if edge not in self._weights:
            raise GraphError(f"({u}, {v}) is not an edge")
        return self._weights[edge]

    def arc_weight(self, u: int, v: int) -> int:
        """Symmetric arc-weight callable for :func:`repro.spt.dijkstra`."""
        return self.weight(u, v)

    def total_weight(self) -> int:
        return sum(self._weights.values())

    def path_weight(self, path) -> int:
        """Total weight of a :class:`repro.spt.paths.Path`."""
        return sum(self.weight(u, v) for u, v in path.arcs())

    # ------------------------------------------------------------------
    def without(self, faults: Iterable[Edge]) -> "WeightedView":
        return WeightedView(self, faults)

    def unit_graph(self) -> Graph:
        """The underlying unweighted graph (shared, do not mutate)."""
        return self._graph

    def perturbed_weight(self, seed: int = 0):
        """A unique-shortest-path refinement of the weights.

        Returns ``(arc_weight_fn, scale)``: weights are scaled by a
        large integer and an antisymmetric perturbation is added, so
        the perturbed unique shortest paths are true weighted shortest
        paths (the "perturb to make shortest paths unique" step of
        Theorem 28's proof, done exactly).
        """
        n = max(self.n, 2)
        rng = random.Random(seed)
        big = n ** 6
        scale = 2 * n * (big + 1)
        perturbation = {
            edge: rng.randint(-big, big) for edge in self.edges()
        }

        def arc_weight(u: int, v: int) -> int:
            edge = canonical_edge(u, v)
            r = perturbation[edge]
            if (u, v) != edge:
                r = -r
            return self._weights[edge] * scale + r

        return arc_weight, scale

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m})"


class WeightedView:
    """``G \\ F`` over a weighted graph (read-only, weight-preserving)."""

    __slots__ = ("_base", "_view")

    def __init__(self, base: WeightedGraph, faults: Iterable[Edge]):
        self._base = base
        self._view = base.unit_graph().without(faults)

    @property
    def n(self) -> int:
        return self._view.n

    def vertices(self) -> range:
        return self._view.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._view.has_vertex(v)

    def has_edge(self, u: int, v: int) -> bool:
        return self._view.has_edge(u, v)

    def neighbors(self, v: int) -> Iterator[int]:
        return self._view.neighbors(v)

    def sorted_neighbors(self, v: int) -> List[int]:
        return self._view.sorted_neighbors(v)

    def edges(self) -> Iterator[Edge]:
        return self._view.edges()

    def arcs(self) -> Iterator[Edge]:
        return self._view.arcs()

    def weight(self, u: int, v: int) -> int:
        if not self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) not present in the view")
        return self._base.weight(u, v)

    def arc_weight(self, u: int, v: int) -> int:
        return self.weight(u, v)
