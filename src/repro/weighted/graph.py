"""Undirected graphs with positive integer edge weights.

The weighted setting of Theorem 11.  Weights are integers (exactness,
as everywhere in this library); callers with rational weights should
pre-scale.  The class deliberately mirrors the read interface of
:class:`repro.graphs.base.Graph` plus a ``weight`` accessor, so the
Dijkstra/tree machinery of :mod:`repro.spt` works on it unchanged via
:meth:`arc_weight`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge


class WeightedGraph:
    """An undirected graph with positive integer edge weights.

    Parameters
    ----------
    num_vertices:
        Vertex count; vertices are ``0 .. n-1``.
    weighted_edges:
        Iterable of ``(u, v, w)`` triples with ``w >= 1``.
    """

    __slots__ = ("_graph", "_weights", "_csr")

    def __init__(self, num_vertices: int = 0,
                 weighted_edges: Iterable[Tuple[int, int, int]] = ()):
        self._graph = Graph(num_vertices)
        self._weights: Dict[Edge, int] = {}
        self._csr = None
        for u, v, w in weighted_edges:
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    @classmethod
    def from_unit_graph(cls, graph: Graph) -> "WeightedGraph":
        """Lift an unweighted graph to weight-1 edges."""
        wg = cls(graph.n)
        for u, v in graph.edges():
            wg.add_edge(u, v, 1)
        return wg

    @classmethod
    def random(cls, n: int, p: float, max_weight: int = 20,
               seed: int = 0) -> "WeightedGraph":
        """A connected random weighted graph with uniform weights."""
        from repro.graphs.generators import connected_erdos_renyi

        rng = random.Random(seed + 1)
        base = connected_erdos_renyi(n, p, seed=seed)
        wg = cls(n)
        for u, v in base.edges():
            wg.add_edge(u, v, rng.randint(1, max_weight))
        return wg

    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        return self._graph.add_vertex()

    def add_edge(self, u: int, v: int, weight: int) -> Edge:
        """Insert the weighted edge ``{u, v}``; return its canonical form.

        Re-adding an existing edge with the *same* weight is an
        idempotent no-op, mirroring :meth:`Graph.add_edge
        <repro.graphs.base.Graph.add_edge>`; a *conflicting* weight
        raises :class:`~repro.exceptions.GraphError` instead of
        silently overwriting (an overwrite would also have invalidated
        every snapshot keyed on the ``(n, m)`` state without changing
        ``(n, m)`` — see :meth:`csr`).
        """
        if weight < 1:
            raise GraphError(f"edge weight must be >= 1, got {weight}")
        if self._graph.has_edge(u, v):
            edge = canonical_edge(u, v)
            if self._weights[edge] != weight:
                raise GraphError(
                    f"edge {edge} re-added with weight {weight}, "
                    f"conflicting with existing weight "
                    f"{self._weights[edge]}"
                )
            return edge
        edge = self._graph.add_edge(u, v)
        self._weights[edge] = weight
        return edge

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._graph.n

    @property
    def m(self) -> int:
        return self._graph.m

    def vertices(self) -> range:
        return self._graph.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._graph.has_vertex(v)

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, v: int) -> Iterator[int]:
        return self._graph.neighbors(v)

    def sorted_neighbors(self, v: int) -> List[int]:
        return self._graph.sorted_neighbors(v)

    def edges(self) -> Iterator[Edge]:
        return self._graph.edges()

    def arcs(self) -> Iterator[Edge]:
        return self._graph.arcs()

    def weight(self, u: int, v: int) -> int:
        edge = canonical_edge(u, v)
        if edge not in self._weights:
            raise GraphError(f"({u}, {v}) is not an edge")
        return self._weights[edge]

    def arc_weight(self, u: int, v: int) -> int:
        """Symmetric arc-weight callable for :func:`repro.spt.dijkstra`."""
        return self.weight(u, v)

    def total_weight(self) -> int:
        return sum(self._weights.values())

    def path_weight(self, path) -> int:
        """Total weight of a :class:`repro.spt.paths.Path`."""
        return sum(self.weight(u, v) for u, v in path.arcs())

    # ------------------------------------------------------------------
    def without(self, faults: Iterable[Edge]) -> "WeightedView":
        return WeightedView(self, faults)

    def unit_graph(self) -> Graph:
        """The underlying unweighted graph (shared, do not mutate)."""
        return self._graph

    def csr(self):
        """A cached weight-carrying CSR snapshot of the current state.

        Mirrors :meth:`repro.graphs.base.Graph.csr`: the snapshot
        (a :class:`repro.graphs.csr.CSRGraph` with a flat per-arc
        ``weights`` array) is rebuilt whenever ``(n, m)`` changes.
        That stamp is a sound invalidation rule here because
        :meth:`add_edge` refuses conflicting re-adds — a weight can
        never change without ``m`` changing.
        """
        from repro.graphs.csr import CSRGraph

        cached = self._csr
        if (cached is None or cached.n != self.n
                or cached.m != self.m):
            cached = CSRGraph.from_graph(self._graph,
                                         arc_weight=self.arc_weight)
            self._csr = cached
        return cached

    def _as_csr(self):
        """Fast-path dispatch hook (see :func:`repro.graphs.csr.as_csr`)."""
        return self.csr(), None

    def perturbed_weight(self, seed: int = 0):
        """A unique-shortest-path refinement of the weights.

        Returns ``(arc_weight_fn, scale)``: weights are scaled by a
        large integer and an antisymmetric perturbation is added, so
        the perturbed unique shortest paths are true weighted shortest
        paths (the "perturb to make shortest paths unique" step of
        Theorem 28's proof, done exactly).
        """
        n = max(self.n, 2)
        rng = random.Random(seed)
        big = n ** 6
        scale = 2 * n * (big + 1)
        perturbation = {
            edge: rng.randint(-big, big) for edge in self.edges()
        }

        def arc_weight(u: int, v: int) -> int:
            edge = canonical_edge(u, v)
            r = perturbation[edge]
            if (u, v) != edge:
                r = -r
            return self._weights[edge] * scale + r

        return arc_weight, scale

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m})"


class WeightedView:
    """``G \\ F`` over a weighted graph (read-only, weight-preserving)."""

    __slots__ = ("_base", "_view", "_csr_view")

    def __init__(self, base: WeightedGraph, faults: Iterable[Edge]):
        self._base = base
        self._view = base.unit_graph().without(faults)
        self._csr_view = None

    @property
    def base(self) -> WeightedGraph:
        return self._base

    @property
    def faults(self) -> frozenset:
        return self._view.faults

    @property
    def n(self) -> int:
        return self._view.n

    @property
    def m(self) -> int:
        return self._view.m

    def vertices(self) -> range:
        return self._view.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._view.has_vertex(v)

    def has_edge(self, u: int, v: int) -> bool:
        return self._view.has_edge(u, v)

    def neighbors(self, v: int) -> Iterator[int]:
        return self._view.neighbors(v)

    def sorted_neighbors(self, v: int) -> List[int]:
        return self._view.sorted_neighbors(v)

    def edges(self) -> Iterator[Edge]:
        return self._view.edges()

    def arcs(self) -> Iterator[Edge]:
        return self._view.arcs()

    def weight(self, u: int, v: int) -> int:
        if not self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) not present in the view")
        return self._base.weight(u, v)

    def arc_weight(self, u: int, v: int) -> int:
        return self.weight(u, v)

    def _as_csr(self):
        """Weighted base snapshot plus this view's arc mask (cached).

        Views are immutable, so the one O(m) mask allocation is paid on
        first use and shared by every traversal over the view.
        """
        view = self._csr_view
        if view is None:
            view = self._base.csr().without(self._view.faults)
            self._csr_view = view
        return view._as_csr()
