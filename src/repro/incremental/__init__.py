"""Incremental scenario deltas: patch base distances, don't re-traverse.

The paper's workload is one base graph against a stream of small fault
sets, and most fault sets barely move the distance landscape: a fault
on (or near) the base shortest-path tree of a source orphans only the
subtree hanging below the faulted tree edge — every other vertex keeps
its base distance, because its selected root-path survives the faults
and edge removal can only *increase* distances.  This package turns
that observation into a fourth evaluation strategy alongside the
engine's memo / touch filter / masked wave:

* :mod:`repro.incremental.affected` — :func:`affected_region` reads the
  orphaned-vertex count straight off the
  :class:`~repro.scenarios.engine.TreeFaultIndex` Euler-tour subtree
  intervals in ``O(|F| log |F|)`` (no materialisation needed to
  *decide*), and an explicit :class:`CostModel` chooses delta-patch vs
  full wave before any traversal work is spent.
* :mod:`repro.incremental.repair` — :func:`csr_bfs_repair` and
  :func:`csr_dijkstra_repair` re-settle only the orphaned region from
  its intact frontier over the engine's masked CSR snapshot, returning
  a patched distance vector (bit-identical to the full masked kernels)
  plus the changed-vertex set.

:class:`~repro.scenarios.engine.ScenarioEngine` consumes both through
:meth:`~repro.scenarios.engine.ScenarioEngine.try_delta` (on by
default; ``delta=False`` restores pure-wave behaviour), and the query
planner threads a ``"delta"`` provenance kind through
:class:`~repro.query.queries.Answer` so streams report how they were
served.  ``benchmarks/bench_incremental.py`` measures the delta path
against the full-wave engine on an adversarial tree-edge fault stream;
``examples/incremental_deltas.py`` is the guided tour.
"""

from repro.incremental.affected import AffectedRegion, CostModel, affected_region
from repro.incremental.repair import csr_bfs_repair, csr_dijkstra_repair

__all__ = [
    "AffectedRegion",
    "CostModel",
    "affected_region",
    "csr_bfs_repair",
    "csr_dijkstra_repair",
]
