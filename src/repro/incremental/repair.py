"""Repair kernels: re-settle an orphaned region from its intact frontier.

Both kernels take the base distance vector of a source, the orphaned
vertex set of a fault set ``F`` (see
:func:`repro.incremental.affected.affected_region`), and the engine's
arc mask with ``F`` zeroed — and return a **patched** dense distance
vector plus the vertices whose distance actually changed.  The
contract, enforced by the hypothesis cross-checks in
``tests/test_incremental.py``, is bit-identical output to running the
full masked kernel (:func:`~repro.spt.fastpaths.csr_bfs_distances` /
:func:`~repro.spt.fastpaths.csr_weighted_distances`) from scratch:
intact vertices keep their base distance (their selected root-path
survives ``F`` and removal cannot shorten anything), orphans are
re-settled in ``O(vol(orphans) log)`` instead of ``O(n + m)``.

The repair is a two-phase contraction of the standard traversals:

1. **seed** — every surviving arc from an intact vertex ``u`` into an
   orphan ``v`` proposes ``d(u) + w(u, v)``; the intact endpoint's
   distance is already final, so these proposals are exact path
   lengths.  (A shortest path may leave the orphaned region and
   re-enter it — each re-entry is just another intact→orphan arc, so
   the seeds cover it.)
2. **settle** — a traversal restricted to the orphaned region: a
   bucketed multi-source BFS with level offsets on the unweighted
   path, a heap-based Dijkstra on the weighted one.  Orphans no seed
   or propagation reaches stay ``UNREACHABLE`` — the disconnecting
   case needs no special handling.

The weighted kernel reads propagation weights straight off the flat
arc array (settling ``v`` relaxes ``v``'s own row, the correct
direction), and looks seed weights up by reverse arc position — so
antisymmetric snapshots (the tiebreaking perturbations) repair
exactly, not just symmetric edge weights.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.backends.dispatch import kernel_impl
from repro.graphs.csr import CSRGraph
from repro.spt.fastpaths import UNREACHABLE, flat_weights

__all__ = ["csr_bfs_repair", "csr_dijkstra_repair"]


def csr_bfs_repair(csr: CSRGraph, mask: Optional[bytearray],
                   base: List[int], orphans: Iterable[int]
                   ) -> Tuple[List[int], List[int]]:
    """Patch hop distances for ``orphans``; ``(patched, changed)``.

    ``patched`` is bit-identical to
    ``csr_bfs_distances(csr, mask, source)`` for the source ``base``
    was computed from; ``changed`` lists (sorted) the orphans whose
    distance differs from the base — orphans with an equally short
    surviving detour are *not* changed, only re-verified.

    Dispatching wrapper: the orphan set is materialised once (its
    size feeds the calibrated dispatch table) and the call served by
    the chosen kernel backend (:mod:`repro.backends`).
    """
    orph = list(orphans)
    impl = kernel_impl("csr_bfs_repair", csr, len(orph))
    return impl(csr, mask, base, orph)


def csr_bfs_repair_loops(csr: CSRGraph, mask: Optional[bytearray],
                         base: List[int], orphans: Iterable[int]
                         ) -> Tuple[List[int], List[int]]:
    """The bucketed loop implementation (the ``pyloops`` backend)."""
    indptr, indices = csr.indptr, csr.indices
    aff = set(orphans)
    patched = list(base)
    unreachable = UNREACHABLE
    for v in aff:
        patched[v] = unreachable
    # Seed: best surviving intact->orphan entry per orphan, bucketed
    # by the (exact) distance it proposes.
    buckets: Dict[int, List[int]] = {}
    levels: List[int] = []
    push, pop = heapq.heappush, heapq.heappop
    for v in aff:
        best = -1
        for i in range(indptr[v], indptr[v + 1]):
            if mask is not None and not mask[i]:
                continue
            u = indices[i]
            if u in aff:
                continue
            du = patched[u]
            if du >= 0 and (best < 0 or du + 1 < best):
                best = du + 1
        if best >= 0:
            bucket = buckets.get(best)
            if bucket is None:
                buckets[best] = bucket = []
                push(levels, best)
            bucket.append(v)
    # Settle: multi-source BFS with level offsets, restricted to the
    # orphaned region.  Processing level L only ever creates level
    # L + 1, and the heap interleaves those with later seed levels, so
    # levels are settled in ascending order — each orphan's first
    # assignment is its true distance.
    buckets_pop = buckets.pop
    buckets_get = buckets.get
    while levels:
        depth = pop(levels)
        queue = buckets_pop(depth, ())
        nxt_depth = depth + 1
        for v in queue:
            if patched[v] >= 0:
                continue
            patched[v] = depth
            for i in range(indptr[v], indptr[v + 1]):
                if mask is not None and not mask[i]:
                    continue
                w = indices[i]
                if w in aff and patched[w] < 0:
                    bucket = buckets_get(nxt_depth)
                    if bucket is None:
                        buckets[nxt_depth] = bucket = []
                        push(levels, nxt_depth)
                    bucket.append(w)
    changed = sorted(v for v in aff if patched[v] != base[v])
    return patched, changed


def csr_dijkstra_repair(csr: CSRGraph, mask: Optional[bytearray],
                        base: List[int], orphans: Iterable[int]
                        ) -> Tuple[List[int], List[int]]:
    """Patch weighted distances for ``orphans``; ``(patched, changed)``.

    The weighted sibling of :func:`csr_bfs_repair`: bit-identical to
    ``csr_weighted_distances(csr, mask, source)`` (and to the dense
    rendering of ``csr_dijkstra_flat``'s distance map).  The snapshot
    must carry a flat ``weights`` array; antisymmetric arrays repair
    exactly (seed arcs are read in the intact->orphan direction via
    the reverse arc position).

    Dispatching wrapper over the kernel backend seam, like
    :func:`csr_bfs_repair`.
    """
    orph = list(orphans)
    impl = kernel_impl("csr_dijkstra_repair", csr, len(orph))
    return impl(csr, mask, base, orph)


def csr_dijkstra_repair_loops(csr: CSRGraph, mask: Optional[bytearray],
                              base: List[int], orphans: Iterable[int]
                              ) -> Tuple[List[int], List[int]]:
    """The heap-based loop implementation (the ``pyloops`` backend)."""
    weights = flat_weights(csr)
    indptr, indices = csr.indptr, csr.indices
    arc_positions = csr.arc_positions
    aff = set(orphans)
    patched = list(base)
    unreachable = UNREACHABLE
    for v in aff:
        patched[v] = unreachable
    tentative: Dict[int, int] = {}
    heap: List[Tuple[int, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    for v in aff:
        best: Optional[int] = None
        for i in range(indptr[v], indptr[v + 1]):
            if mask is not None and not mask[i]:
                continue
            u = indices[i]
            if u in aff:
                continue
            du = patched[u]
            if du < 0:
                continue
            # Scanning v's row yields the arc (v, u); the seed needs
            # w(u, v) — look the reverse arc up so antisymmetric
            # snapshots repair exactly.
            pos = arc_positions(u, v)
            if pos is None:  # pragma: no cover - (v, u) is a scanned arc
                continue
            cand = du + weights[pos[0] if u < v else pos[1]]
            if best is None or cand < best:
                best = cand
        if best is not None:
            tentative[v] = best
            push(heap, (best, v))
    tentative_get = tentative.get
    while heap:
        d, v = pop(heap)
        if patched[v] >= 0:
            continue
        patched[v] = d
        for i in range(indptr[v], indptr[v + 1]):
            if mask is not None and not mask[i]:
                continue
            w = indices[i]
            if w not in aff or patched[w] >= 0:
                continue
            cand = d + weights[i]
            known = tentative_get(w)
            if known is None or cand < known:
                tentative[w] = cand
                push(heap, (cand, w))
    changed = sorted(v for v in aff if patched[v] != base[v])
    return patched, changed
