"""The affected region of a fault set, and the delta-vs-wave cost model.

Fix a source ``s`` with base distance vector ``d`` and a base
shortest-path tree ``T_s`` (any SPT of the base graph rooted at ``s``).
For a fault set ``F``:

* a vertex whose selected root-path in ``T_s`` avoids every edge of
  ``F`` keeps its base distance exactly — that path survives in
  ``G \\ F``, and removing edges can only increase distances;
* therefore only the vertices *below* a faulted tree edge (the
  **orphans**) can change, and they can only get farther (or be cut
  off entirely).

The orphan set is a union of subtrees, which the engine's
:class:`~repro.scenarios.engine.TreeFaultIndex` already encodes as
Euler-tour intervals: the orphan *count* is the summed length of the
(merged) cut intervals — ``O(|F| log |F|)``, no vertex touched — and
materialising the orphans themselves is ``O(|F| log |F| + |affected|)``.
That asymmetry is the whole point of :func:`affected_region`: the
decision to patch is taken from the estimate alone, so a fault set
that orphans half the graph costs only the interval arithmetic before
falling back to the full masked wave.

Cost model
----------
Let ``k`` be the orphan count and ``deg`` the average degree.  A
repair re-settles the orphans from their intact frontier, touching
``O(k * deg)`` arcs (each orphan's incident arcs once for seeding,
once for propagation); a full masked wave touches ``O(n + n * deg)``.
The ratio of the two is ``k / n`` up to constants, so the model
compares the orphan count against ``patch_ratio * n`` — plus an
absolute ``min_orphans`` floor under which patching always wins (the
repair's setup cost is a handful of dict operations).  The model is an
explicit frozen dataclass so deployments can tune it per engine
(``ScenarioEngine(graph, delta_policy=CostModel(...))``) and tests can
pin it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

__all__ = ["AffectedRegion", "CostModel", "affected_region"]


@dataclass(frozen=True)
class CostModel:
    """Decides delta-patch vs full wave from the orphan estimate.

    ``patch_ratio`` bounds the orphaned *fraction* of the graph a
    patch may take on (repair work scales with the orphans' arc
    volume, a wave with the whole snapshot's — see the module
    docstring for the algebra); ``min_orphans`` is an absolute floor
    below which patching always wins regardless of graph size.

    Batch sharing: the alternative to ``k`` per-source patches under
    one fault set is a *single* bit-packed wave serving all ``k``
    sources in one masked sweep (PR 3), so the per-source patch
    budget shrinks with the batch — past the ``min_orphans`` floor,
    ``patch_worthwhile`` requires ``estimate * batch_hint <=
    patch_ratio * n``, never letting ``k`` individual repairs out-work
    the one wave they replace.

    ``max_cold_batch`` guards the *setup* cost the patch algebra
    ignores: a source with no base-tree index yet must pay a full
    traversal to build one — as much as the wave it would dodge — so
    building only pays off when the source repeats.  The engine
    therefore builds cold indices only for origins that have been
    declined once before **and** whose pending batch is at most this
    size: a large cold batch is exactly the workload PR 3's single
    bit-packed wave serves best, and ``k`` cold tree builds would
    cost ``k`` times that wave.
    """

    patch_ratio: float = 0.25
    min_orphans: int = 8
    max_cold_batch: int = 4

    def patch_worthwhile(self, estimate: int, n: int,
                         batch_hint: int = 1) -> bool:
        """Should ``estimate`` orphans (of ``n`` vertices) be patched,
        given ``batch_hint`` sources sharing the alternative wave?"""
        if estimate <= self.min_orphans:
            return True
        return estimate * max(1, batch_hint) <= self.patch_ratio * n

    def build_worthwhile(self, seen_before: bool, batch_hint: int) -> bool:
        """Should a *cold* origin's base tree be built now?

        ``seen_before`` — the origin was already declined once (so it
        demonstrably repeats); ``batch_hint`` — how many origins the
        alternative wave would share its sweep with.
        """
        return seen_before and batch_hint <= self.max_cold_batch


@dataclass(frozen=True)
class AffectedRegion:
    """One ``(source, F)`` affected-region verdict.

    ``estimate`` is the exact orphan count (read off the subtree
    intervals without materialising); ``orphans`` is the materialised
    vertex tuple when ``patch`` is True and ``None`` otherwise — the
    fallback path never pays for vertices it will not re-settle.
    """

    source: int
    faults: Tuple
    estimate: int
    patch: bool
    orphans: Optional[Tuple[int, ...]] = None

    def __len__(self) -> int:
        return self.estimate


def affected_region(index: Any, n: int, source: int, faults: Iterable,
                    model: Optional[CostModel] = None,
                    batch_hint: int = 1) -> AffectedRegion:
    """The affected region of ``faults`` against a base tree index.

    Parameters
    ----------
    index:
        A :class:`~repro.scenarios.engine.TreeFaultIndex` built over
        the source's base shortest-path tree (duck-typed: anything
        with ``cut_intervals`` / ``orphans_of_intervals``).
    n:
        Vertex count of the base snapshot (the wave cost the model
        compares against).
    source:
        The tree's root, recorded on the region for bookkeeping.
    faults:
        The canonical fault tuple.
    model:
        The :class:`CostModel`; defaults to a fresh default model.
    batch_hint:
        How many sources would share the alternative wave's sweep
        (shrinks the per-source patch budget — see :class:`CostModel`).
    """
    if model is None:
        model = CostModel()
    faults = tuple(faults)
    # One interval computation serves both the estimate and the
    # materialisation — the patch path must not pay the sort twice.
    intervals = index.cut_intervals(faults)
    estimate = sum(hi - lo for lo, hi in intervals)
    patch = model.patch_worthwhile(estimate, n, batch_hint)
    orphans = (tuple(index.orphans_of_intervals(intervals))
               if patch else None)
    return AffectedRegion(source=source, faults=faults, estimate=estimate,
                          patch=patch, orphans=orphans)
