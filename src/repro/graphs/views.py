"""Read-only fault views ``G \\ F`` over a base graph.

The paper repeatedly reasons about the graph that survives a fault set
``F`` without ever touching ``G`` itself; :class:`FaultView` captures
exactly that.  It exposes the same read interface as
:class:`repro.graphs.base.Graph`, so every algorithm in the library is
written once against the :class:`GraphLike` protocol and works on both.

Views are cheap (O(|F|) construction) and compose: ``view.without(F2)``
produces a view over the *base* graph with the union fault set, so
chained views never stack indirection.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Protocol, Tuple, runtime_checkable

from repro.graphs.base import Edge, Graph, canonical_edge


@runtime_checkable
class GraphLike(Protocol):
    """Structural protocol shared by :class:`Graph`, :class:`FaultView`
    and the CSR snapshots in :mod:`repro.graphs.csr`.

    ``neighbors`` may return any iterable: :class:`Graph` and the CSR
    types return tuple snapshots (safe to hold across mutation), while
    :class:`FaultView` yields lazily.  Callers that need mutation
    safety on an arbitrary ``GraphLike`` should materialise the result.
    """

    @property
    def n(self) -> int: ...

    @property
    def m(self) -> int: ...

    def vertices(self) -> range: ...

    def has_edge(self, u: int, v: int) -> bool: ...

    def neighbors(self, v: int) -> Iterable[int]: ...

    def sorted_neighbors(self, v: int) -> List[int]: ...

    def edges(self) -> Iterator[Edge]: ...


class FaultView:
    """The graph ``G \\ F``: ``base`` with the edges of ``faults`` removed.

    Parameters
    ----------
    base:
        The underlying :class:`Graph` (never mutated).
    faults:
        Edges to remove, in either orientation.  Edges not present in
        ``base`` are tolerated and simply ignored.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> view = g.without([(1, 0)])
    >>> view.has_edge(0, 1)
    False
    >>> g.has_edge(0, 1)
    True
    """

    __slots__ = ("_base", "_faults", "_m")

    def __init__(self, base: Graph, faults: Iterable[Edge]):
        self._base = base
        self._faults = frozenset(canonical_edge(u, v) for u, v in faults)
        # Count the removed edges once: |F| is tiny next to m, and
        # making `m` O(1) keeps algorithms that consult `view.m` inside
        # loops from going accidentally quadratic.  (Views assume the
        # base graph is frozen for their lifetime — the library-wide
        # "one base graph, many scenarios" convention.)
        self._m = base.m - sum(
            1 for e in self._faults if base.has_edge(*e)
        )

    # ------------------------------------------------------------------
    @property
    def base(self) -> Graph:
        """The underlying fault-free graph."""
        return self._base

    @property
    def faults(self) -> frozenset:
        """The canonicalised fault set."""
        return self._faults

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def m(self) -> int:
        """Surviving edge count, precomputed at construction (O(1))."""
        return self._m

    def vertices(self) -> range:
        return self._base.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._base.has_vertex(v)

    def has_edge(self, u: int, v: int) -> bool:
        if not self._base.has_edge(u, v):
            return False
        return canonical_edge(u, v) not in self._faults

    def neighbors(self, v: int) -> Iterator[int]:
        """Lazily yield surviving neighbours of ``v``.

        Contract: unlike :meth:`Graph.neighbors
        <repro.graphs.base.Graph.neighbors>` (a tuple snapshot), this is
        a generator filtered on the fly — do not mutate the base graph
        while consuming it.  For the flat-array equivalent without the
        per-arc ``canonical_edge`` cost, see
        :meth:`repro.graphs.csr.CSRFaultView.neighbors`.
        """
        for u in self._base.neighbors(v):
            if canonical_edge(u, v) not in self._faults:
                yield u

    def sorted_neighbors(self, v: int) -> List[int]:
        return sorted(self.neighbors(v))

    def degree(self, v: int) -> int:
        return sum(1 for _ in self.neighbors(v))

    def edges(self) -> Iterator[Edge]:
        for edge in self._base.edges():
            if edge not in self._faults:
                yield edge

    def arcs(self) -> Iterator[Edge]:
        for u, v in self._base.arcs():
            if canonical_edge(u, v) not in self._faults:
                yield (u, v)

    # ------------------------------------------------------------------
    def without(self, faults: Iterable[Edge]) -> "FaultView":
        """A view over the same base with additional faults (flattened)."""
        extra = frozenset(canonical_edge(u, v) for u, v in faults)
        return FaultView(self._base, self._faults | extra)

    def materialize(self) -> Graph:
        """Copy into a standalone :class:`Graph` (same vertex ids)."""
        graph = Graph(self.n)
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def __repr__(self) -> str:
        return f"FaultView(base={self._base!r}, faults={sorted(self._faults)!r})"
