"""Appendix-B lower-bound constructions (Theorem 27, Figures 2-3).

The paper shows that consistency + stability alone cannot beat the
``O(n^{2-1/2^f} |S|^{1/2^f})`` preserver bound: there are graphs and a
*bad* (consistent, stable, symmetric) tiebreaking scheme forcing
``Ω(n^{2-1/2^f} σ^{1/2^f})`` edges.  This module builds those graphs:

* :func:`build_gf` — the recursive tree gadget ``G_f(d)``: a spine
  ``P_f``, one child copy of ``G_{f-1}(sqrt(d))`` hung off each spine
  vertex by a length-equalising path ``Q^f_i``, and per-leaf *labels*:
  the fault set (one spine edge per level) under which the root-to-leaf
  path survives while everything to the right is cut (Lemma 38).
* :func:`build_lower_bound_instance` — ``G*_f(V, E, W)``: ``G_f(d)``
  plus a vertex set ``X`` fully bipartite to the leaves, with the
  adversarial weight function ``W`` whose unique shortest paths route
  every replacement path through a *distinct* bipartite edge.
* :func:`build_multi_source_instance` — the σ-source extension.
* :func:`forced_preserver_edges` — replays the labelled fault sets and
  returns the edges any preserver honouring the bad scheme must carry;
  the Theorem-27 benchmark checks this count against the Ω-bound.

Deviations from the paper's text (documented per DESIGN.md):

* The leaf perturbation is ``λ - j + 1`` rather than ``λ - j`` so every
  bipartite edge is strictly heavier than a spine edge; with the
  paper's literal ``λ - j`` the last leaf's edges tie with unperturbed
  edges and uniqueness fails on x-to-x' paths.  Monotonicity — the
  property the proof uses — is unchanged.
* The stray ``v*`` in the paper's vertex inventory (never referenced
  again) is omitted; vertex counts are balanced through ``|X|``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge


@dataclass
class GfGadget:
    """The recursive gadget ``G_f(d)`` embedded in a shared graph.

    Attributes
    ----------
    root:
        ``r(G_f(d))`` — the first spine vertex.
    spine:
        The vertices of ``P_f`` in order.
    leaves:
        ``Leaf(G_f(d))`` in left-to-right order.
    labels:
        ``Label_f(z)`` per leaf: the fault set (≤ f edges, one spine
        edge per recursion level) keeping the root-to-``z`` path alive.
    depth:
        Hop distance from root to every leaf (equal across leaves —
        Lemma 38(4)).
    """

    root: int
    spine: List[int]
    leaves: List[int]
    labels: Dict[int, Tuple[Edge, ...]] = field(default_factory=dict)
    depth: int = 0


def _attach_path(graph: Graph, start: int, length: int) -> int:
    """Append a fresh path of ``length`` edges from ``start``; return its
    far endpoint (``start`` itself when ``length == 0``)."""
    current = start
    for _ in range(length):
        nxt = graph.add_vertex()
        graph.add_edge(current, nxt)
        current = nxt
    return current


def _build_gf_into(graph: Graph, f: int, d: int) -> GfGadget:
    if f < 1:
        raise GraphError(f"G_f(d) needs f >= 1, got {f}")
    if d < 1:
        raise GraphError(f"G_f(d) needs d >= 1, got {d}")
    spine = list(graph.add_vertices(d))
    graph.add_path(spine)
    gadget = GfGadget(root=spine[0], spine=spine, leaves=[])

    if f == 1:
        # d disjoint paths Q^1_i of length d - i + 1 ending at leaves.
        for i, u in enumerate(spine, start=1):
            leaf = _attach_path(graph, u, d - i + 1)
            gadget.leaves.append(leaf)
            if i < d:
                gadget.labels[leaf] = (canonical_edge(spine[i - 1], spine[i]),)
            else:
                gadget.labels[leaf] = ()
        gadget.depth = d  # (i - 1) spine hops + (d - i + 1) path hops
        return gadget

    child_d = max(1, math.isqrt(d))
    child_depth = None
    for j, u in enumerate(spine, start=1):
        # Q^f_j of length d - j + 1 into the child copy's root.
        bridge_end = _attach_path(graph, u, d - j + 1 - 1)
        child = _build_gf_into(graph, f - 1, child_d)
        graph.add_edge(bridge_end, child.root)
        if child_depth is None:
            child_depth = child.depth
        prefix: Tuple[Edge, ...]
        if j < d:
            prefix = (canonical_edge(spine[j - 1], spine[j]),)
        else:
            prefix = ()
        for leaf in child.leaves:
            gadget.leaves.append(leaf)
            gadget.labels[leaf] = prefix + child.labels[leaf]
    gadget.depth = d + (child_depth or 0)
    return gadget


def build_gf(f: int, d: int) -> Tuple[Graph, GfGadget]:
    """Build ``G_f(d)`` standalone.  Returns ``(graph, gadget)``."""
    graph = Graph()
    gadget = _build_gf_into(graph, f, d)
    return graph, gadget


@dataclass
class LowerBoundInstance:
    """A fully-assembled ``G*_f`` instance with its adversarial scheme.

    ``scheme`` is a :class:`repro.core.scheme.WeightedTiebreaking` over
    the symmetric weight function ``W`` — consistent, stable, and
    symmetric, yet forcing the Ω-size preserver.
    """

    graph: Graph
    f: int
    sources: List[int]
    gadgets: List[GfGadget]
    x_vertices: List[int]
    bipartite_edges: List[Edge]
    scale: int
    scheme: object = None  # WeightedTiebreaking, set by the builder

    @property
    def n(self) -> int:
        return self.graph.n

    def all_labels(self) -> List[Tuple[int, int, Tuple[Edge, ...]]]:
        """Triples ``(source, leaf, fault-label)`` across all gadgets."""
        out = []
        for source, gadget in zip(self.sources, self.gadgets):
            for leaf in gadget.leaves:
                out.append((source, leaf, gadget.labels[leaf]))
        return out


def _make_weight_scheme(graph: Graph, leaf_rank: Dict[Edge, int],
                        num_leaves: int):
    """The adversarial weight ``W``: spine edges cost ``scale``, the
    bipartite edge at leaf rank ``j`` costs ``scale + (λ - j + 1)``."""
    from repro.core.scheme import WeightedTiebreaking

    n = max(graph.n, 2)
    scale = n ** 4
    perturb = {
        edge: (num_leaves - j + 1) for edge, j in leaf_rank.items()
    }

    def weight(u: int, v: int) -> int:
        return scale + perturb.get(canonical_edge(u, v), 0)

    return WeightedTiebreaking(graph, weight, scale, name="adversarial"), scale


def build_lower_bound_instance(n: int, f: int) -> LowerBoundInstance:
    """The single-source ``G*_f(V, E, W)`` on ~``n`` vertices.

    Uses ``d = floor(sqrt(n / (4 f)))`` as in the paper, builds
    ``G_f(d)``, attaches ``X`` (all remaining vertex budget) to the last
    spine vertex and completely to the leaves, and installs the
    adversarial weights.
    """
    if f < 1:
        raise GraphError(f"need f >= 1, got {f}")
    d = max(2, math.isqrt(n // (4 * f)))
    graph = Graph()
    gadget = _build_gf_into(graph, f, d)
    gadget_size = graph.n
    chi = max(1, n - gadget_size)
    x_vertices = list(graph.add_vertices(chi))
    last_spine = gadget.spine[-1]
    bipartite: List[Edge] = []
    leaf_rank: Dict[Edge, int] = {}
    for x in x_vertices:
        graph.add_edge(last_spine, x)
        for j, leaf in enumerate(gadget.leaves, start=1):
            edge = graph.add_edge(leaf, x)
            bipartite.append(edge)
            leaf_rank[edge] = j
    scheme, scale = _make_weight_scheme(graph, leaf_rank, len(gadget.leaves))
    return LowerBoundInstance(
        graph=graph, f=f, sources=[gadget.root], gadgets=[gadget],
        x_vertices=x_vertices, bipartite_edges=bipartite, scale=scale,
        scheme=scheme,
    )


def build_multi_source_instance(n: int, f: int,
                                sigma: int) -> LowerBoundInstance:
    """The σ-source extension (Figure 2, bottom).

    σ copies of ``G_f(d)`` with ``d = floor(sqrt(n / (4 f σ)))`` share
    one vertex set ``X`` of size Θ(n), completely bipartite to every
    copy's leaf set.
    """
    if sigma < 1:
        raise GraphError(f"need sigma >= 1, got {sigma}")
    d = max(2, math.isqrt(n // (4 * f * sigma)))
    graph = Graph()
    gadgets = [_build_gf_into(graph, f, d) for _ in range(sigma)]
    chi = max(1, n - graph.n)
    x_vertices = list(graph.add_vertices(chi))
    bipartite: List[Edge] = []
    leaf_rank: Dict[Edge, int] = {}
    max_leaves = max(len(g.leaves) for g in gadgets)
    for gadget in gadgets:
        last_spine = gadget.spine[-1]
        for x in x_vertices:
            graph.add_edge(last_spine, x)
            for j, leaf in enumerate(gadget.leaves, start=1):
                edge = graph.add_edge(leaf, x)
                bipartite.append(edge)
                leaf_rank[edge] = j
    scheme, scale = _make_weight_scheme(graph, leaf_rank, max_leaves)
    return LowerBoundInstance(
        graph=graph, f=f, sources=[g.root for g in gadgets],
        gadgets=gadgets, x_vertices=x_vertices, bipartite_edges=bipartite,
        scale=scale, scheme=scheme,
    )


def forced_preserver_edges(instance: LowerBoundInstance) -> frozenset:
    """Replay the labelled fault sets; return every forced edge.

    For each source ``s`` and leaf label ``F = Label(z)``, the bad
    scheme's replacement paths ``pi(s, x | F)`` for all ``x ∈ X`` are
    computed and their edges unioned.  Any ``S x V`` preserver that
    respects the scheme must contain them all; Theorem 27 says the
    union has size ``Ω(n^{2-1/2^f} σ^{1/2^f})``.
    """
    forced = set()
    x_set = set(instance.x_vertices)
    for source, _leaf, label in instance.all_labels():
        tree = instance.scheme.tree(source, label)
        for x in x_set:
            if tree.reaches(x):
                path = tree.path_to(x)
                forced.update(path.edges())
    return frozenset(forced)


def theoretical_lower_bound(n: int, f: int, sigma: int = 1) -> float:
    """The Ω-bound ``sigma^{1/2^f} * (n/f)^{2 - 1/2^f}`` (Theorem 27)."""
    exp = 1.0 / (2 ** f)
    return (sigma ** exp) * ((n / f) ** (2 - exp))
