"""Compressed-sparse-row (CSR) snapshots of a graph — the batch fast path.

The paper's workload shape is "one base graph, many fault sets": the
graph is fixed while thousands of scenarios ``G \\ F`` are examined
against it.  :class:`repro.graphs.views.FaultView` is the *reference*
realisation of that idea — transparent, lazy, and paying a
``canonical_edge`` + ``frozenset`` membership test on every arc it
yields.  :class:`CSRGraph` is the throughput realisation: the adjacency
structure is flattened once into two parallel arrays

* ``indptr`` — ``indptr[v] .. indptr[v + 1]`` brackets row ``v``,
* ``indices`` — the concatenated, per-row-sorted neighbour lists,

and a fault set ``F`` becomes an **arc mask**: a bytearray with one flag
per directed arc, zeroed at the ≤ ``2 |F|`` positions of the faulted
arcs (found by an O(1) dict lookup per fault edge).  Traversals then
touch flat machine integers only; no per-arc canonicalisation, no
hashing, no generator frames.  A standalone :class:`CSRFaultView`
allocates its own mask (O(m) buffer copy + O(|F|) zeroing);
:class:`repro.scenarios.engine.ScenarioEngine` amortises even that by
reusing one scratch mask across a scenario stream.

Both :class:`CSRGraph` and :class:`CSRFaultView` satisfy the read-only
:class:`~repro.graphs.views.GraphLike` protocol, so every reference
algorithm in the library also runs on them unchanged — that is what the
randomized cross-check tests exploit.  The BFS/Dijkstra fast paths in
:mod:`repro.spt` additionally recognise them (via :func:`as_csr`) and
switch to array-based inner loops.

A snapshot may also carry a flat ``weights`` array aligned with
``indices`` — one integer per directed *arc*, so antisymmetric weight
functions (the tiebreaking perturbations of Definition 18, where
``w(u, v) != w(v, u)``) are representable, not just symmetric edge
weights.  Weight-carrying snapshots come from
:meth:`repro.weighted.graph.WeightedGraph.csr` or from
:meth:`CSRGraph.with_arc_weights`, and unlock the flat Dijkstra kernel
(:func:`repro.spt.fastpaths.csr_dijkstra_flat`) that reads weights by
array index instead of calling back into Python per arc.

Snapshots are immutable: they capture the base graph at construction
time and never observe later mutations.  :meth:`repro.graphs.base.Graph.csr`
caches one snapshot per ``(n, m)`` state, which is sound because
:class:`~repro.graphs.base.Graph` supports insertion only.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, canonical_edge

__all__ = ["CSRGraph", "CSRFaultView", "as_csr", "fast_without"]


class CSRGraph:
    """An immutable flat-array adjacency snapshot of a ``GraphLike``.

    Parameters
    ----------
    graph:
        Any object with ``n`` and ``sorted_neighbors`` (``Graph``,
        ``FaultView``, or another CSR object).  Neighbour rows are
        stored sorted, so deterministic (lexicographic) traversals over
        a CSR snapshot match the reference implementations exactly.

    Examples
    --------
    >>> from repro.graphs.base import Graph
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> snap = CSRGraph.from_graph(g)
    >>> snap.n, snap.m
    (4, 4)
    >>> snap.neighbors(0)
    (1, 3)
    >>> snap.without([(0, 1)]).has_edge(0, 1)
    False
    """

    __slots__ = ("_n", "_m", "indptr", "indices", "weights", "_arc_pos",
                 "_nd")

    def __init__(self, n: int, indptr: List[int], indices: List[int],
                 arc_pos: Dict[Edge, Tuple[int, int]],
                 weights: Optional[List[int]] = None):
        self._n = n
        self._m = len(indices) // 2
        self.indptr = indptr
        self.indices = indices
        self._arc_pos = arc_pos
        self._nd: Optional[_NDMirror] = None
        if weights is not None:
            if len(weights) != len(indices):
                raise GraphError(
                    f"weights array has {len(weights)} entries for "
                    f"{len(indices)} arcs"
                )
            for w in weights:
                if w <= 0:
                    raise GraphError(f"non-positive arc weight {w}")
        self.weights = weights

    @classmethod
    def from_graph(cls, graph: Any,
                   arc_weight: Optional[Callable[[int, int], int]] = None
                   ) -> "CSRGraph":
        """Flatten ``graph`` into a fresh snapshot (one O(n + m) pass).

        When ``arc_weight`` (a ``(u, v) -> int`` callable) is given,
        the snapshot carries a flat per-arc weights array; positivity
        is validated here, once, so the weighted kernels can skip the
        per-arc check.
        """
        n = graph.n
        indptr = [0] * (n + 1)
        indices: List[int] = []
        for v in range(n):
            indices.extend(graph.sorted_neighbors(v))
            indptr[v + 1] = len(indices)
        # Arc positions: canonical edge -> (index of v in row u, index of
        # u in row v) with u < v.  This is what makes fault masking
        # O(|F|) instead of O(m).
        arc_pos: Dict[Edge, Tuple[int, int]] = {}
        pos_of: Dict[Tuple[int, int], int] = {}
        for u in range(n):
            for i in range(indptr[u], indptr[u + 1]):
                pos_of[(u, indices[i])] = i
        for (u, v), i in pos_of.items():
            if u < v:
                arc_pos[(u, v)] = (i, pos_of[(v, u)])
        weights: Optional[List[int]] = None
        if arc_weight is not None:
            weights = [
                arc_weight(u, indices[i])
                for u in range(n)
                for i in range(indptr[u], indptr[u + 1])
            ]
        return cls(n, indptr, indices, arc_pos, weights)

    def with_arc_weights(self, arc_weight: Callable[[int, int], int]
                         ) -> "CSRGraph":
        """A reweighted snapshot sharing this topology (O(m) weight calls).

        ``indptr``/``indices`` and the arc-position table are shared
        with ``self`` (all immutable), so only the weights array is
        fresh.  ``arc_weight`` is evaluated per directed arc, which is
        what lets antisymmetric tiebreaking perturbations be
        materialised into a flat array once and then read by index in
        the Dijkstra inner loop.
        """
        weights = [
            arc_weight(u, self.indices[i])
            for u in range(self._n)
            for i in range(self.indptr[u], self.indptr[u + 1])
        ]
        return CSRGraph(self._n, self.indptr, self.indices,
                        self._arc_pos, weights)

    # ------------------------------------------------------------------
    # GraphLike queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._m

    def vertices(self) -> range:
        return range(self._n)

    def has_vertex(self, v: int) -> bool:
        return 0 <= v < self._n

    def has_edge(self, u: int, v: int) -> bool:
        if u == v or not (self.has_vertex(u) and self.has_vertex(v)):
            return False
        return canonical_edge(u, v) in self._arc_pos

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbours of ``v`` in ascending order (tuple snapshot)."""
        self._check_vertex(v)
        return tuple(self.indices[self.indptr[v]:self.indptr[v + 1]])

    def sorted_neighbors(self, v: int) -> List[int]:
        self._check_vertex(v)
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return self.indptr[v + 1] - self.indptr[v]

    def edges(self) -> Iterator[Edge]:
        for u in range(self._n):
            for i in range(self.indptr[u], self.indptr[u + 1]):
                v = self.indices[i]
                if u < v:
                    yield (u, v)

    def arcs(self) -> Iterator[Edge]:
        for u in range(self._n):
            for i in range(self.indptr[u], self.indptr[u + 1]):
                yield (u, self.indices[i])

    def is_connected(self) -> bool:
        if self._n == 0:
            return True
        from repro.spt.bfs import UNREACHABLE, bfs_distances

        return UNREACHABLE not in bfs_distances(self, 0)

    def arc_weight(self, u: int, v: int) -> int:
        """Weight of the directed arc ``(u, v)`` from the flat array.

        Only valid on weight-carrying snapshots.  The two orientations
        of an edge are stored separately, so antisymmetric weights read
        back exactly.  Passing this bound method as the ``weight``
        argument of :func:`repro.spt.dijkstra.dijkstra` selects the
        flat array kernel.
        """
        if self.weights is None:
            raise GraphError("snapshot carries no weights array")
        pos = self._arc_pos.get(canonical_edge(u, v))
        if pos is None:
            raise GraphError(f"({u}, {v}) is not an edge")
        return self.weights[pos[0] if u < v else pos[1]]

    # ------------------------------------------------------------------
    # fault masking
    # ------------------------------------------------------------------
    def arc_positions(self, u: int, v: int) -> Optional[Tuple[int, int]]:
        """Positions of arcs ``(u, v)`` and ``(v, u)`` in ``indices``.

        Returns ``None`` when the edge is absent.  Position order
        follows the canonical orientation ``u < v``.
        """
        return self._arc_pos.get(canonical_edge(u, v))

    def without(self, faults: Iterable[Edge]) -> "CSRFaultView":
        """A masked view of ``G \\ F`` (O(m) buffer + O(|F|) zeroing).

        Mirrors :meth:`repro.graphs.base.Graph.without`: orientation is
        ignored and faults absent from the graph are tolerated.  For
        long scenario streams prefer
        :class:`repro.scenarios.engine.ScenarioEngine`, which reuses
        one scratch mask instead of allocating per view.
        """
        return CSRFaultView(self, faults)

    # ------------------------------------------------------------------
    def ndarrays(self) -> Optional["_NDMirror"]:
        """Cached ndarray mirrors of the flat arrays (None sans numpy).

        Built lazily on first request and cached for the snapshot's
        lifetime, so the list→ndarray conversion cost is paid once per
        snapshot, not once per kernel call — the contract the
        vectorized backend (:mod:`repro.backends.vectorized`) relies
        on.  Soundness follows from immutability: the flat arrays
        never change after construction, so the mirror cannot go
        stale.  Returns ``None`` when numpy is unavailable
        (:func:`repro.backends.api.numpy_or_none` is the gate).
        """
        nd = self._nd
        if nd is None:
            from repro.backends.api import numpy_or_none
            np = numpy_or_none()
            if np is None:
                return None
            nd = self._nd = _NDMirror(np, self)
        return nd

    def __getstate__(self) -> Tuple[Any, ...]:
        # The ndarray mirror is dropped: ndarrays don't belong on the
        # multiprocessing pickle boundary (ScenarioEngine.run ships
        # snapshots to workers) and are rebuilt lazily on demand.
        return (self._n, self.indptr, self.indices, self._arc_pos,
                self.weights)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        n, indptr, indices, arc_pos, weights = state
        self._n = n
        self._m = len(indices) // 2
        self.indptr = indptr
        self.indices = indices
        self._arc_pos = arc_pos
        self.weights = weights
        self._nd = None

    def _as_csr(self) -> Tuple["CSRGraph", Optional[bytearray]]:
        """Fast-path dispatch hook: ``(snapshot, arc mask or None)``."""
        return self, None

    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, int):
            raise GraphError(f"vertices must be ints, got {v!r}")
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} outside range(0, {self._n})")

    def __repr__(self) -> str:
        return f"CSRGraph(n={self._n}, m={self._m})"


class _NDMirror:
    """ndarray mirrors of one snapshot's flat arrays (numpy required).

    Everything the vectorized kernels index per call, converted once:

    * ``indptr`` / ``indices`` — int64 copies of the CSR arrays.
    * ``tails`` — the tail vertex of every arc (``indices[i]`` is the
      head; ``tails[i]`` the row it lives in), so a gathered arc set
      knows both endpoints without bisecting ``indptr``.
    * ``weights`` — int64 copy of the flat weights, or ``None`` when
      the snapshot is unweighted *or* a weight overflows int64 (huge
      tiebreaking perturbations); ``max_weight`` backs the
      dispatcher's overflow guard.
    * ``rev`` — the reverse-arc permutation: ``rev[i]`` is the
      position of arc ``(head_i, tail_i)``.  Arc ids are sorted by
      ``(tail, head)`` (rows are sorted), so the permutation sorting
      them by ``(head, tail)`` *is* the reverse map on a simple graph.
      Built only for weighted snapshots (seed lookups in the weighted
      repair kernel need it).
    """

    __slots__ = ("indptr", "indices", "tails", "weights", "rev",
                 "max_weight")

    def __init__(self, np: Any, csr: "CSRGraph"):
        self.indptr = np.asarray(csr.indptr, dtype=np.int64)
        self.indices = np.asarray(csr.indices, dtype=np.int64)
        counts = self.indptr[1:] - self.indptr[:-1]
        self.tails = np.repeat(np.arange(csr.n, dtype=np.int64), counts)
        self.weights: Any = None
        self.rev: Any = None
        self.max_weight = 0
        if csr.weights is not None:
            try:
                w = np.asarray(csr.weights, dtype=np.int64)
            except OverflowError:
                w = None
            if w is not None:
                self.weights = w
                self.max_weight = int(w.max()) if len(csr.weights) else 0
                self.rev = np.lexsort((self.tails, self.indices))


class CSRFaultView:
    """``G \\ F`` over a :class:`CSRGraph`, realised as an arc mask.

    Construction allocates a fresh all-ones mask (one O(m) bytearray
    copy), then zeroes ≤ ``2 |F|`` positions — one dict lookup and two
    writes per fault edge actually present.  The mask is shared with
    the fast traversals in :mod:`repro.spt`, which skip masked arcs
    inline.

    Like :class:`~repro.graphs.views.FaultView`, the view is read-only,
    tolerates absent/duplicate fault edges, and composes: ``without``
    flattens onto the same base snapshot.
    """

    __slots__ = ("_base", "_faults", "_mask", "_removed")

    def __init__(self, base: CSRGraph, faults: Iterable[Edge]):
        self._base = base
        self._faults = frozenset(canonical_edge(u, v) for u, v in faults)
        self._mask = bytearray(b"\x01") * len(base.indices)
        removed = 0
        for edge in self._faults:
            pos = base._arc_pos.get(edge)
            if pos is not None:
                self._mask[pos[0]] = 0
                self._mask[pos[1]] = 0
                removed += 1
        self._removed = removed

    # ------------------------------------------------------------------
    @property
    def base(self) -> CSRGraph:
        return self._base

    @property
    def faults(self) -> frozenset:
        return self._faults

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def m(self) -> int:
        return self._base.m - self._removed

    def vertices(self) -> range:
        return self._base.vertices()

    def has_vertex(self, v: int) -> bool:
        return self._base.has_vertex(v)

    def has_edge(self, u: int, v: int) -> bool:
        if not self._base.has_edge(u, v):
            return False
        return canonical_edge(u, v) not in self._faults

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Surviving neighbours of ``v`` in ascending order."""
        base = self._base
        base._check_vertex(v)
        lo, hi = base.indptr[v], base.indptr[v + 1]
        mask = self._mask
        return tuple(
            u for u, ok in zip(base.indices[lo:hi], mask[lo:hi]) if ok
        )

    def sorted_neighbors(self, v: int) -> List[int]:
        return list(self.neighbors(v))

    def degree(self, v: int) -> int:
        base = self._base
        base._check_vertex(v)
        lo, hi = base.indptr[v], base.indptr[v + 1]
        return sum(self._mask[lo:hi])

    def edges(self) -> Iterator[Edge]:
        for edge in self._base.edges():
            if edge not in self._faults:
                yield edge

    def arcs(self) -> Iterator[Edge]:
        mask = self._mask
        base = self._base
        for u in range(base.n):
            for i in range(base.indptr[u], base.indptr[u + 1]):
                if mask[i]:
                    yield (u, base.indices[i])

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        from repro.spt.bfs import UNREACHABLE, bfs_distances

        return UNREACHABLE not in bfs_distances(self, 0)

    def arc_weight(self, u: int, v: int) -> int:
        """Weight of the surviving arc ``(u, v)`` (faulted arcs raise)."""
        if not self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) not present in the view")
        return self._base.arc_weight(u, v)

    @classmethod
    def _adopt(cls, base: CSRGraph, faults: frozenset,
               mask: bytearray) -> "CSRFaultView":
        """Internal: wrap an existing mask buffer without copying it.

        ``faults`` must already be canonical and ``mask`` already
        zeroed at their arc positions (see the scenario engine's
        scratch mask).  The view aliases the buffer, so it must not
        outlive the buffer's validity window.
        """
        view = cls.__new__(cls)
        view._base = base
        view._faults = faults
        view._mask = mask
        view._removed = sum(1 for e in faults if e in base._arc_pos)
        return view

    # ------------------------------------------------------------------
    def without(self, faults: Iterable[Edge]) -> "CSRFaultView":
        """A view over the same snapshot with the union fault set."""
        extra = frozenset(canonical_edge(u, v) for u, v in faults)
        return CSRFaultView(self._base, self._faults | extra)

    def _as_csr(self) -> Tuple[CSRGraph, Optional[bytearray]]:
        return self._base, self._mask

    def __repr__(self) -> str:
        return (
            f"CSRFaultView(base={self._base!r}, "
            f"faults={sorted(self._faults)!r})"
        )


def fast_without(graph: Any, faults: Iterable[Edge]) -> Any:
    """``G \\ F`` on the cheapest structure ``graph`` supports.

    A :class:`~repro.graphs.base.Graph` routes through its cached CSR
    snapshot, so traversals that follow take the array fast path; any
    other ``GraphLike`` (including CSR types and ``FaultView``) falls
    back to its own ``without``.  This is the one shared definition of
    the dispatch — call sites should not re-implement it.
    """
    csr_method = getattr(graph, "csr", None)
    if csr_method is not None:
        return csr_method().without(faults)
    return graph.without(faults)


def as_csr(graph: Any) -> Optional[Tuple[CSRGraph, Optional[bytearray]]]:
    """``(snapshot, mask)`` when ``graph`` has a CSR fast path, else None.

    The :mod:`repro.spt` traversals call this to decide between the
    array inner loops and the generic ``GraphLike`` reference code.
    Dispatch is duck-typed on the ``_as_csr`` hook so third-party
    structures can opt in.
    """
    hook = getattr(graph, "_as_csr", None)
    return hook() if hook is not None else None
