"""Deterministic synthetic graph generators used by tests and benchmarks.

All random generators take an explicit ``seed`` and use a private
:class:`random.Random` instance, so every experiment in the benchmark
harness is reproducible bit-for-bit.  Families mirror the workloads a
network-design paper would be exercised on: sparse random graphs,
meshes/tori (data-centre style topologies), hypercubes, and the small
pathological instances from the paper (``C4`` from Appendix A).
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from repro.exceptions import GraphError
from repro.graphs.base import Graph


def cycle(n: int) -> Graph:
    """The cycle ``C_n`` (``n >= 3``).

    ``cycle(4)`` is the Appendix-A counterexample graph showing symmetry
    and 1-restorability are incompatible (Theorem 37).
    """
    if n < 3:
        raise GraphError(f"a cycle needs >= 3 vertices, got {n}")
    graph = Graph(n)
    for v in range(n):
        graph.add_edge(v, (v + 1) % n)
    return graph


def path(n: int) -> Graph:
    """The path graph ``P_n`` on ``n`` vertices."""
    graph = Graph(n)
    graph.add_path(range(n))
    return graph


def complete(n: int) -> Graph:
    """The complete graph ``K_n``."""
    graph = Graph(n)
    for u, v in itertools.combinations(range(n), 2):
        graph.add_edge(u, v)
    return graph


def complete_bipartite(a: int, b: int) -> Graph:
    """``K_{a,b}`` with left part ``0..a-1`` and right part ``a..a+b-1``."""
    graph = Graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def star(n: int) -> Graph:
    """A star: centre ``0`` joined to leaves ``1..n-1``."""
    graph = Graph(n)
    for v in range(1, n):
        graph.add_edge(0, v)
    return graph


def grid(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` 2-D grid mesh.

    Vertex ``(r, c)`` maps to id ``r * cols + c``.  Grids are heavily
    tied: between opposite corners there are exponentially many shortest
    paths, which makes them the canonical stress test for tiebreaking.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be >= 1")
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def torus(rows: int, cols: int) -> Graph:
    """The 2-D torus (grid with wraparound).  Requires dims >= 3."""
    if rows < 3 or cols < 3:
        raise GraphError("torus dimensions must be >= 3 (else multi-edges)")
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            graph.add_edge(v, r * cols + (c + 1) % cols)
            graph.add_edge(v, ((r + 1) % rows) * cols + c)
    return graph


def hypercube(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube ``Q_d`` on ``2^d`` vertices."""
    if dimension < 1:
        raise GraphError("hypercube dimension must be >= 1")
    n = 1 << dimension
    graph = Graph(n)
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                graph.add_edge(v, u)
    return graph


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """The Erdős–Rényi graph ``G(n, p)`` with a fixed seed."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must lie in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def gnm(n: int, m: int, seed: int = 0) -> Graph:
    """A uniform random graph with exactly ``n`` vertices and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"m={m} exceeds max {max_edges} for n={n}")
    rng = random.Random(seed)
    graph = Graph(n)
    while graph.m < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def connected_erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """``G(n, p)`` patched to be connected.

    A random spanning tree (uniform attachment) is inserted first, then
    ``G(n, p)`` edges on top.  This keeps expected degree ~``np`` while
    guaranteeing every pair has a path, which most experiments need.
    """
    rng = random.Random(seed)
    graph = Graph(n)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        graph.add_edge(order[i], order[rng.randrange(i)])
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_regular(n: int, degree: int, seed: int = 0) -> Graph:
    """A random ``degree``-regular graph (via networkx, relabelled)."""
    import networkx as nx

    nx_graph = nx.random_regular_graph(degree, n, seed=seed)
    return Graph.from_networkx(nx_graph)


def biclique_chain(blocks: int, block_size: int) -> Graph:
    """A chain of ``blocks`` complete-bipartite blocks glued at cut vertices.

    Produces graphs with very many tied shortest paths between distant
    vertices (each block multiplies the tie count by ``block_size``),
    used to stress-test tiebreaking uniqueness.
    """
    if blocks < 1 or block_size < 1:
        raise GraphError("blocks and block_size must be >= 1")
    graph = Graph(1)
    left = 0
    for _ in range(blocks):
        middle = graph.add_vertices(block_size)
        right = graph.add_vertex()
        for v in middle:
            graph.add_edge(left, v)
            graph.add_edge(v, right)
        left = right
    return graph


def petersen() -> Graph:
    """The Petersen graph (classic 3-regular counterexample factory)."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(10, outer + inner + spokes)


def fault_sample(graph: Graph, count: int, seed: int = 0,
                 size: int = 1) -> list:
    """Sample ``count`` distinct fault sets of ``size`` edges from ``graph``.

    Returns a list of tuples of canonical edges; useful for sampled
    verification when the full fault space is too large to enumerate.
    """
    rng = random.Random(seed)
    edges = list(graph.edges())
    if size > len(edges):
        raise GraphError(f"cannot pick {size} faults from {len(edges)} edges")
    seen = set()
    out = []
    limit = count * 50 + 100
    attempts = 0
    while len(out) < count and attempts < limit:
        attempts += 1
        faults = tuple(sorted(rng.sample(edges, size)))
        if faults not in seen:
            seen.add(faults)
            out.append(faults)
    return out


# Every family by_name() dispatches — the one constant the CLI and the
# benchmark harness share for their --family choices.
FAMILIES = ("er", "grid", "torus", "hypercube", "cycle", "path",
            "complete", "star", "petersen")


def by_name(name: str, n: int, seed: int = 0, p: Optional[float] = None) -> Graph:
    """Dispatch helper used by the CLI and the benchmark harness.

    ``name`` is one of :data:`FAMILIES`.  ``n`` is interpreted per
    family (side length for grid/torus, dimension for hypercube,
    ignored by the fixed-size petersen graph).
    """
    if name == "er":
        return connected_erdos_renyi(n, p if p is not None else 4.0 / n, seed)
    if name == "grid":
        return grid(n, n)
    if name == "torus":
        return torus(n, n)
    if name == "hypercube":
        return hypercube(n)
    if name == "cycle":
        return cycle(n)
    if name == "path":
        return path(n)
    if name == "complete":
        return complete(n)
    if name == "star":
        return star(n)
    if name == "petersen":
        return petersen()
    raise GraphError(f"unknown graph family {name!r} "
                     f"(choose from {', '.join(FAMILIES)})")
