"""Serialization for graphs and fault-tolerant artifacts.

Plain-text edge lists for graphs (interoperable with networkx and
every graph tool in existence) and JSON for the library's derived
artifacts (preservers, distance labelings), so experiments can be
checkpointed and artifacts shipped between processes.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path as FilePath
from typing import Union

from repro.exceptions import GraphError
from repro.graphs.base import Graph

PathLike = Union[str, FilePath]


# ----------------------------------------------------------------------
# edge lists
# ----------------------------------------------------------------------
def write_edgelist(graph: Graph, path: PathLike) -> None:
    """Write ``n`` on the first line, then one ``u v`` pair per line."""
    lines = [str(graph.n)]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    FilePath(path).write_text("\n".join(lines) + "\n")


def read_edgelist(path: PathLike) -> Graph:
    """Inverse of :func:`write_edgelist`."""
    text = FilePath(path).read_text()
    lines = [ln for ln in text.splitlines() if ln.strip()
             and not ln.lstrip().startswith("#")]
    if not lines:
        raise GraphError(f"empty edge list file {path}")
    try:
        n = int(lines[0])
    except ValueError as exc:
        raise GraphError(
            f"first line of {path} must be the vertex count"
        ) from exc
    graph = Graph(n)
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 2:
            raise GraphError(f"malformed edge line {ln!r} in {path}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(
                f"malformed edge line {ln!r} in {path}"
            ) from exc
        graph.add_edge(u, v)
    return graph


def edgelist_string(graph: Graph) -> str:
    """The edge-list encoding as a string (for embedding/logging)."""
    lines = [str(graph.n)]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# preservers
# ----------------------------------------------------------------------
def preserver_to_json(preserver) -> str:
    """Serialise a :class:`repro.preservers.ft_bfs.Preserver`."""
    return json.dumps({
        "kind": "preserver",
        "n": preserver.graph.n,
        "sources": list(preserver.sources),
        "faults_tolerated": preserver.faults_tolerated,
        "edges": sorted(list(e) for e in preserver.edges),
    })


def preserver_from_json(payload: str, graph: Graph):
    """Rehydrate a preserver against its (caller-supplied) base graph."""
    from repro.preservers.ft_bfs import Preserver

    data = json.loads(payload)
    if data.get("kind") != "preserver":
        raise GraphError("payload is not a serialised preserver")
    if data["n"] != graph.n:
        raise GraphError(
            f"preserver was built on n={data['n']}, graph has n={graph.n}"
        )
    return Preserver(
        graph=graph,
        edges=frozenset(tuple(e) for e in data["edges"]),
        sources=tuple(data["sources"]),
        faults_tolerated=data["faults_tolerated"],
    )


# ----------------------------------------------------------------------
# distance labelings
# ----------------------------------------------------------------------
def labeling_to_json(labeling) -> str:
    """Serialise a :class:`repro.labeling.DistanceLabeling`.

    Label bitstrings are base64-encoded with their exact bit length, so
    the round trip preserves the measured label sizes.
    """
    from repro.labeling.scheme import VertexLabel  # noqa: F401 (doc link)

    vertices = {}
    for v in labeling._labels:  # labels are the object's whole state
        label = labeling.label(v)
        vertices[str(v)] = {
            "bits": label.bits,
            "data": base64.b64encode(label.data).decode("ascii"),
        }
    return json.dumps({
        "kind": "labeling",
        "f": labeling.faults_tolerated - 1,
        "labels": vertices,
    })


def labeling_from_json(payload: str):
    """Inverse of :func:`labeling_to_json`."""
    from repro.labeling.scheme import DistanceLabeling, VertexLabel

    data = json.loads(payload)
    if data.get("kind") != "labeling":
        raise GraphError("payload is not a serialised labeling")
    labels = {}
    for key, entry in data["labels"].items():
        vertex = int(key)
        labels[vertex] = VertexLabel(
            vertex=vertex,
            data=base64.b64decode(entry["data"]),
            bits=entry["bits"],
        )
    return DistanceLabeling(labels, data["f"])
