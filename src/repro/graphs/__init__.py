"""Graph substrate: representation, fault views, generators.

The paper's setting is undirected, unweighted, simple graphs.  The central
type is :class:`~repro.graphs.base.Graph`; edge faults are modelled
non-destructively by :class:`~repro.graphs.views.FaultView` so that a
single graph instance can serve many concurrent fault scenarios.

Synthetic workloads live in :mod:`repro.graphs.generators`, and the
Appendix-B lower-bound families in :mod:`repro.graphs.lowerbound`.
"""

from repro.graphs.base import Graph, canonical_edge
from repro.graphs.views import FaultView, GraphLike
from repro.graphs.csr import CSRGraph, CSRFaultView
from repro.graphs import generators
from repro.graphs import lowerbound

__all__ = [
    "Graph",
    "FaultView",
    "GraphLike",
    "CSRGraph",
    "CSRFaultView",
    "canonical_edge",
    "generators",
    "lowerbound",
]
