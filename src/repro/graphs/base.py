"""Undirected, unweighted, simple graph on integer vertices.

The whole library standardises on vertices being the integers
``0 .. n-1``.  Undirected edges are *canonical pairs* ``(u, v)`` with
``u < v``; directed arcs (used by the reweighted graph ``G*`` of the
paper) are plain ordered pairs.  Keeping edges as small tuples of ints
makes fault sets hashable, cheap to copy, and trivially serialisable.

The class is deliberately minimal: it supports construction, queries and
conversion, but *not* edge deletion.  Edge faults are expressed through
:class:`repro.graphs.views.FaultView`, which presents ``G \\ F`` without
mutating ``G``.  This mirrors the paper's usage, where the base graph is
fixed and many fault scenarios are examined against it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

from repro.exceptions import GraphError

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    >>> canonical_edge(3, 1)
    (1, 3)
    """
    if u == v:
        raise GraphError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


class Graph:
    """An undirected, unweighted, simple graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertices are implicitly ``range(num_vertices)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Orientation and duplicates are
        ignored; self-loops raise :class:`~repro.exceptions.GraphError`.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])  # a C4
    >>> g.n, g.m
    (4, 4)
    >>> sorted(g.neighbors(0))
    [1, 3]
    >>> g.has_edge(2, 1)
    True
    """

    __slots__ = ("_n", "_adj", "_m", "_csr")

    def __init__(self, num_vertices: int = 0, edges: Iterable[Edge] = ()):
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._adj: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._m = 0
        self._csr = None
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self._adj.append(set())
        self._n += 1
        return self._n - 1

    def add_vertices(self, count: int) -> range:
        """Append ``count`` fresh vertices; return their id range."""
        if count < 0:
            raise GraphError(f"count must be >= 0, got {count}")
        start = self._n
        for _ in range(count):
            self.add_vertex()
        return range(start, self._n)

    def add_edge(self, u: int, v: int) -> Edge:
        """Insert the undirected edge ``{u, v}``; return its canonical form.

        Inserting an existing edge is a no-op (simple graph).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        edge = canonical_edge(u, v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._m += 1
        return edge

    def add_path(self, vertices: Iterable[int]) -> None:
        """Insert edges forming a path through ``vertices`` in order."""
        sequence = list(vertices)
        for u, v in zip(sequence, sequence[1:]):
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._m

    def vertices(self) -> range:
        """All vertex ids, in order."""
        return range(self._n)

    def has_vertex(self, v: int) -> bool:
        return 0 <= v < self._n

    def has_edge(self, u: int, v: int) -> bool:
        if not (self.has_vertex(u) and self.has_vertex(v)) or u == v:
            return False
        return v in self._adj[u]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """The neighbours of ``v`` as a tuple snapshot (unspecified order).

        Contract: the returned tuple is detached from the adjacency
        structure, so callers may mutate the graph (``add_edge``,
        ``add_vertex``) while iterating it.  Historically this returned
        a live set iterator, and ``add_edge`` inside the loop raised
        ``RuntimeError: Set changed size during iteration``.  Note that
        :meth:`FaultView.neighbors <repro.graphs.views.FaultView.neighbors>`
        remains a lazy generator — fault views are read-only snapshots
        of an (assumed frozen) base, where laziness is safe and keeps
        view construction O(|F|).
        """
        self._check_vertex(v)
        return tuple(self._adj[v])

    def sorted_neighbors(self, v: int) -> List[int]:
        """Neighbours of ``v`` in ascending order (deterministic walks)."""
        self._check_vertex(v)
        return sorted(self._adj[v])

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical undirected edges, lexicographically."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def arcs(self) -> Iterator[Edge]:
        """Iterate over both orientations of every edge.

        This is the arc set of the symmetric directed graph the paper
        obtains by replacing each undirected edge with two directed ones
        (Section 3.1).
        """
        for u in range(self._n):
            for v in self._adj[u]:
                yield (u, v)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def without(self, faults: Iterable[Edge]):
        """Return a read-only view of ``G \\ F`` for the fault set ``F``.

        ``faults`` may contain edges in either orientation; edges absent
        from the graph are ignored (removing them is a no-op), matching
        the paper's convention that a fault set is just a set of edges.
        """
        from repro.graphs.views import FaultView

        return FaultView(self, faults)

    def csr(self):
        """A cached immutable CSR snapshot of the current graph state.

        The snapshot (see :class:`repro.graphs.csr.CSRGraph`) enables
        the array-based BFS/Dijkstra fast paths and O(|F|) masked fault
        views used by :mod:`repro.scenarios`.  Because :class:`Graph`
        supports insertion only, any mutation changes ``(n, m)``, so the
        stamp check below is a sound invalidation rule.
        """
        from repro.graphs.csr import CSRGraph

        cached = self._csr
        if (cached is None or cached.n != self._n
                or cached.m != self._m):
            cached = CSRGraph.from_graph(self)
            self._csr = cached
        return cached

    def copy(self) -> "Graph":
        clone = Graph(self._n)
        clone._adj = [set(neighbours) for neighbours in self._adj]
        clone._m = self._m
        return clone

    def is_connected(self) -> bool:
        """True when the graph is connected (the empty graph counts)."""
        if self._n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self._n

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for cross-checks)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.vertices())
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build from a networkx graph, relabelling vertices to ``0..n-1``.

        Vertex order follows ``sorted`` order when the labels are
        sortable, insertion order otherwise.
        """
        nodes = list(nx_graph.nodes())
        try:
            nodes.sort()
        except TypeError:
            pass
        index = {node: i for i, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v in nx_graph.edges():
            if u != v:
                graph.add_edge(index[u], index[v])
        return graph

    # ------------------------------------------------------------------
    # dunder / internal
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self):
        raise TypeError("Graph is mutable and unhashable")

    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, int):
            raise GraphError(f"vertices must be ints, got {v!r}")
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} outside range(0, {self._n})")
