"""Fault-scenario generators: streams of fault sets against one graph.

A *scenario* is just a canonical tuple of fault edges ``F`` examined
against a fixed base graph — the unit of work of the paper's whole
methodology and of :class:`repro.scenarios.engine.ScenarioEngine`.
This module supplies the standard scenario universes:

* :func:`single_edge_faults` — every ``|F| = 1`` scenario (the f = 1
  regime of Theorems 1/2 and Figure 1);
* :func:`all_fault_subsets` — exhaustive ``|F| <= f`` enumeration, the
  ground-truth universe the verification suite sweeps;
* :func:`random_fault_sets` — seeded i.i.d. samples for large graphs
  where exhaustive enumeration is hopeless;
* :func:`tree_edge_faults` — the adversarial universe: faults restricted
  to the edges of a selected shortest-path tree, which are exactly the
  faults that *must* reroute traffic from that tree's root;
* :func:`clustered_fault_sets` — seeded correlated/regional failures:
  each scenario's faults are sampled inside one BFS ball, the shape of
  real-world outages (a cut fibre duct, a flooded region) and the
  realistic adversary of the incremental-delta path — spatially close
  faults orphan one coherent region instead of scattering.

All generators yield sorted canonical tuples, deterministically, so a
scenario stream is reproducible and safe to ship across a process pool.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, List, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, canonical_edge

FaultSet = Tuple[Edge, ...]


def _canonical(faults: Iterable[Edge]) -> FaultSet:
    return tuple(sorted({canonical_edge(u, v) for u, v in faults}))


def single_edge_faults(graph) -> Iterator[FaultSet]:
    """Every single-edge fault scenario, in lexicographic edge order.

    >>> from repro.graphs.generators import cycle
    >>> list(single_edge_faults(cycle(3)))
    [((0, 1),), ((0, 2),), ((1, 2),)]
    """
    for edge in sorted(graph.edges()):
        yield (edge,)


def all_fault_subsets(graph, f: int,
                      include_smaller: bool = False) -> Iterator[FaultSet]:
    """All fault sets of size exactly ``f`` (or ``<= f``), lexicographic.

    Mirrors the enumeration order of the brute-force verifiers, so
    batched results line up index-for-index with exhaustive sweeps.
    The empty scenario is included only in ``include_smaller`` mode.
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    edges = sorted(graph.edges())
    sizes = range(f + 1) if include_smaller else (f,)
    for size in sizes:
        yield from itertools.combinations(edges, size)


def random_fault_sets(graph, f: int, count: int,
                      seed: int = 0) -> List[FaultSet]:
    """``count`` seeded uniform random fault sets, each of size exactly
    ``min(f, graph.m)``.

    Every draw samples that many *distinct* edges; duplicates across
    draws are allowed — they are legitimate repeated scenarios in a
    traffic mix.
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    if count < 0:
        raise GraphError(f"count must be >= 0, got {count}")
    edges = sorted(graph.edges())
    rng = random.Random(seed)
    size = min(f, len(edges))
    return [
        _canonical(rng.sample(edges, size)) for _ in range(count)
    ]


def clustered_fault_sets(graph, f: int, count: int, radius: int = 2,
                         seed: int = 0) -> List[FaultSet]:
    """``count`` seeded correlated fault sets, each inside one BFS ball.

    Every draw picks a centre vertex uniformly, grows its BFS ball of
    the given ``radius`` (expanding the radius until the ball holds at
    least ``f`` edges or the centre's component is exhausted), and
    samples ``min(f, ball edges)`` *distinct* edges with both
    endpoints inside the ball.  Draws are independent, so repeated
    regions across the stream are legitimate repeated scenarios, like
    :func:`random_fault_sets`.  A centre isolated in its component
    yields the empty scenario.

    This is the regional-failure universe: faults here are spatially
    correlated, the worst case for naive per-pair filtering (one
    region hits many paths at once) and the best case for the
    incremental-delta path (the orphaned region is one coherent
    patch, not ``f`` scattered subtrees).
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    if count < 0:
        raise GraphError(f"count must be >= 0, got {count}")
    if radius < 0:
        raise GraphError(f"radius must be >= 0, got {radius}")
    if graph.n == 0:
        return [() for _ in range(count)]
    rng = random.Random(seed)
    out: List[FaultSet] = []
    for _ in range(count):
        centre = rng.randrange(graph.n)
        # Grow the ball level by level, continuing from the saved
        # frontier on each radius increment — never re-walking the
        # ball — and edge-scan each vertex's row once, when it first
        # becomes part of the ball: an in-ball edge is recorded by
        # whichever endpoint's row is scanned later (the set dedups
        # same-level pairs), so the whole draw costs O(vol(ball)).
        r = radius
        ball = {centre}
        frontier = [centre]
        pending_rows = [centre]
        edge_set = set()
        depth = 0
        while True:
            while frontier and depth < r:
                depth += 1
                nxt = []
                for u in frontier:
                    for w in graph.sorted_neighbors(u):
                        if w not in ball:
                            ball.add(w)
                            nxt.append(w)
                frontier = nxt
                pending_rows.extend(nxt)
            for v in pending_rows:
                for w in graph.sorted_neighbors(v):
                    if w in ball:
                        edge_set.add(canonical_edge(v, w))
            pending_rows = []
            if len(edge_set) >= f or not frontier:
                # Enough edges to sample from, or the ball already
                # covers the centre's whole component.
                break
            r += 1
        edges = sorted(edge_set)
        out.append(_canonical(rng.sample(edges, min(f, len(edges)))))
    return out


def tree_edge_faults(tree, f: int = 1) -> Iterator[FaultSet]:
    """Adversarial scenarios: size-``f`` fault sets of selected tree edges.

    ``tree`` is a :class:`repro.spt.trees.ShortestPathTree`; each of its
    edges carries selected shortest paths, so faulting them is the
    worst case for the tree's root — every scenario here forces a
    reroute, unlike a random edge which usually misses all selected
    paths.
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    yield from itertools.combinations(sorted(tree.edges()), f)
