"""Fault-scenario generators: streams of fault sets against one graph.

A *scenario* is just a canonical tuple of fault edges ``F`` examined
against a fixed base graph — the unit of work of the paper's whole
methodology and of :class:`repro.scenarios.engine.ScenarioEngine`.
This module supplies the standard scenario universes:

* :func:`single_edge_faults` — every ``|F| = 1`` scenario (the f = 1
  regime of Theorems 1/2 and Figure 1);
* :func:`all_fault_subsets` — exhaustive ``|F| <= f`` enumeration, the
  ground-truth universe the verification suite sweeps;
* :func:`random_fault_sets` — seeded i.i.d. samples for large graphs
  where exhaustive enumeration is hopeless;
* :func:`tree_edge_faults` — the adversarial universe: faults restricted
  to the edges of a selected shortest-path tree, which are exactly the
  faults that *must* reroute traffic from that tree's root.

All generators yield sorted canonical tuples, deterministically, so a
scenario stream is reproducible and safe to ship across a process pool.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, List, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, canonical_edge

FaultSet = Tuple[Edge, ...]


def _canonical(faults: Iterable[Edge]) -> FaultSet:
    return tuple(sorted({canonical_edge(u, v) for u, v in faults}))


def single_edge_faults(graph) -> Iterator[FaultSet]:
    """Every single-edge fault scenario, in lexicographic edge order.

    >>> from repro.graphs.generators import cycle
    >>> list(single_edge_faults(cycle(3)))
    [((0, 1),), ((0, 2),), ((1, 2),)]
    """
    for edge in sorted(graph.edges()):
        yield (edge,)


def all_fault_subsets(graph, f: int,
                      include_smaller: bool = False) -> Iterator[FaultSet]:
    """All fault sets of size exactly ``f`` (or ``<= f``), lexicographic.

    Mirrors the enumeration order of the brute-force verifiers, so
    batched results line up index-for-index with exhaustive sweeps.
    The empty scenario is included only in ``include_smaller`` mode.
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    edges = sorted(graph.edges())
    sizes = range(f + 1) if include_smaller else (f,)
    for size in sizes:
        yield from itertools.combinations(edges, size)


def random_fault_sets(graph, f: int, count: int,
                      seed: int = 0) -> List[FaultSet]:
    """``count`` seeded uniform random fault sets, each of size exactly
    ``min(f, graph.m)``.

    Every draw samples that many *distinct* edges; duplicates across
    draws are allowed — they are legitimate repeated scenarios in a
    traffic mix.
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    if count < 0:
        raise GraphError(f"count must be >= 0, got {count}")
    edges = sorted(graph.edges())
    rng = random.Random(seed)
    size = min(f, len(edges))
    return [
        _canonical(rng.sample(edges, size)) for _ in range(count)
    ]


def tree_edge_faults(tree, f: int = 1) -> Iterator[FaultSet]:
    """Adversarial scenarios: size-``f`` fault sets of selected tree edges.

    ``tree`` is a :class:`repro.spt.trees.ShortestPathTree`; each of its
    edges carries selected shortest paths, so faulting them is the
    worst case for the tree's root — every scenario here forces a
    reroute, unlike a random edge which usually misses all selected
    paths.
    """
    if f < 0:
        raise GraphError(f"fault budget must be >= 0, got {f}")
    yield from itertools.combinations(sorted(tree.edges()), f)
