"""The batched fault-scenario engine.

One base graph, many fault sets — the paper's methodology and the
library's dominant workload.  :class:`ScenarioEngine` serves it by
amortising everything that does not depend on the individual scenario:

* the CSR snapshot of the base graph (built once, shared by every
  scenario's O(|F|) arc-masked view);
* base BFS distance vectors per queried source/target;
* selected shortest-path trees (cached by the scheme) and their
  :class:`TreeFaultIndex` subtree intervals, which turn
  ``tree_fault_free_vertices`` from a per-scenario tree walk into an
  interval complement;
* a *touch filter* for pair queries: a fault set that contains no edge
  of any shortest ``s ~> t`` path cannot change ``dist(s, t)``, and
  membership is O(1) per fault edge against the two base distance
  vectors — so the common "fault missed me" scenario costs O(|F|)
  instead of a BFS;
* a bounded LRU *scenario memo* for pair queries: sampled traffic
  streams repeat fault sets, and a repeat keyed by
  ``(s, t, canonical fault tuple)`` skips even the touch filter
  (hit/miss/eviction counters via :meth:`ScenarioEngine.cache_info`);
* a per-``(source, canonical fault tuple)`` *distance-vector cache*
  sharing the same LRU (one eviction policy for both entry kinds):
  streams that share a fault set across many pairs pay one masked
  traversal per source, and later pairs are answered by indexing;
* batched multi-source waves: :meth:`ScenarioEngine.source_vectors`
  feeds every uncached source of one fault set to the bit-packed
  multi-source kernels of :mod:`repro.spt.batched`, so one sweep over
  the arc array serves the whole source batch, and
  :meth:`ScenarioEngine.evaluate_pairs` groups an arbitrary
  ``(s, t, F)`` pair stream by canonical fault set so each masked wave
  serves every pair sharing that ``F``;
* *incremental deltas* (:mod:`repro.incremental`): a fault set whose
  orphaned region — the subtrees of the source's base SPT hanging
  below faulted tree edges — is small gets its distance vector
  *patched* from the base vector by a repair kernel instead of paying
  a full masked traversal.  :meth:`ScenarioEngine.try_delta` reads
  the orphan count off the :class:`TreeFaultIndex` subtree intervals
  in ``O(|F| log |F|)``, consults an explicit
  :class:`~repro.incremental.affected.CostModel`, and falls back to
  the wave path when the region is large (``delta_hits`` /
  ``delta_fallbacks`` counters in :meth:`cache_info`; ``delta=False``
  disables the strategy).

The engine is weight-aware: handed a
:class:`~repro.weighted.graph.WeightedGraph` (or any graph whose CSR
snapshot carries a flat ``weights`` array), base distances come from
the flat Dijkstra kernel instead of BFS, the touch filter generalises
to ``d_s(u) + w(u, v) + d_t(v) == d_s(t)``, and per-scenario queries
run masked weighted Dijkstra.  Scheme-based queries (midpoint scans,
preserver checks) remain unweighted-only and raise on a weighted
engine.

Per-scenario work then runs over flat arrays (see
:mod:`repro.spt.fastpaths`), optionally fanned out across a
``multiprocessing`` pool for embarrassingly parallel scenario streams.

Since PR 4 the engine is the *kernel layer* under the declarative
query API (:mod:`repro.query`): a :class:`~repro.query.session.Session`
owns an engine and a planner that groups arbitrary mixed query streams
onto these batched kernels.  The engine's per-call batch query methods
(``replacement_distances``, ``evaluate_pairs``, ``run_pairs``,
``distance_vectors``, ``connectivity``) survive as thin deprecated
shims; the scalar primitives (``pair_replacement_distance``,
``source_vector``/``source_vectors``, ``base_distances``) and the
batch jobs the Session facades (``restoration_sweep``,
``preserver_violations``, ``midpoint_scan``) remain the supported
kernel surface, alongside the planner protocol (:meth:`peek_pair`,
:meth:`peek_vector`, :meth:`store_pair`).

Example
-------
>>> from repro.graphs import generators
>>> from repro.scenarios import ScenarioEngine
>>> g = generators.grid(4, 4)
>>> engine = ScenarioEngine(g)
>>> engine.source_vector(0, [(0, 1)])[15]  # dist_{G \\ (0,1)}(0, 15)
6
"""

from __future__ import annotations

import pickle
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro import obs as _obs
from repro.backends.dispatch import backend_for
from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.graphs.csr import CSRFaultView, CSRGraph
from repro.incremental.affected import CostModel, affected_region
from repro.scenarios.enumerate import FaultSet, _canonical
from repro.spt.batched import csr_bfs_distances_many
from repro.spt.bfs import UNREACHABLE
from repro.spt.fastpaths import (
    csr_bfs_distances,
    csr_bfs_tree,
    csr_dijkstra_flat,
    csr_hop_distance,
    csr_weighted_distance,
    csr_weighted_distances,
)
from repro.spt.trees import ShortestPathTree

__all__ = ["CacheInfo", "ScenarioEngine", "ScenarioResult",
           "TreeFaultIndex"]

_MISS = object()  # memo sentinel: cached values include UNREACHABLE (-1)


def _deprecated(name: str) -> None:
    warnings.warn(
        f"ScenarioEngine.{name} is deprecated; route query streams "
        f"through repro.query.Session (the typed query API)",
        DeprecationWarning, stacklevel=3,
    )


@dataclass(frozen=True)
class CacheInfo:
    """Frozen snapshot of the shared LRU memo's counters.

    ``hits`` / ``misses`` / ``evictions`` cover the per-pair
    ``(s, t, F)`` memo (names kept from PR 2 for back-compat);
    ``vector_*`` cover the per-``(source, F)`` distance-vector cache.
    ``delta_hits`` counts vectors served by *patching* the base
    vector over a small affected region (:mod:`repro.incremental`),
    ``delta_fallbacks`` the scenarios whose region was too large, so
    the cost model sent them back to the full-wave path.  ``size``
    counts entries of both kinds; ``maxsize`` bounds their sum — one
    eviction policy.  ``wave_backends`` reports which kernel backend
    (:mod:`repro.backends`) served the engine's batched waves, as
    sorted ``(name, count)`` pairs — JSON-able and hashable like every
    other field.  ``pool_fallbacks`` counts the times
    :meth:`ScenarioEngine.run` was asked for a process pool but had to
    degrade to the serial path (each occurrence also emits a
    :class:`RuntimeWarning`), so pool/fleet degradation is observable
    instead of silent.

    Attribute access is the canonical interface; ``__getitem__`` and
    ``keys`` keep the pre-existing mapping idiom working, so
    ``info["hits"]`` still reads and ``dict(info)`` round-trips for
    JSON payloads.
    """

    hits: int
    misses: int
    evictions: int
    vector_hits: int
    vector_misses: int
    vector_evictions: int
    delta_hits: int
    delta_fallbacks: int
    size: int
    maxsize: int
    wave_backends: Tuple[Tuple[str, int], ...] = ()
    pool_fallbacks: int = 0

    def __getitem__(self, key: str) -> Any:
        if key not in _CACHE_INFO_FIELDS:
            raise KeyError(key)
        return getattr(self, key)

    def keys(self):
        return iter(_CACHE_INFO_FIELDS)

    def __iter__(self):
        # Mapping-style iteration (yields keys, so `"hits" in info`
        # and `list(info)` behave like the PR-2 raw dict).
        return iter(_CACHE_INFO_FIELDS)

    def __eq__(self, other) -> bool:
        if isinstance(other, CacheInfo):
            return self.as_dict() == other.as_dict()
        if isinstance(other, dict):  # the PR-2 raw-dict idiom
            return self.as_dict() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self.as_dict().values()))

    def as_dict(self) -> Dict[str, Any]:
        """A plain dict (JSON-ready), same keys as the PR-2 payload."""
        return {name: getattr(self, name) for name in _CACHE_INFO_FIELDS}

    def publish(self, **labels: Any) -> None:
        """Mirror this snapshot into the obs registry as gauges.

        The observability contract for the engine counters: the hot
        paths keep bumping plain ints (a registry call per cache hit
        would tax the PR 1–5 loops), and every :meth:`cache_info`
        snapshot re-publishes them, making :class:`CacheInfo` the thin
        view through which the registry sees the cache plane.  No-op
        while :mod:`repro.obs` is disabled.
        """
        if not _obs.ENABLED:
            return
        for name in _CACHE_INFO_FIELDS:
            if name == "wave_backends":
                continue
            _obs.set_gauge(f"repro_cache_{name}",
                           float(getattr(self, name)), **labels)
        for backend, count in self.wave_backends:
            _obs.set_gauge("repro_cache_wave_backends", float(count),
                           backend=backend, **labels)

    @classmethod
    def merge(cls, infos: Iterable["CacheInfo"]) -> "CacheInfo":
        """Aggregate many snapshots into one (fleet / multi-session).

        Every counter sums — including ``size`` and ``maxsize``, which
        become the aggregate footprint and aggregate capacity of the
        merged caches — and the per-backend wave tallies merge by
        name.  Merging the per-worker reports of a
        :class:`~repro.fleet.session.FleetSession` equals the fleet's
        own :meth:`~repro.fleet.session.FleetSession.cache_info`.
        """
        totals = {name: 0 for name in _CACHE_INFO_FIELDS
                  if name != "wave_backends"}
        backends: Dict[str, int] = {}
        for info in infos:
            for name in totals:
                totals[name] += info[name]
            for backend, count in info.wave_backends:
                backends[backend] = backends.get(backend, 0) + count
        return cls(wave_backends=tuple(sorted(backends.items())),
                   **totals)


_CACHE_INFO_FIELDS = tuple(f.name for f in fields(CacheInfo))


def _snapshot_of(graph) -> CSRGraph:
    """The CSR snapshot to batch over — one definition for engine and pool.

    An immutable :class:`CSRGraph` (possibly weight-carrying) is
    adopted as-is; a graph with a cached ``csr()`` (``Graph``,
    ``WeightedGraph``) routes through it; anything else is flattened
    fresh.
    """
    if isinstance(graph, CSRGraph):
        return graph
    csr_method = getattr(graph, "csr", None)
    return csr_method() if csr_method is not None \
        else CSRGraph.from_graph(graph)


@contextmanager
def _scratch_masked(csr: CSRGraph, scratch: bytearray,
                    faults: Iterable[Edge]):
    """Zero the <= 2|F| fault-arc positions of ``scratch``, then restore.

    The per-scenario cost is O(|F|) against a long-lived buffer, versus
    the O(m) fresh-bytearray copy a :class:`CSRFaultView` would pay.
    The yielded mask is shared state: it must not outlive the block.
    """
    positions: List[int] = []
    for u, v in faults:
        pos = csr.arc_positions(u, v)
        if pos is not None:
            positions.extend(pos)
    for p in positions:
        scratch[p] = 0
    try:
        yield scratch
    finally:
        for p in positions:
            scratch[p] = 1


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome: its index in the stream, ``F``, a value."""

    index: int
    faults: FaultSet
    value: Any


class TreeFaultIndex:
    """Subtree intervals of a shortest-path tree, for O(|F|) fault cuts.

    A vertex's selected root-path avoids a fault set ``F`` iff the
    vertex lies below no faulted *tree* edge.  Precomputing an Euler
    tour (entry/exit positions per vertex) makes "below a faulted
    edge" an interval membership, so the fault-free vertex set of a
    scenario is the complement of at most ``|F|`` disjoint intervals —
    no per-vertex ``canonical_edge`` hashing, no re-walk of the tree.

    Produces exactly the same sets as
    :func:`repro.core.restoration.tree_fault_free_vertices`.
    """

    __slots__ = ("tree", "_tour", "_enter", "_exit", "_edge_child", "_all")

    def __init__(self, tree):
        self.tree = tree
        children: Dict[int, List[int]] = {}
        for v in tree.vertices_by_hop():
            p = tree.parent(v)
            if p is not None:
                children.setdefault(p, []).append(v)
        tour: List[int] = []
        enter: Dict[int, int] = {}
        exit_: Dict[int, int] = {}
        stack: List[Tuple[int, bool]] = [(tree.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                exit_[v] = len(tour)
                continue
            enter[v] = len(tour)
            tour.append(v)
            stack.append((v, True))
            for c in reversed(children.get(v, ())):
                stack.append((c, False))
        self._tour = tour
        self._enter = enter
        self._exit = exit_
        self._edge_child = {
            canonical_edge(v, p): v
            for v, p in ((v, tree.parent(v)) for v in enter)
            if p is not None
        }
        self._all: Optional[frozenset] = None

    def cut_intervals(self, faults: Iterable[Edge]
                      ) -> List[Tuple[int, int]]:
        """Disjoint, sorted Euler intervals cut by the faulted tree edges.

        Subtree intervals are laminar (disjoint or nested), so after
        sorting, an interval starting inside the running frontier is
        nested under an already-cut subtree and dropped.  O(|F| log
        |F|) — no vertex is touched.  Callers needing both the orphan
        count and the orphans themselves should compute the intervals
        once and feed them to :meth:`orphans_of_intervals` (what
        :func:`repro.incremental.affected.affected_region` does).
        """
        cut: List[Tuple[int, int]] = []
        child_of = self._edge_child.get
        canon = canonical_edge
        enter, exit_ = self._enter, self._exit
        for u, v in faults:
            child = child_of(canon(u, v))
            if child is not None:
                cut.append((enter[child], exit_[child]))
        cut.sort()
        merged: List[Tuple[int, int]] = []
        keep = merged.append
        pos = 0
        for lo, hi in cut:
            if lo < pos:  # nested under an already-cut subtree
                continue
            keep((lo, hi))
            pos = hi
        return merged

    def orphan_estimate(self, faults: Iterable[Edge]) -> int:
        """How many vertices hang below a faulted tree edge — exact,
        in O(|F| log |F|), without materialising any of them.

        Each vertex appears once in the Euler tour, so a cut
        interval's length *is* its subtree's size; the estimate is
        the summed length of the merged intervals.  This is what lets
        the delta cost model (:mod:`repro.incremental.affected`)
        reject a half-the-graph fault set for the price of interval
        arithmetic.
        """
        return sum(hi - lo for lo, hi in self.cut_intervals(faults))

    def orphans_of_intervals(self, intervals: Iterable[Tuple[int, int]]
                             ) -> List[int]:
        """Materialise the vertices of already-computed cut intervals
        (O(|orphans|)) — the second half of :meth:`orphaned_vertices`
        for callers that sized the region first."""
        out: List[int] = []
        grow = out.extend
        tour = self._tour
        for lo, hi in intervals:
            grow(tour[lo:hi])
        return out

    def orphaned_vertices(self, faults: Iterable[Edge]) -> List[int]:
        """The vertices below some faulted tree edge — the complement
        of :meth:`fault_free_vertices` within the tree, materialised
        in O(|F| log |F| + |orphans|)."""
        return self.orphans_of_intervals(self.cut_intervals(faults))

    def fault_free_vertices(self, faults: Iterable[Edge]) -> Set[int]:
        """Vertices whose selected root-path avoids every fault edge."""
        cut = self.cut_intervals(faults)
        if not cut:
            if self._all is None:
                self._all = frozenset(self._tour)
            return set(self._all)
        good: List[int] = []
        grow = good.extend
        tour = self._tour
        pos = 0
        for lo, hi in cut:
            grow(tour[pos:lo])
            pos = hi
        grow(tour[pos:])
        return set(good)


class ScenarioEngine:
    """Batch evaluator for many fault scenarios over one base graph.

    Parameters
    ----------
    graph:
        The base :class:`~repro.graphs.base.Graph`,
        :class:`~repro.weighted.graph.WeightedGraph`, or any
        ``GraphLike`` that a CSR snapshot can be built from.  Assumed
        frozen for the engine's lifetime, per the library-wide
        scenario convention.  When the snapshot carries a flat weights
        array the engine runs in weighted mode: distances are exact
        weighted distances via the flat Dijkstra kernels.
    memoize:
        Capacity of the shared scenario memo (one LRU, one eviction
        policy) holding both per-pair entries keyed
        ``(s, t, canonical fault tuple)`` and per-source
        distance-vector entries keyed ``(source, canonical fault
        tuple)``.  ``0`` disables both.  The bound counts *entries*:
        a pair entry is one int but a vector entry is an O(n) list,
        so the worst-case footprint is ``memoize * n`` words — size
        ``memoize`` down on memory-constrained deployments with
        vector-heavy streams.  (Vectors handed to long-lived
        consumers, e.g. DSO preprocessing rows, are aliased — the
        cache holds a reference to the same list, not a copy.)
    delta:
        Enable the incremental-delta strategy (:meth:`try_delta`,
        default True): per-source base SPT indices are built lazily
        (one traversal per queried source, amortised across the
        stream like :meth:`base_distances`), and fault sets whose
        orphaned region the cost model deems small are served by
        patching instead of a full masked wave — bit-identical
        answers, counted under ``delta_hits`` / ``delta_fallbacks``.
    delta_policy:
        The :class:`~repro.incremental.affected.CostModel` deciding
        patch vs wave; defaults to a fresh default model.

    Notes
    -----
    All batch methods accept any iterable of fault sets (tuples, lists,
    or frozensets of edges in either orientation) and return results
    aligned with the input order.
    """

    def __init__(self, graph, memoize: int = 4096, delta: bool = True,
                 delta_policy: Optional[CostModel] = None):
        self.graph = graph
        self.csr: CSRGraph = _snapshot_of(graph)
        self.weighted: bool = self.csr.weights is not None
        # The touch filter reads dist_t[x] as "distance from x to t",
        # which holds iff the weights are symmetric (always true for a
        # WeightedGraph snapshot; an adopted antisymmetric snapshot
        # from with_arc_weights must skip the filter, conservatively
        # treating every fault set as touching).
        self._symmetric_weights = (
            all(
                self.csr.weights[i] == self.csr.weights[j]
                for i, j in self.csr._arc_pos.values()
            ) if self.weighted else True
        )
        self._base_dist: Dict[int, List[int]] = {}
        self._tree_index: Dict[int, TreeFaultIndex] = {}
        # Scenario memo: one bounded LRU (one eviction policy) holding
        # two entry kinds — pair replacement distances keyed
        # (s, t, F) and per-source distance vectors keyed (s, F).
        # Repeated fault sets in sampled streams skip even the touch
        # filter, and pairs sharing (s, F) are answered by indexing a
        # cached vector instead of re-traversing.  Key kinds are
        # distinguished by tuple length (3 = pair, 2 = vector).
        self._memo: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._memo_max = max(0, memoize)
        self.cache_hits = 0
        self.cache_misses = 0
        self.pair_evictions = 0
        self.vector_hits = 0
        self.vector_misses = 0
        self.vector_evictions = 0
        # Incremental-delta state: per-source base SPT fault indices
        # (built lazily, or adopted via adopt_base_tree) and the
        # patch-vs-wave counters.
        self.delta_enabled = bool(delta)
        self.delta_policy = delta_policy if delta_policy is not None \
            else CostModel()
        self._delta_index: Dict[int, TreeFaultIndex] = {}
        # Sources declined once while cold — the warm-up bookkeeping
        # behind CostModel.build_worthwhile (bounded by n).
        self._delta_seen: Set[int] = set()
        self.delta_hits = 0
        self.delta_fallbacks = 0
        # Waves served per kernel backend (repro.backends) — surfaced
        # through cache_info() and the Session stats.
        self.wave_backends: Dict[str, int] = {}
        self.last_repair_backend: Optional[str] = None
        # Times run() degraded from a requested process pool to the
        # serial path (warned, and surfaced through cache_info so
        # fleet/pool monitoring sees the degradation).
        self.pool_fallbacks = 0
        # Perturbed-weight state (weighted mode): snapshot per seed,
        # SSSP result per (seed, source) — the amortised substrate of
        # restore_via_middle_edge over a scenario stream.
        self._perturbed: Dict[int, Tuple[CSRGraph, int]] = {}
        self._perturbed_sssp: Dict[Tuple[int, int], Tuple] = {}
        # Reusable arc mask: zeroed at <= 2|F| positions per scenario
        # and restored afterwards, so per-scenario masking really is
        # O(|F|) (a fresh CSRFaultView would pay an O(m) buffer copy).
        self._scratch_mask = bytearray(b"\x01") * len(self.csr.indices)
        self._mask_busy = False

    @contextmanager
    def _masked(self, faults: Iterable[Edge]):
        """The shared scratch mask with ``faults`` zeroed, then restored.

        Re-entrant: if the scratch buffer is already loaned out (e.g.
        an evaluator passed to :meth:`run` calls back into an engine
        query while holding its scenario view), the nested use gets a
        private freshly-allocated mask instead, so the outer view stays
        valid and the inner query sees only its own fault set.
        """
        if self._mask_busy:
            yield self.csr.without(faults)._as_csr()[1]
            return
        self._mask_busy = True
        try:
            with _scratch_masked(self.csr, self._scratch_mask,
                                 faults) as mask:
                yield mask
        finally:
            self._mask_busy = False

    def _require_unweighted(self, what: str) -> None:
        if self.weighted:
            raise GraphError(
                f"{what} runs on hop distances and tiebreaking schemes; "
                f"it is not defined for a weighted engine"
            )

    def _require_weighted(self, what: str) -> None:
        if not self.weighted:
            raise GraphError(f"{what} requires a weighted engine")

    @property
    def symmetric_weights(self) -> bool:
        """True when ``dist(u, v) == dist(v, u)`` holds snapshot-wide.

        Always true on an unweighted engine (undirected hops) and on a
        ``WeightedGraph`` snapshot; false for an adopted antisymmetric
        snapshot built via ``with_arc_weights``.  The query planner
        consults this before waving a pair group from the target side.
        """
        return self._symmetric_weights

    def _memo_put(self, key: Tuple, value) -> None:
        """Insert into the shared LRU, evicting (and counting) overflow."""
        if not self._memo_max:
            return
        self._memo[key] = value
        self._memo.move_to_end(key)
        if len(self._memo) > self._memo_max:
            old_key, _ = self._memo.popitem(last=False)
            if len(old_key) == 3:
                self.pair_evictions += 1
            else:
                self.vector_evictions += 1

    # ------------------------------------------------------------------
    # amortised base state
    # ------------------------------------------------------------------
    def base_distances(self, source: int) -> List[int]:
        """Fault-free distances from ``source`` (computed once).

        Hop distances via array BFS on an unweighted engine, exact
        weighted distances via the flat Dijkstra kernel on a weighted
        one; either way a dense vector with ``UNREACHABLE`` (-1) where
        cut off.
        """
        cached = self._base_dist.get(source)
        if cached is None:
            if self.weighted:
                cached = csr_weighted_distances(self.csr, None, source)
            else:
                cached = csr_bfs_distances(self.csr, None, source)
            self._base_dist[source] = cached
        return cached

    def perturbed_csr(self, seed: int = 0) -> Tuple[CSRGraph, int]:
        """``(snapshot, scale)`` under perturbed-unique weights, per seed.

        Materialises :meth:`WeightedGraph.perturbed_weight
        <repro.weighted.graph.WeightedGraph.perturbed_weight>` into a
        flat (antisymmetric) per-arc array once per seed, so the
        middle-edge restoration sweep reads perturbed weights by index.
        """
        self._require_weighted("perturbed_csr")
        cached = self._perturbed.get(seed)
        if cached is None:
            perturbed = getattr(self.graph, "perturbed_weight", None)
            if perturbed is None:
                raise GraphError(
                    "perturbed_csr needs a WeightedGraph base "
                    "(got a bare weighted snapshot)"
                )
            arc_weight, scale = perturbed(seed=seed)
            cached = (self.csr.with_arc_weights(arc_weight), scale)
            self._perturbed[seed] = cached
        return cached

    def perturbed_sssp(self, source: int, seed: int = 0):
        """Cached ``(dist, parent)`` maps under perturbed weights."""
        key = (seed, source)
        cached = self._perturbed_sssp.get(key)
        if cached is None:
            pcsr, _ = self.perturbed_csr(seed)
            cached = csr_dijkstra_flat(pcsr, None, source)
            self._perturbed_sssp[key] = cached
        return cached

    def tree_index(self, tree) -> TreeFaultIndex:
        """The cached :class:`TreeFaultIndex` for a (scheme-cached) tree."""
        # Keyed by identity: schemes cache their trees, and the index
        # holds a strong reference, so the id stays valid while cached.
        cached = self._tree_index.get(id(tree))
        if cached is None or cached.tree is not tree:
            cached = TreeFaultIndex(tree)
            self._tree_index[id(tree)] = cached
        return cached

    def view(self, faults: Iterable[Edge]):
        """The O(|F|) arc-masked CSR view of ``G \\ F``."""
        return self.csr.without(faults)

    # ------------------------------------------------------------------
    # incremental deltas: patch base vectors instead of re-traversing
    # ------------------------------------------------------------------
    def base_tree_index(self, source: int) -> TreeFaultIndex:
        """The source's base-SPT :class:`TreeFaultIndex` (built once).

        The substrate of the delta path: a base shortest-path tree
        from ``source`` (deterministic BFS tree, or the flat-Dijkstra
        tree on a weighted engine) wrapped in subtree intervals, so a
        fault set's orphaned region reads off in O(|F| log |F|).
        Building costs one additional base-graph traversal per
        source, amortised across the scenario stream — which is why
        :meth:`try_delta` only builds for origins the cost model
        expects to repeat (``adopt_base_tree`` sidesteps the build
        entirely).
        """
        cached = self._delta_index.get(source)
        if cached is None:
            if self.weighted:
                dist, parent = csr_dijkstra_flat(self.csr, None, source)
                if source not in self._base_dist:
                    # The flat Dijkstra just produced exact base
                    # distances; render them dense rather than paying
                    # a second full traversal in base_distances.
                    dense = [UNREACHABLE] * self.csr.n
                    for v, d in dist.items():
                        dense[v] = d
                    self._base_dist[source] = dense
            else:
                parent = csr_bfs_tree(self.csr, None, source)
                base = self.base_distances(source)
                dist = {v: base[v] for v in parent}
            cached = TreeFaultIndex(
                ShortestPathTree(source, parent, dist)
            )
            self._delta_index[source] = cached
        return cached

    def adopt_base_tree(self, source: int, tree) -> None:
        """Adopt a caller-held SPT as ``source``'s delta index.

        Consumers that already paid for a shortest-path tree per
        source (a tiebreaking scheme, the DSO) can donate it instead
        of letting :meth:`base_tree_index` traverse again.  The tree
        is validated to be a genuine shortest-path tree of the base
        graph — every tree edge must exist and tighten the hop
        distance by exactly one, and the tree must reach every
        reachable vertex — because a stale or foreign tree would make
        the delta path silently patch the wrong region.  Unweighted
        engines only (a weighted engine derives its own SSSP tree).
        """
        self._require_unweighted("adopt_base_tree")
        if tree.root != source:
            raise GraphError(
                f"tree is rooted at {tree.root}, not at {source}"
            )
        base = self.base_distances(source)
        reached = 0
        for v in tree.vertices_by_hop():
            reached += 1
            p = tree.parent(v)
            if p is None:
                continue
            if not self.csr.has_edge(p, v) or base[v] != base[p] + 1:
                raise GraphError(
                    f"({p}, {v}) is not a tight edge of the base "
                    f"graph; refusing a non-shortest-path tree for "
                    f"source {source}"
                )
        if reached != sum(1 for d in base if d >= 0):
            raise GraphError(
                f"tree reaches {reached} vertices but {source} "
                f"reaches more in the base graph"
            )
        self._delta_index[source] = TreeFaultIndex(tree)

    def try_delta(self, source: int, faults: Iterable[Edge],
                  batch_hint: int = 1) -> Optional[List[int]]:
        """The delta-patched ``(source, F)`` vector, or ``None``.

        Part of the planner protocol.  Reads the orphaned-region size
        off the base tree's subtree intervals and consults the
        engine's cost model: a small region is re-settled from its
        intact frontier by the repair kernels
        (:mod:`repro.incremental.repair`) — bit-identical to the full
        masked kernels, counted as a delta hit, and stored in the
        shared LRU vector cache like any waved vector — while a large
        one returns ``None`` (a counted fallback: the caller should
        traverse).  Returned vectors are read-only, like every cached
        vector.

        A *cold* origin (no base-tree index yet) is declined until
        the cost model's warm-up rule fires
        (:meth:`~repro.incremental.affected.CostModel.build_worthwhile`):
        building the index costs a full traversal — as much as the
        wave it would dodge — so the first faulted query per source
        rides the wave, and a large cold batch (``batch_hint`` =
        sources sharing the alternative wave's single sweep) keeps
        riding it; :meth:`adopt_base_tree` pre-warms for free.
        """
        if not self.delta_enabled:
            return None
        fault_key = _canonical(faults)
        if not fault_key:
            return self.base_distances(source)
        index = self._delta_index.get(source)
        if index is None:
            # Decline BEFORE touching base state: a declined origin
            # must cost dict lookups only, or a large cold batch
            # would pay one base traversal per source just to be told
            # to ride the shared wave.
            if not self.delta_policy.build_worthwhile(
                    source in self._delta_seen, batch_hint):
                self._delta_seen.add(source)
                self.delta_fallbacks += 1
                return None
            index = self.base_tree_index(source)
            self._delta_seen.discard(source)
        base = self.base_distances(source)
        region = affected_region(
            index, self.csr.n, source, fault_key,
            self.delta_policy, batch_hint=batch_hint,
        )
        if not region.patch:
            self.delta_fallbacks += 1
            return None
        kernel = ("csr_dijkstra_repair" if self.weighted
                  else "csr_bfs_repair")
        orphans = list(region.orphans)
        backend = backend_for(kernel, self.csr, batch=len(orphans))
        self.last_repair_backend = backend.name
        repair = getattr(backend, kernel)
        # Per-repair observability seam, same contract as _wave's.
        t0 = perf_counter() if _obs.ENABLED else 0.0
        with self._masked(fault_key) as mask:
            patched, _changed = repair(self.csr, mask, base, orphans)
        if _obs.ENABLED:
            dt = perf_counter() - t0
            _obs.observe("repro_delta_repair_seconds", dt,
                         kernel=kernel, backend=backend.name)
            _obs.inc("repro_delta_repairs_total",
                     kernel=kernel, backend=backend.name)
            _obs.emit_span("delta_repair", dt, kernel=kernel,
                           backend=backend.name, orphans=len(orphans))
        self.delta_hits += 1
        self._memo_put((source, fault_key), patched)
        return patched

    # ------------------------------------------------------------------
    # replacement-path queries
    # ------------------------------------------------------------------
    def faults_touch_pair(self, s: int, t: int,
                          faults: Iterable[Edge]) -> bool:
        """Could ``faults`` change ``dist(s, t)``?  O(|F|), no false negatives.

        An edge lies on some shortest ``s ~> t`` path iff one of its
        orientations satisfies ``d_s(u) + w(u, v) + d_t(v) == d_s(t)``
        (``w = 1`` on an unweighted engine); a fault set touching no
        such edge leaves the distance unchanged.  On the unweighted
        path, edges absent from the graph may pass the arithmetic test
        — that only costs a redundant BFS, never a wrong answer; the
        weighted path looks the weight up by arc position, so absent
        edges are skipped exactly.

        The test reads ``dist_t[x]`` as the ``x -> t`` distance, which
        requires symmetric weights; over an antisymmetric snapshot the
        filter degrades to "always touches" (still no false
        negatives, just no skipping).
        """
        if not self.csr.has_vertex(t):
            raise GraphError(f"unknown target vertex {t}")
        if not self._symmetric_weights:
            return True
        dist_s = self.base_distances(s)
        dist_t = self.base_distances(t)
        base = dist_s[t]
        if base == UNREACHABLE:
            return False
        n = self.csr.n
        if self.weighted:
            weights = self.csr.weights
            for u, v in faults:
                if u == v or not (0 <= u < n and 0 <= v < n):
                    continue  # tolerated, like without()
                pos = self.csr.arc_positions(u, v)
                if pos is None:
                    continue  # absent edge cannot touch any path
                a, b = canonical_edge(u, v)
                da, db = dist_s[a], dist_s[b]
                ta, tb = dist_t[a], dist_t[b]
                if (da != UNREACHABLE and tb != UNREACHABLE
                        and da + weights[pos[0]] + tb == base):
                    return True
                if (db != UNREACHABLE and ta != UNREACHABLE
                        and db + weights[pos[1]] + ta == base):
                    return True
            return False
        for u, v in faults:
            if not (0 <= u < n and 0 <= v < n):
                continue  # absent edges are tolerated, like without()
            du, dv = dist_s[u], dist_s[v]
            tu, tv = dist_t[u], dist_t[v]
            if du != UNREACHABLE and tv != UNREACHABLE and du + 1 + tv == base:
                return True
            if dv != UNREACHABLE and tu != UNREACHABLE and dv + 1 + tu == base:
                return True
        return False

    # ------------------------------------------------------------------
    # the planner protocol: counted peeks + write-back
    # ------------------------------------------------------------------
    def peek_pair(self, s: int, t: int,
                  faults: Iterable[Edge]) -> Optional[int]:
        """The memoised pair distance, or ``None`` on a miss.

        Counts a pair hit/miss exactly like the query path would (so
        planner-served streams and per-call streams report comparable
        :meth:`cache_info` counters).  Cached values are ints (possibly
        ``UNREACHABLE``), never ``None``, so ``None`` is unambiguous.
        """
        if not self._memo_max:
            return None
        key = (s, t, _canonical(faults))
        cached = self._memo.get(key, _MISS)
        if cached is _MISS:
            self.cache_misses += 1
            return None
        self.cache_hits += 1
        self._memo.move_to_end(key)
        return cached

    def peek_vector(self, source: int,
                    faults: Iterable[Edge]) -> Optional[List[int]]:
        """The cached (read-only) ``(source, F)`` vector, or ``None``.

        A hit is counted; a miss is silent — like the vector peek
        inside :meth:`pair_replacement_distance`, misses are only
        counted by the wave that actually traverses
        (:meth:`source_vectors`).  The fault-free vector comes from
        the unbounded base-distance cache (uncounted, like the
        fault-free path of :meth:`source_vectors`).
        """
        fault_key = _canonical(faults)
        if not fault_key:
            return self._base_dist.get(source)
        if not self._memo_max:
            return None
        key = (source, fault_key)
        cached = self._memo.get(key, _MISS)
        if cached is _MISS:
            return None
        self.vector_hits += 1
        self._memo.move_to_end(key)
        return cached

    def peek_any_vector(self, faults: Iterable[Edge]
                        ) -> Optional[List[int]]:
        """*Any* cached vector under this fault set, or ``None``.

        For source-agnostic questions (connectivity of ``G \\ F``):
        scans the LRU's vector entries for the fault key (bounded by
        ``maxsize``, far cheaper than the traversal it saves) and
        counts a hit like :meth:`peek_vector`; misses are silent.
        """
        fault_key = _canonical(faults)
        if not fault_key:
            return next(iter(self._base_dist.values()), None)
        if not self._memo_max:
            return None
        found = next(
            (key for key in self._memo
             if len(key) == 2 and key[1] == fault_key), None
        )
        if found is None:
            return None
        self.vector_hits += 1
        self._memo.move_to_end(found)
        return self._memo[found]

    def store_pair(self, s: int, t: int, faults: Iterable[Edge],
                   value: int) -> None:
        """Memoise one pair answer (planner write-back, no counters)."""
        self._memo_put((s, t, _canonical(faults)), value)

    def pair_replacement_distance(self, s: int, t: int,
                                  faults: Iterable[Edge]) -> int:
        """``dist_{G \\ F}(s, t)``, skipping the traversal when it can.

        Four amortisation layers fire before any full per-scenario
        traversal: the LRU pair memo (repeated fault sets in sampled
        streams are O(1)), a peek at the per-``(s, F)`` distance-vector
        cache (a vector left behind by a batched wave answers by
        indexing), the touch filter (a fault set off every shortest
        path returns the base distance in O(|F|)), and the delta path
        (:meth:`try_delta`: a small orphaned region is patched from
        the base vector instead of re-traversed).
        """
        if not self.csr.has_vertex(t):
            raise GraphError(f"unknown target vertex {t}")
        fault_key = _canonical(faults)
        if self._memo_max:
            key = (s, t, fault_key)
            cached = self._memo.get(key, _MISS)
            if cached is not _MISS:
                self.cache_hits += 1
                self._memo.move_to_end(key)
                return cached
            self.cache_misses += 1
            vector = self._memo.get((s, fault_key), _MISS)
            if vector is not _MISS:
                # A batched wave already paid the traversal; index it.
                # (A peek, not a vector-cache miss: pair queries do not
                # populate vectors, so only hits are counted here.)
                self.vector_hits += 1
                self._memo.move_to_end((s, fault_key))
                result = vector[t]
                self._memo_put(key, result)
                return result
        base = self.base_distances(s)[t]
        if not self.faults_touch_pair(s, t, fault_key):
            result = base
        else:
            # Fourth layer: a small orphaned region is patched (and
            # the whole vector cached) instead of traversing at all.
            vector = self.try_delta(s, fault_key)
            if vector is not None:
                result = vector[t]
            else:
                with self._masked(fault_key) as mask:
                    if self.weighted:
                        result = csr_weighted_distance(self.csr, mask,
                                                       s, t)
                    else:
                        result = csr_hop_distance(self.csr, mask, s, t)
        self._memo_put((s, t, fault_key), result)
        return result

    def cache_info(self) -> CacheInfo:
        """A frozen :class:`CacheInfo` snapshot of the shared LRU memo.

        Attribute access (``info.hits``) is canonical; the PR-2
        mapping idiom (``info["hits"]``, ``dict(info)``) keeps
        working via :class:`CacheInfo`'s ``__getitem__`` / ``keys``.
        When :mod:`repro.obs` is enabled, the snapshot is also
        mirrored into the metrics registry (see
        :meth:`CacheInfo.publish`).
        """
        info = CacheInfo(
            hits=self.cache_hits,
            misses=self.cache_misses,
            evictions=self.pair_evictions,
            vector_hits=self.vector_hits,
            vector_misses=self.vector_misses,
            vector_evictions=self.vector_evictions,
            delta_hits=self.delta_hits,
            delta_fallbacks=self.delta_fallbacks,
            size=len(self._memo),
            maxsize=self._memo_max,
            wave_backends=tuple(sorted(self.wave_backends.items())),
            pool_fallbacks=self.pool_fallbacks,
        )
        info.publish()
        return info

    # ------------------------------------------------------------------
    # kernel-backend seam
    # ------------------------------------------------------------------
    def wave_backend(self, width: int = 1) -> str:
        """Name of the backend a ``width``-source wave resolves to now.

        A pure (side-effect-free) dispatch probe: the planner stamps it
        into wave provenance without forcing a wave, and callers can
        preview how :func:`repro.backends.set_backend` or the
        calibrated thresholds would route a batch of ``width`` sources
        on this engine's snapshot.
        """
        kernel = ("csr_weighted_distances_many" if self.weighted
                  else "csr_bfs_distances_many")
        return backend_for(kernel, self.csr, batch=width).name

    def _wave(self, mask: Optional[bytearray],
              sources: List[int]) -> List[List[int]]:
        """One batched multi-source wave through the backend seam.

        Resolves the batched kernel for this engine (weighted or hop)
        via :func:`repro.backends.dispatch.backend_for`, tallies the
        serving backend into :attr:`wave_backends`, and returns the
        distance rows aligned with ``sources``.
        """
        kernel = ("csr_weighted_distances_many" if self.weighted
                  else "csr_bfs_distances_many")
        backend = backend_for(kernel, self.csr, batch=len(sources))
        name = backend.name
        self.wave_backends[name] = self.wave_backends.get(name, 0) + 1
        # The per-wave observability seam: one guarded branch when
        # disabled (the obs overhead contract), one histogram/counter/
        # span record per *wave* — never per arc — when enabled.
        t0 = perf_counter() if _obs.ENABLED else 0.0
        rows: List[List[int]] = getattr(backend, kernel)(
            self.csr, mask, sources)
        if _obs.ENABLED:
            dt = perf_counter() - t0
            _obs.observe("repro_wave_seconds", dt,
                         kernel=kernel, backend=name)
            _obs.inc("repro_waves_total", kernel=kernel, backend=name)
            _obs.observe("repro_wave_batch_size", float(len(sources)),
                         kernel=kernel, backend=name)
            _obs.emit_span("wave", dt, kernel=kernel, backend=name,
                           batch=len(sources))
        return rows

    def __repr__(self) -> str:
        return (
            f"ScenarioEngine(n={self.csr.n}, m={self.csr.m}, "
            f"weighted={self.weighted}, "
            f"pairs={self.cache_hits}h/{self.cache_misses}m/"
            f"{self.pair_evictions}e, "
            f"vectors={self.vector_hits}h/{self.vector_misses}m/"
            f"{self.vector_evictions}e, "
            f"delta={self.delta_hits}h/{self.delta_fallbacks}f)"
        )

    def replacement_distances(self, s: int, t: int,
                              scenarios: Iterable[Iterable[Edge]]
                              ) -> List[int]:
        """Batch ``dist_{G \\ F}(s, t)`` for a stream of fault sets.

        .. deprecated::
            Submit :class:`~repro.query.queries.DistanceQuery` objects
            through a :class:`~repro.query.session.Session` instead —
            the planner shares waves across the whole stream, not just
            per call.
        """
        _deprecated("replacement_distances")
        return [
            self.pair_replacement_distance(s, t, faults)
            for faults in scenarios
        ]

    def source_vectors(self, sources: Iterable[int],
                       faults: Iterable[Edge] = (), *,
                       try_delta: bool = True) -> List[List[int]]:
        """Distance vectors for many sources under *one* fault set.

        The many-source primitive: every source missing from the
        per-``(source, F)`` vector cache is first offered to the
        delta path (:meth:`try_delta` — a small orphaned region is
        patched instead of traversed), and the remainder joins a
        single batched wave
        (:func:`~repro.spt.batched.csr_bfs_distances_many`, or its
        weighted sibling) under one shared arc mask, so one sweep over
        the arc array serves the whole batch; cached sources are
        answered without traversing at all.  Results align with the
        input order (duplicates included, served once).

        ``try_delta=False`` skips the delta offer — the planner's
        handshake: it runs :meth:`try_delta` itself first (it needs
        per-source attribution for ``"delta"`` provenance), so the
        wave remainder it passes here must not re-estimate or
        double-count fallbacks.

        Returned vectors are **read-only**: they may be shared with the
        engine's caches and with other callers.
        """
        sources = list(sources)
        fault_key = _canonical(faults)
        if not fault_key:
            # The fault-free batch shares the unbounded base-distance
            # cache instead of churning the LRU.
            missing = [s for s in dict.fromkeys(sources)
                       if s not in self._base_dist]
            if missing:
                rows = self._wave(None, missing)
                self._base_dist.update(zip(missing, rows))
            return [self.base_distances(s) for s in sources]
        out: List[Optional[List[int]]] = [None] * len(sources)
        pending: Dict[int, List[int]] = {}
        memo_max = self._memo_max
        for i, s in enumerate(sources):
            if s in pending:
                pending[s].append(i)
                continue
            if memo_max:
                key = (s, fault_key)
                cached = self._memo.get(key, _MISS)
                if cached is not _MISS:
                    self.vector_hits += 1
                    self._memo.move_to_end(key)
                    out[i] = cached
                    continue
            # One index list per *distinct* uncached source — allocation
            # proportional to the output, not to the loop trip count.
            pending[s] = [i]  # reprolint: disable=hot-loop-alloc
        if pending:
            # Delta pass: sources whose orphaned region is small are
            # patched (try_delta stores the vector); the rest share
            # one batched wave.
            waving: List[int] = []
            for s in pending:
                vector = self.try_delta(s, fault_key,
                                        batch_hint=len(pending)) \
                    if try_delta else None
                if vector is not None:
                    for i in pending[s]:
                        out[i] = vector
                else:
                    waving.append(s)
            if waving:
                # Misses count sources the wave actually traverses
                # (patched sources never traverse), matching the
                # planner path and peek_vector's documented contract.
                if memo_max:
                    self.vector_misses += len(waving)
                with self._masked(fault_key) as mask:
                    rows = self._wave(mask, waving)
                memo_put = self._memo_put
                for s, row in zip(waving, rows):
                    memo_put((s, fault_key), row)
                    for i in pending[s]:
                        out[i] = row
        return out

    def source_vector(self, source: int,
                      faults: Iterable[Edge] = ()) -> List[int]:
        """The cached (read-only) distance vector of one ``(s, F)``."""
        return self.source_vectors([source], faults)[0]

    def evaluate_pairs(self, queries: Iterable[Tuple[int, int,
                                                     Iterable[Edge]]]
                       ) -> List[int]:
        """Batch ``dist_{G \\ F}(s, t)`` over an arbitrary pair stream.

        Equivalent to mapping :meth:`pair_replacement_distance` over
        the ``(s, t, faults)`` triples (and bit-identical to it), but
        the stream is grouped by canonical fault set first: within one
        group the pair memo, vector cache and touch filter are
        consulted per pair as usual, and every pair still needing a
        traversal then shares **one** masked multi-source wave — one
        mask setup and one batched sweep serve all of the group's
        sources, with each computed vector cached under ``(s, F)`` and
        every answered pair memoised under ``(s, t, F)``.

        Results align with the input order.

        .. deprecated::
            Submit :class:`~repro.query.queries.DistanceQuery` objects
            through a :class:`~repro.query.session.Session` instead —
            the planner adds target-side batching and typed answers.
        """
        _deprecated("evaluate_pairs")
        return self._evaluate_pairs(queries)

    def _evaluate_pairs(self, queries: Iterable[Tuple[int, int,
                                                      Iterable[Edge]]]
                        ) -> List[int]:
        """:meth:`evaluate_pairs` without the deprecation shim — the
        grouped-wave kernel :meth:`restoration_sweep` batches through."""
        csr = self.csr
        has_vertex = csr.has_vertex
        canon = _canonical
        items: List[Tuple[int, int, FaultSet]] = []
        add_item = items.append
        for s, t, faults in queries:
            if not has_vertex(t):
                raise GraphError(f"unknown target vertex {t}")
            add_item((s, t, canon(faults)))
        out: List[Optional[int]] = [None] * len(items)
        groups: "OrderedDict[FaultSet, List[int]]" = OrderedDict()
        groups_get = groups.get
        for i, (_, _, fault_key) in enumerate(items):
            bucket = groups_get(fault_key)
            if bucket is None:
                groups[fault_key] = bucket = []
            bucket.append(i)
        memo_max = self._memo_max
        memo_put = self._memo_put
        touches = self.faults_touch_pair
        offer_delta = self.try_delta
        masked = self._masked
        wave = self._wave
        for fault_key, idxs in groups.items():
            pending: Dict[int, List[int]] = {}
            pending_get = pending.get
            for i in idxs:
                s, t, _ = items[i]
                if memo_max:
                    key = (s, t, fault_key)
                    cached = self._memo.get(key, _MISS)
                    if cached is not _MISS:
                        self.cache_hits += 1
                        self._memo.move_to_end(key)
                        out[i] = cached
                        continue
                    self.cache_misses += 1
                    vector = self._memo.get((s, fault_key), _MISS)
                    if vector is not _MISS:
                        self.vector_hits += 1
                        self._memo.move_to_end((s, fault_key))
                        out[i] = vector[t]
                        memo_put(key, out[i])
                        continue
                if not touches(s, t, fault_key):
                    out[i] = self.base_distances(s)[t]
                    memo_put((s, t, fault_key), out[i])
                    continue
                bucket = pending_get(s)
                if bucket is None:
                    pending[s] = bucket = []
                bucket.append(i)
            if not pending:
                continue
            batch = list(pending)
            waving = []
            for s in batch:
                vector = offer_delta(s, fault_key, batch_hint=len(batch))
                if vector is None:
                    waving.append(s)
                    continue
                for i in pending[s]:
                    t = items[i][1]
                    out[i] = vector[t]
                    memo_put((s, t, fault_key), vector[t])
            if not waving:
                continue
            if memo_max:
                self.vector_misses += len(waving)
            with masked(fault_key) as mask:
                rows = wave(mask, waving)
            for s, row in zip(waving, rows):
                memo_put((s, fault_key), row)
                for i in pending[s]:
                    t = items[i][1]
                    out[i] = row[t]
                    memo_put((s, t, fault_key), row[t])
        return out

    def run_pairs(self, queries: Iterable[Tuple[int, int, Iterable[Edge]]]
                  ) -> List[ScenarioResult]:
        """:meth:`evaluate_pairs` wrapped as :class:`ScenarioResult`\\ s.

        Each result's ``value`` is ``(s, t, dist)`` and its ``faults``
        the canonical fault tuple, aligned with the input stream.

        .. deprecated::
            Submit :class:`~repro.query.queries.DistanceQuery` objects
            through a :class:`~repro.query.session.Session`; answers
            carry provenance instead of bare tuples.
        """
        _deprecated("run_pairs")
        items = [(s, t, _canonical(f)) for s, t, f in queries]
        values = self._evaluate_pairs(items)
        return [
            ScenarioResult(i, fault_key, (s, t, value))
            for i, ((s, t, fault_key), value)
            in enumerate(zip(items, values))
        ]

    def distance_vectors(self, source: int,
                         scenarios: Iterable[Iterable[Edge]]
                         ) -> List[List[int]]:
        """Full per-scenario distance vectors from ``source``.

        Served through the ``(source, F)`` vector cache, so repeated
        fault sets in the stream cost one traversal.  Vectors are
        read-only (see :meth:`source_vectors`).

        .. deprecated::
            Submit :class:`~repro.query.queries.VectorQuery` objects
            through a :class:`~repro.query.session.Session` instead.
        """
        _deprecated("distance_vectors")
        return [
            self.source_vector(source, faults) for faults in scenarios
        ]

    def connectivity(self, scenarios: Iterable[Iterable[Edge]]
                     ) -> List[bool]:
        """Per-scenario "does ``G \\ F`` stay connected?".

        .. deprecated::
            Submit :class:`~repro.query.queries.ConnectivityQuery`
            objects through a :class:`~repro.query.session.Session` —
            the planner answers them from vectors its groups already
            computed, usually for free.
        """
        _deprecated("connectivity")
        n = self.csr.n
        out = []
        for faults in scenarios:
            if n == 0:
                out.append(True)
                continue
            with self._masked(faults) as mask:
                dist = csr_bfs_distances(self.csr, mask, 0)
            out.append(UNREACHABLE not in dist)
        return out

    # ------------------------------------------------------------------
    # restoration queries
    # ------------------------------------------------------------------
    def midpoint_scan(self, scheme, s: int, t: int,
                      faults: Iterable[Edge],
                      subset: Iterable[Edge] = ()):
        """Batched-state variant of
        :func:`repro.core.restoration.midpoint_scan`.

        Delegates to the core scan (one implementation, identical
        results) but injects the engine's cached
        :class:`TreeFaultIndex` lookup as the fault-free-vertices
        provider, so consecutive scenarios against the same pair share
        all tree work.
        """
        self._require_unweighted("midpoint_scan")
        from repro.core.restoration import midpoint_scan

        return midpoint_scan(
            scheme, s, t, faults, subset,
            fault_free=lambda tree, remaining:
                self.tree_index(tree).fault_free_vertices(remaining),
        )

    def restoration_sweep(self, scheme, instances) -> List[ScenarioResult]:
        """Batch Figure-1 style instances ``(s, t, e)``.

        For each instance the value is ``(target, result)`` — the true
        replacement distance and the naive (``F' = ∅``) midpoint-scan
        outcome, or ``None`` when the fault disconnects the pair.

        The target distances run through :meth:`evaluate_pairs`, so
        instances sharing a fault edge (a Figure-1 sweep queries many
        pairs per edge) share one masked multi-source wave.
        """
        self._require_unweighted("restoration_sweep")
        instances = list(instances)
        targets = self._evaluate_pairs(
            (s, t, (e,)) for s, t, e in instances
        )
        out = []
        for i, ((s, t, e), target) in enumerate(zip(instances, targets)):
            if target == UNREACHABLE:
                out.append(ScenarioResult(i, _canonical([e]), None))
                continue
            result = self.midpoint_scan(scheme, s, t, [e])
            out.append(ScenarioResult(i, _canonical([e]), (target, result)))
        return out

    # ------------------------------------------------------------------
    # preserver queries
    # ------------------------------------------------------------------
    def preserver_violations(self, preserver_edges: Iterable[Edge],
                             sources: Iterable[int],
                             scenarios: Iterable[Iterable[Edge]],
                             targets: Optional[Iterable[int]] = None
                             ) -> List[Tuple]:
        """Batched Definition-4 check of ``H ⊆ G`` over a scenario stream.

        Same output shape as
        :func:`repro.preservers.verification.preserver_violations`:
        ``(faults, s, t, dist_G, dist_H)`` tuples, empty when ``H``
        preserves every queried distance in every scenario.  Both
        ``G \\ F`` and ``H \\ F`` run on CSR snapshots built once, and
        per scenario each snapshot is swept by **one** bit-packed
        multi-source wave serving the whole source set, instead of one
        BFS per source.
        """
        self._require_unweighted("preserver_violations")
        source_list = sorted(set(sources))
        target_list = (
            sorted(set(targets)) if targets is not None else source_list
        )
        sub = Graph(self.csr.n)
        for u, v in preserver_edges:
            sub.add_edge(u, v)
        sub_csr = sub.csr()
        sub_scratch = bytearray(b"\x01") * len(sub_csr.indices)
        bad: List[Tuple] = []
        for faults in scenarios:
            faults = _canonical(faults)
            with self._masked(faults) as g_mask, \
                    _scratch_masked(sub_csr, sub_scratch, faults) as h_mask:
                g_rows = csr_bfs_distances_many(self.csr, g_mask,
                                                source_list)
                h_rows = csr_bfs_distances_many(sub_csr, h_mask,
                                                source_list)
            for s, dist_g, dist_h in zip(source_list, g_rows, h_rows):
                for t in target_list:
                    if t != s and dist_g[t] != dist_h[t]:
                        bad.append((faults, s, t, dist_g[t], dist_h[t]))
        return bad

    # ------------------------------------------------------------------
    # generic batched evaluation (optionally multiprocess)
    # ------------------------------------------------------------------
    def run(self, evaluator: Callable, scenarios: Iterable[Iterable[Edge]],
            processes: int = 0, chunksize: Optional[int] = None
            ) -> List[ScenarioResult]:
        """Apply ``evaluator(view, faults)`` to every scenario.

        ``view`` is the masked CSR view of ``G \\ F``; on the serial
        path it aliases the engine's scratch mask, so it is only valid
        for the duration of the evaluator call — evaluators must not
        stash views for later.  With ``processes > 1`` the scenario
        stream fans out over a ``multiprocessing`` pool (the evaluator
        must then be a picklable top-level callable); any pool setup
        failure falls back to the serial path, so results are always
        produced — but not silently: the degradation emits a
        :class:`RuntimeWarning` and is counted as a ``pool_fallbacks``
        tick in :meth:`cache_info`, so a fleet or monitoring layer
        that asked for parallelism can see it did not get it.
        """
        fault_sets = [_canonical(f) for f in scenarios]
        if processes > 1 and fault_sets:
            try:
                pool = _make_pool(self.graph, evaluator, processes)
            except (ImportError, OSError, AttributeError, TypeError,
                    pickle.PicklingError) as exc:
                # No usable pool here (or the evaluator/graph does not
                # pickle under spawn); serial fallback below.
                self.pool_fallbacks += 1
                warnings.warn(
                    f"ScenarioEngine.run: process pool unavailable "
                    f"({type(exc).__name__}: {exc}); evaluating "
                    f"{len(fault_sets)} scenarios serially",
                    RuntimeWarning, stacklevel=2,
                )
                pool = None
            if pool is not None:
                # Evaluator exceptions raised inside the pool propagate:
                # a buggy evaluator must fail loudly, not trigger a
                # silent serial re-run of the whole stream.
                if chunksize is None:
                    chunksize = max(1, len(fault_sets) // (processes * 4))
                with pool:
                    values = pool.map(_pool_eval, fault_sets, chunksize)
                return [
                    ScenarioResult(i, f, v)
                    for i, (f, v) in enumerate(zip(fault_sets, values))
                ]
        out = []
        for i, f in enumerate(fault_sets):
            with self._masked(f) as mask:
                view = CSRFaultView._adopt(self.csr, frozenset(f), mask)
                out.append(ScenarioResult(i, f, evaluator(view, f)))
        return out


# ----------------------------------------------------------------------
# multiprocessing plumbing (top-level, so it pickles under spawn)
# ----------------------------------------------------------------------
_WORKER_CSR: Optional[CSRGraph] = None
_WORKER_FN: Optional[Callable] = None


def _pool_init(graph, evaluator) -> None:
    global _WORKER_CSR, _WORKER_FN
    _WORKER_CSR = _snapshot_of(graph)
    _WORKER_FN = evaluator


def _pool_eval(faults: FaultSet):
    return _WORKER_FN(_WORKER_CSR.without(faults), faults)


def _make_pool(graph, evaluator, processes: int):
    """Create the worker pool (pickling/setup errors raise here)."""
    import multiprocessing

    return multiprocessing.Pool(
        processes, initializer=_pool_init, initargs=(graph, evaluator)
    )
