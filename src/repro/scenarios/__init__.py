"""Batched fault-scenario evaluation: one base graph, many fault sets.

The paper fixes a base graph and reasons about the family of survivor
graphs ``G \\ F`` — and so does every benchmark and application layer in
this library.  This package makes that workload shape a first-class
citizen:

* :mod:`repro.scenarios.enumerate` — deterministic scenario streams
  (all single faults, exhaustive ``|F| <= f`` subsets, seeded random
  samples, adversarial tree-edge faults, clustered regional
  failures);
* :mod:`repro.scenarios.engine` — :class:`~repro.scenarios.engine.ScenarioEngine`,
  which amortises shared state (CSR snapshot, base BFS vectors,
  selected trees and their subtree-interval indices) across the stream
  and evaluates replacement-path / restoration / preserver queries per
  scenario over flat arrays, optionally across a process pool.

Since PR 4 the engine is the kernel layer under the declarative query
API — :class:`repro.query.Session` is the preferred entry point for
query streams.  Quick start (see ``examples/batch_scenarios.py`` and
``examples/query_session.py`` for full tours)::

    from repro.graphs import generators
    from repro.query import DistanceQuery, Session
    from repro.scenarios import single_edge_faults

    graph = generators.torus(8, 8)
    session = Session(graph)
    answers = session.answer(
        [DistanceQuery(0, 27, f) for f in single_edge_faults(graph)]
    )

``benchmarks/bench_scenario_engine.py`` measures the engine against the
naive per-:class:`~repro.graphs.views.FaultView` loop it replaces.
"""

from repro.scenarios.engine import (
    CacheInfo,
    ScenarioEngine,
    ScenarioResult,
    TreeFaultIndex,
)
from repro.scenarios.enumerate import (
    FaultSet,
    all_fault_subsets,
    clustered_fault_sets,
    random_fault_sets,
    single_edge_faults,
    tree_edge_faults,
)

__all__ = [
    "CacheInfo",
    "ScenarioEngine",
    "ScenarioResult",
    "TreeFaultIndex",
    "FaultSet",
    "all_fault_subsets",
    "clustered_fault_sets",
    "random_fault_sets",
    "single_edge_faults",
    "tree_edge_faults",
]
