"""Batched fault-scenario evaluation: one base graph, many fault sets.

The paper fixes a base graph and reasons about the family of survivor
graphs ``G \\ F`` — and so does every benchmark and application layer in
this library.  This package makes that workload shape a first-class
citizen:

* :mod:`repro.scenarios.enumerate` — deterministic scenario streams
  (all single faults, exhaustive ``|F| <= f`` subsets, seeded random
  samples, adversarial tree-edge faults);
* :mod:`repro.scenarios.engine` — :class:`~repro.scenarios.engine.ScenarioEngine`,
  which amortises shared state (CSR snapshot, base BFS vectors,
  selected trees and their subtree-interval indices) across the stream
  and evaluates replacement-path / restoration / preserver queries per
  scenario over flat arrays, optionally across a process pool.

Quick start (see ``examples/batch_scenarios.py`` for a full tour)::

    from repro.graphs import generators
    from repro.scenarios import ScenarioEngine, single_edge_faults

    graph = generators.torus(8, 8)
    engine = ScenarioEngine(graph)
    scenarios = list(single_edge_faults(graph))
    dists = engine.replacement_distances(0, 27, scenarios)

``benchmarks/bench_scenario_engine.py`` measures the engine against the
naive per-:class:`~repro.graphs.views.FaultView` loop it replaces.
"""

from repro.scenarios.engine import (
    ScenarioEngine,
    ScenarioResult,
    TreeFaultIndex,
)
from repro.scenarios.enumerate import (
    FaultSet,
    all_fault_subsets,
    random_fault_sets,
    single_edge_faults,
    tree_edge_faults,
)

__all__ = [
    "ScenarioEngine",
    "ScenarioResult",
    "TreeFaultIndex",
    "FaultSet",
    "all_fault_subsets",
    "random_fault_sets",
    "single_edge_faults",
    "tree_edge_faults",
]
