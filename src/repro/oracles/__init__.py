"""Distance sensitivity oracles (the Section 4.3 connection).

The paper relates its FT distance labels to *distance sensitivity
oracles* (DSOs): centralized structures answering
``dist_{G \\ F}(s, t)`` queries fast after preprocessing
(Weimann-Yuster [37, 38], van den Brand-Saranurak [36]).  Labels
distribute that information; a DSO centralises it.

:class:`~repro.oracles.dso.SourcewiseDSO` is the single-fault oracle
this library's machinery yields naturally: per source, the selected
tree plus a replacement-distance row per tree edge, giving O(1)
queries.  Preprocessing can run inside the 1-FT ``{s} x V`` preserver
instead of ``G`` — same answers by the preserver property, and the
``bench_ablation_dso`` benchmark measures the dense-graph speedup that
trick buys (preservers as *computational* objects, not just storage).
"""

from repro.oracles.dso import SourcewiseDSO

__all__ = ["SourcewiseDSO"]
