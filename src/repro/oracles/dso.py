"""A single-fault sourcewise distance sensitivity oracle.

For a source set ``S``, preprocessing stores per source ``s``:

* the selected (restorable-tiebreaking) tree ``T_s`` with hop
  distances and per-vertex path edge-membership, and
* for every *tree edge* ``e`` of ``T_s``, the full replacement
  distance row ``dist_{G \\ e}(s, .)``.

Stability is what makes this complete: a fault off the selected path
``pi(s, v)`` never changes ``dist(s, v)``, so only tree-edge faults
need rows, and a query reduces to one membership test plus one array
lookup — O(1).

Preprocessing cost is one BFS per tree edge.  Run with
``use_preserver=True``, those BFS runs happen inside the 1-FT
``{s} x V`` preserver (``O(n^{3/2})`` edges) instead of ``G``
(``O(n^2)`` possible) — answers are identical by Definition 4, and on
dense graphs the work drops accordingly.  This realises the paper's
Section-4.3 remark that its fault-tolerant structures "balance the
information" of DSOs.

All preprocessing routes through the declarative query API
(:mod:`repro.query`) — one shared :class:`~repro.query.session.Session`
over the base graph (injectable, so a caller already holding one pays
nothing extra) plus one per preserver substrate.  The whole
one-BFS-per-tree-edge loop is expressed as **one** declarative stream
of :class:`~repro.query.queries.VectorQuery` objects: the planner
groups it by canonical fault set, so each tree edge is masked once and
one bit-packed multi-source wave computes the replacement rows of
every source whose tree contains that edge (the transposition PR 3
hand-rolled now falls out of planning).  Since PR 5 the scheme's trees
are donated to the engine's incremental-delta path
(:meth:`~repro.scenarios.engine.ScenarioEngine.adopt_base_tree`):
every preprocessing fault is a tree edge, so a row whose orphaned
subtree is small is *patched* from the base row instead of traversed
at all (see :attr:`SourcewiseDSO.preprocessing_provenance`).  Query
streams go through
:meth:`SourcewiseDSO.query_many`, which hoists the per-query
validation and dictionary plumbing out of the loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.core.scheme import RestorableTiebreaking
from repro.preservers.ft_bfs import ft_sv_preserver
from repro.query.queries import VectorQuery
from repro.query.session import Session
from repro.scenarios.engine import ScenarioEngine
from repro.spt.bfs import UNREACHABLE


class SourcewiseDSO:
    """O(1)-query single-fault distance oracle for ``S x V`` pairs.

    Parameters
    ----------
    graph:
        The input graph.
    sources:
        The source set ``S``.
    scheme:
        Optional prebuilt restorable scheme (must cover >= 1 fault).
    use_preserver:
        When True, replacement BFS runs inside each source's 1-FT
        ``{s} x V`` preserver rather than the full graph.
    seed:
        Seed for a fresh scheme.
    engine:
        Optional shared :class:`ScenarioEngine` over ``graph``
        (wrapped in a private :class:`Session`); prefer ``session``.
    session:
        Optional shared :class:`~repro.query.session.Session` over
        ``graph``; one is built if absent.  Base distance rows come
        from its caches, and (without a preserver) the per-tree-edge
        replacement rows ride its planner's grouped waves.
    """

    def __init__(self, graph: Graph, sources: Iterable[int],
                 scheme: Optional[RestorableTiebreaking] = None,
                 use_preserver: bool = False, seed: int = 0,
                 engine: Optional[ScenarioEngine] = None,
                 session: Optional[Session] = None):
        self._graph = graph
        self._sources = sorted(set(sources))
        for s in self._sources:
            if not graph.has_vertex(s):
                raise GraphError(f"source {s} not in graph")
        if scheme is None:
            scheme = RestorableTiebreaking.build(graph, f=1, seed=seed)
        self._scheme = scheme
        self._use_preserver = use_preserver
        session = Session.adopt(graph, engine=engine, session=session)
        self._session = session
        self._engine = session.engine

        # per source: fault-free distances, tree-path edge sets,
        # and replacement rows per tree edge
        self._base_dist: Dict[int, List[int]] = {}
        self._path_edges: Dict[int, Dict[int, frozenset]] = {}
        self._rows: Dict[Tuple[int, Edge], List[int]] = {}
        self._preprocessed_edges = 0
        self._substrate_edges = 0
        self._row_provenance: Dict[str, int] = {}

        trees = {s: self._scheme.tree(s) for s in self._sources}
        # Base rows for every source in one fault-free batch wave.
        self._base_dist.update(zip(self._sources, (
            a.value for a in self._session.answer(
                VectorQuery(s) for s in self._sources
            )
        )))
        # Donate the scheme's trees to the engine's delta path: every
        # preprocessing fault is a tree edge of some source, exactly
        # the regime where patching the orphaned subtree beats a full
        # wave — and the tree the engine would otherwise re-derive
        # per source is already in hand.
        if not self._engine.weighted and self._engine.delta_enabled:
            for s in self._sources:
                self._engine.adopt_base_tree(s, trees[s])
        for s in self._sources:
            self._path_edges[s] = self._selected_path_edges(s, trees[s])
        if use_preserver:
            for s in self._sources:
                self._preprocess_in_preserver(s, trees[s])
        else:
            self._preprocess_shared(trees)

    # ------------------------------------------------------------------
    @staticmethod
    def _selected_path_edges(s: int, tree) -> Dict[int, frozenset]:
        # edge sets of each selected path, built incrementally down
        # the tree (O(n * depth) total, shared via frozenset reuse)
        per_vertex: Dict[int, frozenset] = {s: frozenset()}
        for v in tree.vertices_by_hop():
            p = tree.parent(v)
            if p is not None:
                per_vertex[v] = per_vertex[p] | {canonical_edge(p, v)}
        return per_vertex

    def _preprocess_shared(self, trees) -> None:
        """Replacement rows over the base graph, as one query stream.

        Sources sharing a tree edge share the scenario ``{e}``: the
        whole preprocessing is one declarative ``VectorQuery`` stream,
        and the session's planner groups it by canonical fault set, so
        each edge is masked once and one multi-source wave serves
        every source whose tree contains it (a source's tree edges are
        exactly the faults that can change its rows, so no source
        misses a needed row).
        """
        by_edge: Dict[Edge, List[int]] = {}
        for s in self._sources:
            for e in trees[s].edges():
                by_edge.setdefault(e, []).append(s)
        self._substrate_edges += self._graph.m * len(self._sources)
        stream = [
            (s, e) for e in sorted(by_edge) for s in by_edge[e]
        ]
        answers = self._session.answer(
            VectorQuery(s, (e,)) for s, e in stream
        )
        for (s, e), answer in zip(stream, answers):
            self._rows[(s, e)] = answer.value
            self._preprocessed_edges += 1
            kind = answer.provenance.source
            self._row_provenance[kind] = self._row_provenance.get(kind, 0) + 1

    def _preprocess_in_preserver(self, s: int, tree) -> None:
        """Replacement rows inside the source's own 1-FT preserver.

        Each source has a private substrate graph here, so rows batch
        per source (one scenario stream over the substrate's engine)
        rather than across sources.
        """
        substrate = ft_sv_preserver(self._scheme, [s], f=1).as_graph()
        row_session = Session(substrate)
        self._substrate_edges += substrate.m
        tree_edges = list(tree.edges())
        answers = row_session.answer(
            VectorQuery(s, (e,)) for e in tree_edges
        )
        for e, answer in zip(tree_edges, answers):
            self._rows[(s, e)] = answer.value
            self._preprocessed_edges += 1
            kind = answer.provenance.source
            self._row_provenance[kind] = self._row_provenance.get(kind, 0) + 1

    # ------------------------------------------------------------------
    @property
    def sources(self) -> List[int]:
        return list(self._sources)

    @property
    def scheme(self) -> RestorableTiebreaking:
        """The tiebreaking scheme the oracle selected paths with."""
        return self._scheme

    @property
    def preprocessed_edges(self) -> int:
        """Number of (source, tree-edge) replacement rows stored."""
        return self._preprocessed_edges

    @property
    def substrate_edges(self) -> int:
        """Total edges of the graphs the preprocessing BFS ran on —
        the work saved (or not) by ``use_preserver``."""
        return self._substrate_edges

    @property
    def preprocessing_provenance(self) -> Dict[str, int]:
        """How the replacement rows were served, by provenance kind.

        A counter over ``{"cache", "filter", "delta", "wave"}`` — on a
        delta-enabled unweighted engine the tree-edge fault stream is
        the delta sweet spot, so most rows should report ``"delta"``.
        """
        return dict(self._row_provenance)

    def space_entries(self) -> int:
        """Stored distance entries (the oracle's space, in words)."""
        return (
            sum(len(row) for row in self._rows.values())
            + sum(len(d) for d in self._base_dist.values())
        )

    # ------------------------------------------------------------------
    def query(self, s: int, v: int, e: Edge) -> int:
        """``dist_{G \\ e}(s, v)`` in O(1) (plus a set membership).

        Returns ``-1`` when the fault disconnects the pair.  ``e``
        must be an edge of the graph: the oracle only answers
        single-edge-fault scenarios, and a non-edge "fault" would
        silently alias the fault-free distance (the pre-fix
        behaviour) instead of surfacing the caller's bug.
        """
        return self.query_many([(s, v, e)])[0]

    def query_many(self, queries: Iterable[Tuple[int, int, Edge]]
                   ) -> List[int]:
        """Batch :meth:`query` over a stream of ``(s, v, e)`` triples.

        The one implementation of validate-and-answer (:meth:`query`
        delegates here), with the per-query attribute and dictionary
        plumbing hoisted out of the loop — the entry point for large
        sampled query streams.  Edge existence is checked against the
        engine's snapshot, which is exact under the library-wide
        frozen-base-graph convention.
        """
        base_dist = self._base_dist
        path_edges = self._path_edges
        rows = self._rows
        has_edge = self._engine.csr.has_edge
        n = self._graph.n
        out: List[int] = []
        append = out.append
        for s, v, e in queries:
            bd = base_dist.get(s)
            if bd is None:
                raise GraphError(f"{s} is not an oracle source")
            if not 0 <= v < n:
                raise GraphError(f"unknown vertex {v}")
            e = canonical_edge(*e)
            if not has_edge(*e):
                raise GraphError(f"{e} is not an edge of the graph")
            pe = path_edges[s].get(v)
            if pe is None:
                append(UNREACHABLE)
            elif e not in pe:
                append(bd[v])
            else:
                append(rows[(s, e)][v])
        return out

    def __repr__(self) -> str:
        return (
            f"SourcewiseDSO(sources={len(self._sources)}, "
            f"rows={self._preprocessed_edges}, "
            f"preserver={self._use_preserver})"
        )
