"""Dijkstra over exact integer arc weights — the engine behind ``G*``.

The paper's reweighted graph ``G*`` assigns each directed arc the weight
``1 + r(u, v)``.  We represent that weight as a (possibly huge) Python
integer (see :mod:`repro.core.weights` for the scaling convention), so
all comparisons are exact and the "unique shortest path" property of an
antisymmetric tiebreaking weight function is a decidable predicate —
:func:`count_min_weight_paths` certifies it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Optional

from repro.exceptions import GraphError
from repro.graphs.csr import as_csr
from repro.spt import fastpaths

WeightFn = Callable[[int, int], int]


def dijkstra(graph, source: int, weight: WeightFn,
             targets: Optional[Iterable[int]] = None):
    """Single-source shortest paths under integer arc weights.

    Parameters
    ----------
    graph:
        A :class:`GraphLike` (``Graph`` or ``FaultView``).
    source:
        Start vertex.
    weight:
        Arc weight function ``weight(u, v) -> int``; must be positive.
        Asymmetry (``weight(u, v) != weight(v, u)``) is allowed and is
        exactly what antisymmetric tiebreaking exploits.
    targets:
        Optional early-exit set: stop once all are settled.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the exact integer distance for every reached
        vertex; ``parent[v]`` the predecessor on the found shortest
        path (``parent[source] is None``).  Unreached vertices appear
        in neither map.
    """
    csr = as_csr(graph)
    if csr is not None:
        return fastpaths.csr_dijkstra(csr[0], csr[1], source, weight,
                                      targets=targets)
    if not graph.has_vertex(source):
        raise GraphError(f"unknown source vertex {source}")
    remaining = set(targets) if targets is not None else None
    dist: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    # heap entries: (distance, vertex). With a valid tiebreaking weight
    # function, no two *paths* to a vertex tie, so the vertex component
    # only disambiguates entries for different vertices.
    heap = [(0, source)]
    tentative: Dict[int, int] = {source: 0}
    tentative_parent: Dict[int, Optional[int]] = {source: None}
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        parent[u] = tentative_parent[u]
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v in graph.neighbors(u):
            if v in dist:
                continue
            w = weight(u, v)
            if w <= 0:
                raise GraphError(
                    f"non-positive arc weight {w} on ({u}, {v})"
                )
            candidate = d + w
            if v not in tentative or candidate < tentative[v]:
                tentative[v] = candidate
                tentative_parent[v] = u
                heapq.heappush(heap, (candidate, v))
    return dist, parent


def count_min_weight_paths(graph, source: int, weight: WeightFn) -> Dict[int, int]:
    """Exact count of minimum-weight ``source -> v`` paths, per vertex.

    Runs Dijkstra, then dynamic programming over the shortest-path DAG:
    ``count[v] = sum(count[u] for arcs (u, v) with
    dist[u] + weight(u, v) == dist[v])``.  A weight function is a valid
    tiebreaker iff every reachable count is exactly 1 (Definition 18's
    uniqueness requirement) — this is the certifying check used by
    :meth:`repro.core.weights.AntisymmetricWeights.verify_tiebreaking`.
    """
    dist, _ = dijkstra(graph, source, weight)
    order = sorted(dist, key=lambda v: dist[v])
    count: Dict[int, int] = {source: 1}
    for v in order:
        if v == source:
            continue
        total = 0
        for u in graph.neighbors(v):
            if u in dist and dist[u] + weight(u, v) == dist[v]:
                total += count.get(u, 0)
        count[v] = total
    return count


def extract_path(parent: Dict[int, Optional[int]], target: int):
    """Reconstruct the path to ``target`` from a Dijkstra parent map.

    Returns a :class:`repro.spt.paths.Path` running source -> target, or
    ``None`` when ``target`` was not reached.
    """
    from repro.spt.paths import Path

    if target not in parent:
        return None
    chain = [target]
    v = target
    while parent[v] is not None:
        v = parent[v]
        chain.append(v)
    return Path(reversed(chain))
