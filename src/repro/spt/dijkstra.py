"""Dijkstra over exact integer arc weights — the engine behind ``G*``.

The paper's reweighted graph ``G*`` assigns each directed arc the weight
``1 + r(u, v)``.  We represent that weight as a (possibly huge) Python
integer (see :mod:`repro.core.weights` for the scaling convention), so
all comparisons are exact and the "unique shortest path" property of an
antisymmetric tiebreaking weight function is a decidable predicate —
:func:`count_min_weight_paths` certifies it.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.csr import CSRGraph, as_csr
from repro.spt import fastpaths

if TYPE_CHECKING:
    from repro.spt.paths import Path

WeightFn = Callable[[int, int], int]


def dijkstra(graph: Any, source: int, weight: WeightFn,
             targets: Optional[Iterable[int]] = None
             ) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Single-source shortest paths under integer arc weights.

    Parameters
    ----------
    graph:
        A :class:`GraphLike` (``Graph`` or ``FaultView``).
    source:
        Start vertex.
    weight:
        Arc weight function ``weight(u, v) -> int``; must be positive.
        Asymmetry (``weight(u, v) != weight(v, u)``) is allowed and is
        exactly what antisymmetric tiebreaking exploits.
    targets:
        Optional early-exit set: stop once all are settled.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the exact integer distance for every reached
        vertex; ``parent[v]`` the predecessor on the found shortest
        path (``parent[source] is None``).  Unreached vertices appear
        in neither map.

    Notes
    -----
    Dispatch picks the cheapest applicable loop: when the graph has a
    CSR fast path *and* ``weight`` is the graph's own array-backed
    accessor (``arc_weight`` of a :class:`~repro.weighted.graph.WeightedGraph`,
    :class:`~repro.weighted.graph.WeightedView`, or a weight-carrying
    CSR snapshot), the flat kernel reads weights by array index; with a
    CSR path but a foreign weight callable, the array loop still runs
    but calls back into Python per arc; otherwise the generic
    reference loop (:func:`dijkstra_reference`) runs.
    """
    csr = as_csr(graph)
    if csr is not None:
        if _reads_flat_weights(graph, csr[0], weight):
            return fastpaths.csr_dijkstra_flat(csr[0], csr[1], source,
                                               targets=targets)
        return fastpaths.csr_dijkstra(csr[0], csr[1], source, weight,
                                      targets=targets)
    return dijkstra_reference(graph, source, weight, targets=targets)


def _reads_flat_weights(graph: Any, csr: CSRGraph, weight: WeightFn) -> bool:
    """True when ``weight`` is ``graph``'s own array-backed accessor.

    The flat kernel is only sound when the passed weight function
    reads the very values stored in the snapshot's ``weights`` array.
    That is guaranteed exactly when the caller passed the graph's own
    bound ``arc_weight`` (the snapshot was built from, and is
    invalidated with, those weights); any other callable falls back to
    the per-arc kernel.
    """
    if csr.weights is None:
        return False
    return (getattr(weight, "__name__", None) == "arc_weight"
            and getattr(weight, "__self__", None) is graph)


def dijkstra_reference(graph: Any, source: int, weight: WeightFn,
                       targets: Optional[Iterable[int]] = None
                       ) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """The generic dict-and-heap reference loop behind :func:`dijkstra`.

    Runs on any ``GraphLike`` with no CSR dispatch — this is the
    yardstick the cross-check tests and the weighted-engine benchmark
    compare the flat kernels against.
    """
    if not graph.has_vertex(source):
        raise GraphError(f"unknown source vertex {source}")
    remaining = set(targets) if targets is not None else None
    dist: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    # heap entries: (distance, vertex). With a valid tiebreaking weight
    # function, no two *paths* to a vertex tie, so the vertex component
    # only disambiguates entries for different vertices.
    heap = [(0, source)]
    tentative: Dict[int, int] = {source: 0}
    tentative_parent: Dict[int, Optional[int]] = {source: None}
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        parent[u] = tentative_parent[u]
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v in graph.neighbors(u):
            if v in dist:
                continue
            w = weight(u, v)
            if w <= 0:
                raise GraphError(
                    f"non-positive arc weight {w} on ({u}, {v})"
                )
            candidate = d + w
            if v not in tentative or candidate < tentative[v]:
                tentative[v] = candidate
                tentative_parent[v] = u
                heapq.heappush(heap, (candidate, v))
    return dist, parent


def count_min_weight_paths(graph: Any, source: int,
                           weight: WeightFn) -> Dict[int, int]:
    """Exact count of minimum-weight ``source -> v`` paths, per vertex.

    Runs Dijkstra, then dynamic programming over the shortest-path DAG:
    ``count[v] = sum(count[u] for arcs (u, v) with
    dist[u] + weight(u, v) == dist[v])``.  A weight function is a valid
    tiebreaker iff every reachable count is exactly 1 (Definition 18's
    uniqueness requirement) — this is the certifying check used by
    :meth:`repro.core.weights.AntisymmetricWeights.verify_tiebreaking`.

    Routed over the flat-array kernel whenever :func:`dijkstra` itself
    would be (array-backed graph weights); output is identical.
    """
    csr = as_csr(graph)
    if csr is not None and _reads_flat_weights(graph, csr[0], weight):
        return fastpaths.csr_count_min_weight_paths(csr[0], csr[1], source)
    dist, _ = dijkstra(graph, source, weight)
    order = sorted(dist, key=lambda v: dist[v])
    count: Dict[int, int] = {source: 1}
    for v in order:
        if v == source:
            continue
        total = 0
        for u in graph.neighbors(v):
            if u in dist and dist[u] + weight(u, v) == dist[v]:
                total += count.get(u, 0)
        count[v] = total
    return count


def extract_path(parent: Dict[int, Optional[int]],
                 target: int) -> Optional["Path"]:
    """Reconstruct the path to ``target`` from a Dijkstra parent map.

    Returns a :class:`repro.spt.paths.Path` running source -> target, or
    ``None`` when ``target`` was not reached.
    """
    from repro.spt.paths import Path

    if target not in parent:
        return None
    chain = [target]
    v = target
    while True:
        nxt = parent[v]
        if nxt is None:
            break
        v = nxt
        chain.append(v)
    return Path(reversed(chain))
