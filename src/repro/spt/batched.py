"""Batched multi-source traversal kernels over CSR snapshots.

The third rung of the CSR performance ladder (PR 1 unweighted, PR 2
weighted): the library's dominant workloads — APSP sweeps, DSO
preprocessing, replacement-path pair streams — ask for distance vectors
from *many* sources over the *same* (possibly masked) snapshot.  The
per-source kernels in :mod:`repro.spt.fastpaths` re-pay Python-level
frontier overhead per source; the kernels here amortise it across the
whole batch:

* :func:`csr_bfs_distances_many` — level-synchronous BFS with
  **bit-packed frontiers**: one Python int per vertex holds one bit per
  source, so a single sweep over the arc array advances *every* source
  one level (word-parallel ``|=`` across the batch).  A vertex is
  re-expanded only at depths where some source newly discovers it, so
  on low-diameter graphs the arc array is swept ~``diameter`` times
  total instead of once per source.
* :func:`csr_weighted_distances_many` — the weighted analogue cannot
  share frontiers (heap orders differ per source), so it amortises the
  other per-source costs instead: the masked snapshot, the dense
  ``dist``/``tentative`` scratch arrays (reset via a touched-list, not
  reallocated), and the heap list are shared across the batch, and
  duplicate sources are traversed once.
* :func:`csr_dijkstra_flat_many` — same amortisation for the
  ``(dist, parent)``-producing flat Dijkstra, the kernel behind batched
  selected-tree construction (e.g. the two trees per pair in
  Algorithm 1's candidate sweep).

Correctness contract, enforced by the hypothesis cross-checks in
``tests/test_batched_sources.py``: every kernel is **bit-identical**
to mapping its per-source sibling over the batch — for every graph,
every arc mask, and every ragged source batch (empty, singleton, all
vertices, duplicates).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.backends.dispatch import kernel_impl
from repro.graphs.csr import CSRGraph
from repro.spt.fastpaths import UNREACHABLE, _check_source, flat_weights

__all__ = [
    "csr_bfs_distances_many",
    "csr_weighted_distances_many",
    "csr_dijkstra_flat_many",
]


def csr_bfs_distances_many(csr: CSRGraph, mask: Optional[bytearray],
                           sources: Iterable[int]) -> List[List[int]]:
    """Hop-distance vectors for a batch of sources in one BFS wave.

    Dispatching wrapper: the batch is materialised once (its width
    feeds the calibrated dispatch table) and served by whichever
    kernel backend (:mod:`repro.backends`) wins at this work size —
    the bit-packed loops below or the vectorized 2-D frontier matrix
    — with bit-identical results either way.
    """
    src = list(sources)
    impl = kernel_impl("csr_bfs_distances_many", csr, len(src))
    return impl(csr, mask, src)


def csr_weighted_distances_many(csr: CSRGraph, mask: Optional[bytearray],
                                sources: Iterable[int]) -> List[List[int]]:
    """Dense weighted distance vectors for a batch of sources.

    Dispatching wrapper over the kernel backend seam; see
    :func:`csr_weighted_distances_many_loops` for the loop semantics
    every backend is pinned to.
    """
    src = list(sources)
    impl = kernel_impl("csr_weighted_distances_many", csr, len(src))
    return impl(csr, mask, src)


def csr_dijkstra_flat_many(csr: CSRGraph, mask: Optional[bytearray],
                           sources: Iterable[int]
                           ) -> List[Tuple[Dict[int, int],
                                           Dict[int, Optional[int]]]]:
    """Batched :func:`repro.spt.fastpaths.csr_dijkstra_flat`.

    Dispatching wrapper over the kernel backend seam; see
    :func:`csr_dijkstra_flat_many_loops` for the loop semantics every
    backend is pinned to.
    """
    src = list(sources)
    impl = kernel_impl("csr_dijkstra_flat_many", csr, len(src))
    return impl(csr, mask, src)

# Bit offsets set in each byte value: the row-write loop decodes a wide
# discovery mask byte-by-byte through this table instead of peeling one
# bit at a time with big-int arithmetic (a discovery mask is n_sources
# bits; peeling costs O(words) *per bit*, the table costs O(bytes) per
# mask plus O(1) per set bit).
_BYTE_BITS = tuple(
    tuple(j for j in range(8) if b >> j & 1) for b in range(256)
)

# A sparse arc mask (a scenario zeroes <= 2|F| positions) is cheaper to
# handle as an exception list than by testing every arc: below this
# many zeroed positions the BFS wave sweeps rows with the unmasked fast
# loop and falls back to the masked loop only for the few rows that
# actually contain a blocked arc.
_SPARSE_MASK_ZEROS = 32


def _blocked_rows(indptr: List[int],
                  mask: bytearray) -> Optional[frozenset]:
    """Rows containing a zeroed arc, or None when the mask is dense.

    The scan runs at C speed (``bytearray.index``) and each hit maps
    back to its row with one bisection on ``indptr``.
    """
    zeros: List[int] = []
    append = zeros.append
    find = mask.index
    limit = _SPARSE_MASK_ZEROS
    start = 0
    while True:
        # The ValueError protocol is what makes bytearray.index usable as
        # a C-speed scan-for-next-zero; the loop runs at most limit+1
        # times, so the per-iteration setup cost never compounds.
        try:  # reprolint: disable=hot-try-in-loop
            pos = find(0, start)
        except ValueError:
            break
        append(pos)
        if len(zeros) > limit:
            return None
        start = pos + 1
    return frozenset(bisect_right(indptr, pos) - 1 for pos in zeros)


def csr_bfs_distances_many_loops(csr: CSRGraph, mask: Optional[bytearray],
                                 sources: Iterable[int]) -> List[List[int]]:
    """The bit-packed loop implementation (the ``pyloops`` backend).

    Returns one dense vector per source, aligned with the input order
    (duplicates included), each bit-identical to
    ``csr_bfs_distances(csr, mask, source)``.

    The frontier of source ``j`` is bit ``j`` of a per-vertex Python
    int, so the level loop advances all sources at once: each arc
    ``(u, v)`` swept ORs ``frontier[u]`` into a gather word for ``v``,
    and the bits of ``gather[v] & ~seen[v]`` are exactly the sources
    discovering ``v`` at the current depth.  Arbitrary-precision ints
    make the batch width unbounded; the OR is word-parallel across
    ~64 sources per machine word.
    """
    sources = list(sources)
    check = _check_source
    for s in sources:
        check(csr, s)
    if not sources:
        return []
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    dists = [[UNREACHABLE] * n for _ in sources]
    nbytes = (len(sources) + 7) >> 3
    byte_bits = _BYTE_BITS
    # Rows grouped by byte of the discovery mask, so the write loop
    # indexes a chunk by a 0..7 offset instead of computing base + off.
    chunks = [dists[i:i + 8] for i in range(0, len(sources), 8)]
    frontier = [0] * n
    seen = [0] * n
    gather = [0] * n
    active: List[int] = []
    for j, s in enumerate(sources):
        dists[j][s] = 0
        if not frontier[s]:
            active.append(s)
        bit = 1 << j
        frontier[s] |= bit
        seen[s] |= bit
    # Sparse masks (the scenario case: <= 2|F| zeroed arcs) degrade to
    # an exception set of rows, so almost every row still takes the
    # unmasked fast sweep.
    blocked = None if mask is None else _blocked_rows(indptr, mask)
    depth = 0
    while active:
        depth += 1
        touched: List[int] = []
        if mask is None:
            for u in active:
                fu = frontier[u]
                for v in indices[indptr[u]:indptr[u + 1]]:
                    if not gather[v]:
                        touched.append(v)
                    gather[v] |= fu
        elif blocked is not None:
            for u in active:
                fu = frontier[u]
                if u in blocked:
                    lo, hi = indptr[u], indptr[u + 1]
                    for v, ok in zip(indices[lo:hi], mask[lo:hi]):
                        if ok:
                            if not gather[v]:
                                touched.append(v)
                            gather[v] |= fu
                else:
                    for v in indices[indptr[u]:indptr[u + 1]]:
                        if not gather[v]:
                            touched.append(v)
                        gather[v] |= fu
        else:
            for u in active:
                fu = frontier[u]
                lo, hi = indptr[u], indptr[u + 1]
                for v, ok in zip(indices[lo:hi], mask[lo:hi]):
                    if ok:
                        if not gather[v]:
                            touched.append(v)
                        gather[v] |= fu
        for u in active:
            frontier[u] = 0
        active = []
        for v in touched:
            fresh = gather[v] & ~seen[v]
            gather[v] = 0
            if fresh:
                seen[v] |= fresh
                frontier[v] = fresh
                active.append(v)
                if fresh.bit_length() > 64:
                    # Wide mask: one byte-table scan writes every row.
                    bi = 0
                    for byte in fresh.to_bytes(nbytes, "little"):
                        if byte:
                            chunk = chunks[bi]
                            for off in byte_bits[byte]:
                                chunk[off][v] = depth
                        bi += 1
                else:
                    # Narrow mask: peel the set bits directly.
                    while fresh:
                        low = fresh & -fresh
                        dists[low.bit_length() - 1][v] = depth
                        fresh ^= low
    return dists


def csr_weighted_distances_many_loops(csr: CSRGraph,
                                      mask: Optional[bytearray],
                                      sources: Iterable[int]
                                      ) -> List[List[int]]:
    """The scratch-reusing loop implementation (``pyloops`` backend).

    One vector per source, aligned with the input order, each
    bit-identical to ``csr_weighted_distances(csr, mask, source)``.

    Dijkstra frontiers cannot be bit-packed (each source settles in its
    own weight order), so the batch win is amortisation: the dense
    ``dist``/``tentative`` scratch arrays are allocated once and reset
    via a touched-list between sources, the heap list is reused, and a
    source appearing twice is traversed once (its second row is a
    copy).  Callers holding one arc mask for the whole batch — the
    scenario engine's ``source_vectors`` — amortise the O(|F|) mask
    setup across every source as well.
    """
    sources = list(sources)
    check = _check_source
    for s in sources:
        check(csr, s)
    if not sources:
        return []
    weights = flat_weights(csr)
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    dist: List[int] = [UNREACHABLE] * n
    tentative: List[Optional[int]] = [None] * n
    heap: List[Tuple[int, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    heap_append = heap.append
    dist_copy = dist.copy
    unreachable = UNREACHABLE
    rows: Dict[int, List[int]] = {}
    for s in sources:
        if s in rows:
            continue
        touched = [s]
        tentative[s] = 0
        heap_append((0, s))
        if mask is None:
            while heap:
                d, u = pop(heap)
                if dist[u] >= 0:
                    continue
                dist[u] = d
                for i in range(indptr[u], indptr[u + 1]):
                    v = indices[i]
                    if dist[v] >= 0:
                        continue
                    candidate = d + weights[i]
                    known = tentative[v]
                    if known is None or candidate < known:
                        if known is None:
                            touched.append(v)
                        tentative[v] = candidate
                        push(heap, (candidate, v))
        else:
            while heap:
                d, u = pop(heap)
                if dist[u] >= 0:
                    continue
                dist[u] = d
                for i in range(indptr[u], indptr[u + 1]):
                    if not mask[i]:
                        continue
                    v = indices[i]
                    if dist[v] >= 0:
                        continue
                    candidate = d + weights[i]
                    known = tentative[v]
                    if known is None or candidate < known:
                        if known is None:
                            touched.append(v)
                        tentative[v] = candidate
                        push(heap, (candidate, v))
        rows[s] = dist_copy()
        for v in touched:
            dist[v] = unreachable
            tentative[v] = None
    emitted: Set[int] = set()
    out: List[List[int]] = []
    emit = out.append
    seen = emitted.add
    for s in sources:
        emit(rows[s] if s not in emitted else list(rows[s]))
        seen(s)
    return out


def csr_dijkstra_flat_many_loops(csr: CSRGraph, mask: Optional[bytearray],
                                 sources: Iterable[int]
                                 ) -> List[Tuple[Dict[int, int],
                                                 Dict[int, Optional[int]]]]:
    """The scratch-reusing loop implementation (``pyloops`` backend).

    One ``(dist, parent)`` pair per source, aligned with the input
    order and bit-identical to the per-source kernel (no ``targets``
    early exit — batch consumers want full trees).  The ``settled`` /
    ``tentative`` / ``tentative_parent`` scratch arrays and the heap
    are shared across the batch and reset via a touched-list; duplicate
    sources are traversed once and returned as dict copies.
    """
    sources = list(sources)
    check = _check_source
    for s in sources:
        check(csr, s)
    if not sources:
        return []
    weights = flat_weights(csr)
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    settled = [False] * n
    tentative: List[Optional[int]] = [None] * n
    tentative_parent: List[Optional[int]] = [None] * n
    heap: List[Tuple[int, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    heap_append = heap.append
    done: Dict[int, Tuple[Dict[int, int], Dict[int, Optional[int]]]] = {}
    for s in sources:
        if s in done:
            continue
        dist: Dict[int, int] = {}
        parent: Dict[int, Optional[int]] = {}
        touched = [s]
        tentative[s] = 0
        heap_append((0, s))
        while heap:
            d, u = pop(heap)
            if settled[u]:
                continue
            settled[u] = True
            dist[u] = d
            parent[u] = tentative_parent[u]
            for i in range(indptr[u], indptr[u + 1]):
                if mask is not None and not mask[i]:
                    continue
                v = indices[i]
                if settled[v]:
                    continue
                candidate = d + weights[i]
                known = tentative[v]
                if known is None or candidate < known:
                    if known is None:
                        touched.append(v)
                    tentative[v] = candidate
                    tentative_parent[v] = u
                    push(heap, (candidate, v))
        done[s] = (dist, parent)
        for v in touched:
            settled[v] = False
            tentative[v] = None
            tentative_parent[v] = None
    emitted: Set[int] = set()
    out: List[Tuple[Dict[int, int], Dict[int, Optional[int]]]] = []
    emit = out.append
    seen = emitted.add
    for s in sources:
        dist, parent = done[s]
        emit((dist, parent) if s not in emitted
             else (dict(dist), dict(parent)))
        seen(s)
    return out
