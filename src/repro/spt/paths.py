"""Immutable paths and the concatenation algebra of the restoration lemma.

A :class:`Path` is a non-empty sequence of vertices in which consecutive
vertices are assumed adjacent in some ambient graph (validity against a
concrete graph is checked by :meth:`Path.is_valid_in`).  Paths are
*oriented*: ``Path([0, 1, 2])`` runs 0 -> 2.  The paper's central move —
"concatenate the selected path pi(s, x) with the reverse of the selected
path pi(t, x)" (Theorem 2) — is :func:`join_at_midpoint`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, canonical_edge


class Path:
    """An oriented walk through vertices, usually simple and shortest.

    Parameters
    ----------
    vertices:
        Non-empty sequence of vertex ids.  Consecutive duplicates are
        rejected (they would encode a self-loop).

    Examples
    --------
    >>> p = Path([0, 1, 2])
    >>> p.source, p.target, p.hops
    (0, 2, 2)
    >>> p.reverse().vertices
    (2, 1, 0)
    >>> p.uses_edge((1, 0))
    True
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Iterable[int]):
        verts = tuple(vertices)
        if not verts:
            raise GraphError("a path needs at least one vertex")
        for u, v in zip(verts, verts[1:]):
            if u == v:
                raise GraphError(f"consecutive duplicate vertex {u} in path")
        self._vertices = verts

    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, vertex: int) -> "Path":
        """The zero-hop path sitting at ``vertex``."""
        return cls((vertex,))

    @property
    def vertices(self) -> Tuple[int, ...]:
        return self._vertices

    @property
    def source(self) -> int:
        return self._vertices[0]

    @property
    def target(self) -> int:
        return self._vertices[-1]

    @property
    def hops(self) -> int:
        """Number of edges (the unweighted length)."""
        return len(self._vertices) - 1

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[int]:
        return iter(self._vertices)

    def __getitem__(self, index: Any) -> Any:
        return self._vertices[index]

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        inner = "->".join(str(v) for v in self._vertices)
        return f"Path({inner})"

    # ------------------------------------------------------------------
    # edge views
    # ------------------------------------------------------------------
    def arcs(self) -> Iterator[Edge]:
        """Directed edges in path order."""
        return zip(self._vertices, self._vertices[1:])

    def edges(self) -> Iterator[Edge]:
        """Canonical undirected edges in path order."""
        for u, v in self.arcs():
            yield canonical_edge(u, v)

    def edge_set(self) -> frozenset:
        """Canonical undirected edges as a frozenset."""
        return frozenset(self.edges())

    def uses_edge(self, edge: Edge) -> bool:
        """True if the path traverses the undirected edge (either way)."""
        return canonical_edge(*edge) in self.edge_set()

    def uses_arc(self, arc: Edge) -> bool:
        """True if the path traverses ``arc`` with exactly that orientation."""
        return arc in set(self.arcs())

    def avoids(self, faults: Iterable[Edge]) -> bool:
        """True if the path uses none of the (undirected) fault edges."""
        fault_set = {canonical_edge(u, v) for u, v in faults}
        return not (self.edge_set() & fault_set)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def reverse(self) -> "Path":
        return Path(reversed(self._vertices))

    def concat(self, other: "Path") -> "Path":
        """Concatenate: requires ``self.target == other.source``."""
        if self.target != other.source:
            raise GraphError(
                f"cannot concatenate: {self!r} ends at {self.target}, "
                f"{other!r} starts at {other.source}"
            )
        return Path(self._vertices + other._vertices[1:])

    def prefix_to(self, vertex: int) -> "Path":
        """The prefix of this path ending at the first occurrence of ``vertex``."""
        index = self._index_of(vertex)
        return Path(self._vertices[: index + 1])

    def suffix_from(self, vertex: int) -> "Path":
        """The suffix starting at the first occurrence of ``vertex``."""
        index = self._index_of(vertex)
        return Path(self._vertices[index:])

    def subpath(self, u: int, v: int) -> "Path":
        """The contiguous subpath from ``u`` to ``v`` (``u`` must precede ``v``)."""
        iu = self._index_of(u)
        iv = self._index_of(v)
        if iu > iv:
            raise GraphError(f"{u} does not precede {v} on {self!r}")
        return Path(self._vertices[iu: iv + 1])

    def precedes(self, u: int, v: int) -> bool:
        """True when both vertices lie on the path with ``u`` before ``v``."""
        try:
            return self._index_of(u) <= self._index_of(v)
        except GraphError:
            return False

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def is_simple(self) -> bool:
        return len(set(self._vertices)) == len(self._vertices)

    def is_valid_in(self, graph: Any) -> bool:
        """True if every consecutive pair is an edge of ``graph``."""
        return all(graph.has_edge(u, v) for u, v in self.arcs())

    def weight(self, weight_fn: Callable[[int, int], int]) -> int:
        """Total weight under an arc-weight function ``weight_fn(u, v)``."""
        return sum(weight_fn(u, v) for u, v in self.arcs())

    # ------------------------------------------------------------------
    def _index_of(self, vertex: int) -> int:
        try:
            return self._vertices.index(vertex)
        except ValueError:
            raise GraphError(f"vertex {vertex} not on {self!r}") from None


def join_at_midpoint(to_x_from_s: Path, to_x_from_t: Path) -> Path:
    """Form the s ~> t walk ``pi(s,x) . reverse(pi(t,x))`` of Theorem 2.

    Both arguments must end at the same midpoint ``x``.  The result runs
    from ``to_x_from_s.source`` to ``to_x_from_t.source`` and may visit
    ``x``'s neighbourhood twice — the restoration lemma guarantees the
    *existence* of a midpoint where it is a genuine shortest path, not
    that every midpoint yields one.
    """
    if to_x_from_s.target != to_x_from_t.target:
        raise GraphError(
            "midpoint mismatch: paths end at "
            f"{to_x_from_s.target} and {to_x_from_t.target}"
        )
    return to_x_from_s.concat(to_x_from_t.reverse())


def is_replacement_path(graph: Any, path: Path, faults: Iterable[Edge],
                        required_hops: int) -> bool:
    """Check ``path`` is a valid replacement path of the given length.

    True iff the path survives in ``graph \\ faults`` and has exactly
    ``required_hops`` edges (the replacement distance).
    """
    fault_set = {canonical_edge(u, v) for u, v in faults}
    if path.hops != required_hops:
        return False
    if not path.avoids(fault_set):
        return False
    return path.is_valid_in(graph)
