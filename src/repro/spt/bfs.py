"""Breadth-first search over :class:`GraphLike` objects.

These are the unweighted primitives: hop distances, deterministic BFS
trees (lexicographically smallest parent), and layer decompositions.
The tiebreaking layer uses them both as a correctness oracle ("is this
reweighted shortest path also an unweighted shortest path?") and as the
f = 0 baseline throughout the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional

from repro.exceptions import GraphError
from repro.graphs.csr import as_csr
from repro.spt import fastpaths

UNREACHABLE = -1


def bfs_distances(graph: Any, source: int) -> List[int]:
    """Hop distances from ``source``; ``UNREACHABLE`` (-1) where cut off."""
    csr = as_csr(graph)
    if csr is not None:
        return fastpaths.csr_bfs_distances(csr[0], csr[1], source)
    if not graph.has_vertex(source):
        raise GraphError(f"unknown source vertex {source}")
    dist = [UNREACHABLE] * graph.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] == UNREACHABLE:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def bfs_tree(graph: Any, source: int) -> Dict[int, Optional[int]]:
    """Deterministic BFS parent map (smallest-id parent wins).

    Returns ``{vertex: parent}`` with ``parent[source] is None``;
    unreachable vertices are absent from the map.
    """
    csr = as_csr(graph)
    if csr is not None:
        return fastpaths.csr_bfs_tree(csr[0], csr[1], source)
    if not graph.has_vertex(source):
        raise GraphError(f"unknown source vertex {source}")
    parent: Dict[int, Optional[int]] = {source: None}
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.sorted_neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                parent[v] = u
                queue.append(v)
    return parent


def bfs_layers(graph: Any, source: int) -> List[List[int]]:
    """Vertices grouped by hop distance: ``layers[d]`` = distance-d set."""
    dist = bfs_distances(graph, source)
    depth = max((d for d in dist if d != UNREACHABLE), default=0)
    layers: List[List[int]] = [[] for _ in range(depth + 1)]
    for v, d in enumerate(dist):
        if d != UNREACHABLE:
            layers[d].append(v)
    return layers


def hop_distance(graph: Any, source: int, target: int) -> int:
    """Hop distance between two vertices (``UNREACHABLE`` if cut off).

    Early-exits once ``target`` is settled, so cheaper than a full
    :func:`bfs_distances` for nearby pairs.
    """
    csr = as_csr(graph)
    if csr is not None:
        return fastpaths.csr_hop_distance(csr[0], csr[1], source, target)
    if not graph.has_vertex(source):
        raise GraphError(f"unknown source vertex {source}")
    if not graph.has_vertex(target):
        raise GraphError(f"unknown target vertex {target}")
    if source == target:
        return 0
    dist = [UNREACHABLE] * graph.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] == UNREACHABLE:
                dist[v] = dist[u] + 1
                if v == target:
                    return dist[v]
                queue.append(v)
    return UNREACHABLE
