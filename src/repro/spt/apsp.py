"""All-pairs helpers: distance matrices, diameter, eccentricity.

Built on repeated BFS (the paper's own observation that multi-source BFS
is the standard combinatorial APSP for unweighted graphs, Section 1.1).
These are used as correctness oracles throughout the test-suite and as
the non-faulty baseline in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.exceptions import GraphError
from repro.spt.bfs import UNREACHABLE, bfs_distances


def all_pairs_bfs_distances(graph, sources: Optional[Iterable[int]] = None
                            ) -> Dict[int, List[int]]:
    """Hop-distance rows ``{s: [dist(s, v) for v]}`` for each source.

    ``sources`` defaults to all vertices (full APSP).
    """
    if sources is None:
        sources = graph.vertices()
    return {s: bfs_distances(graph, s) for s in sources}


def eccentricity(graph, v: int) -> int:
    """Max distance from ``v`` to any vertex; raises if disconnected."""
    dist = bfs_distances(graph, v)
    if UNREACHABLE in dist:
        raise GraphError(f"graph disconnected from vertex {v}")
    return max(dist)


def diameter(graph) -> int:
    """Exact diameter (max pairwise hop distance) of a connected graph."""
    best = 0
    for v in graph.vertices():
        best = max(best, eccentricity(graph, v))
    return best


def distance_matrix(graph) -> List[List[int]]:
    """Dense ``n x n`` hop-distance matrix (``-1`` for unreachable)."""
    return [bfs_distances(graph, s) for s in graph.vertices()]


def replacement_distance(graph, source: int, target: int, faults) -> int:
    """``dist_{G \\ F}(s, t)`` — the ground-truth replacement distance.

    The brute-force oracle every replacement-path algorithm in the
    library is validated against.  Returns ``UNREACHABLE`` (-1) when the
    faults disconnect the pair.
    """
    from repro.graphs.csr import fast_without
    from repro.spt.bfs import hop_distance

    return hop_distance(fast_without(graph, faults), source, target)
