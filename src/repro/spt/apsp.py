"""All-pairs helpers: distance matrices, diameter, eccentricity.

Built on repeated BFS (the paper's own observation that multi-source BFS
is the standard combinatorial APSP for unweighted graphs, Section 1.1).
These are used as correctness oracles throughout the test-suite and as
the non-faulty baseline in the benchmarks.

Whenever the input exposes a CSR snapshot (a :class:`~repro.graphs.base.Graph`
with its cached ``csr()``, a CSR object, or a masked fault view), the
many-source sweeps here dispatch onto the bit-packed batch kernel
:func:`repro.spt.batched.csr_bfs_distances_many` — one traversal wave
serves every source — and keep the per-source
:func:`~repro.spt.bfs.bfs_distances` loop as the reference for generic
``GraphLike`` inputs.

Disconnected-graph contract (one convention, documented in each
function): the *distance-valued* helpers (:func:`all_pairs_bfs_distances`,
:func:`distance_matrix`) encode unreachable pairs as ``UNREACHABLE``
(-1), while the *max-valued* helpers (:func:`eccentricity`,
:func:`eccentricities`, :func:`diameter`) raise :class:`GraphError`,
since a maximum over missing distances would silently understate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.csr import CSRGraph, as_csr
from repro.spt.batched import csr_bfs_distances_many
from repro.spt.bfs import UNREACHABLE, bfs_distances


def _csr_of(graph: Any) -> Optional[Tuple[CSRGraph, Optional[bytearray]]]:
    """``(snapshot, mask)`` when ``graph`` has a CSR fast path, else None.

    Extends :func:`~repro.graphs.csr.as_csr` dispatch to mutable graphs
    carrying a cached ``csr()`` method (``Graph``, ``WeightedGraph``),
    which is where the many-source sweeps below are usually pointed.
    Deliberately local to this module: giving ``Graph`` a global
    ``_as_csr`` hook would silently upgrade *every* traversal entry
    point, erasing the generic reference loops the randomized
    cross-check tests compare the CSR kernels against.  Here the
    batch kernel is the point of the call, so the wider dispatch is
    the right trade.
    """
    pair = as_csr(graph)
    if pair is not None:
        return pair
    csr_method = getattr(graph, "csr", None)
    if csr_method is not None:
        return csr_method()._as_csr()
    return None


def _distance_rows(graph: Any, sources: List[int]) -> List[List[int]]:
    """One hop-distance vector per source — batched when CSR-capable."""
    pair = _csr_of(graph)
    if pair is None:
        return [bfs_distances(graph, s) for s in sources]
    return csr_bfs_distances_many(pair[0], pair[1], sources)


def all_pairs_bfs_distances(graph: Any,
                            sources: Optional[Iterable[int]] = None
                            ) -> Dict[int, List[int]]:
    """Hop-distance rows ``{s: [dist(s, v) for v]}`` for each source.

    ``sources`` defaults to all vertices (full APSP).  Repeated sources
    are deduplicated up front (first occurrence wins the dict slot, as
    before) so each distinct source is traversed exactly once, and the
    whole batch runs as one multi-source wave on CSR-capable inputs.
    Unreachable vertices are encoded as ``UNREACHABLE`` (-1).
    """
    if sources is None:
        source_list = list(graph.vertices())
    else:
        source_list = list(dict.fromkeys(sources))
    return dict(zip(source_list, _distance_rows(graph, source_list)))


def eccentricity(graph: Any, v: int) -> int:
    """Max distance from ``v`` to any vertex; raises if disconnected.

    See the module docstring for the disconnected-graph contract
    (:func:`distance_matrix` returns ``-1`` entries instead).
    """
    dist = bfs_distances(graph, v)
    if UNREACHABLE in dist:
        raise GraphError(f"graph disconnected from vertex {v}")
    return max(dist)


def eccentricities(graph: Any) -> List[int]:
    """Every vertex's eccentricity in one batched wave.

    Raises :class:`GraphError` on a disconnected graph after a single
    connectivity check (undirected: one row with an ``UNREACHABLE``
    entry convicts the whole graph), instead of the n scans a
    per-vertex :func:`eccentricity` loop would pay.
    """
    rows = _distance_rows(graph, list(graph.vertices()))
    if rows and UNREACHABLE in rows[0]:
        raise GraphError("graph is disconnected; eccentricity undefined")
    return [max(row) for row in rows]


def diameter(graph: Any) -> int:
    """Exact diameter (max pairwise hop distance) of a connected graph.

    One batched all-sources wave plus a single connectivity check —
    not n independent BFS calls each re-scanning for unreachable
    vertices.  Raises :class:`GraphError` when the graph is
    disconnected, matching :func:`eccentricity`; an empty graph has
    diameter 0.
    """
    eccs = eccentricities(graph)
    return max(eccs, default=0)


def distance_matrix(graph: Any) -> List[List[int]]:
    """Dense ``n x n`` hop-distance matrix (``-1`` for unreachable).

    Unlike the max-valued helpers above, disconnection is *not* an
    error here: unreachable pairs are encoded as ``UNREACHABLE`` (-1),
    the library-wide dense-vector convention.
    """
    return _distance_rows(graph, list(graph.vertices()))


def replacement_distance(graph: Any, source: int, target: int,
                         faults: Iterable[Tuple[int, int]]) -> int:
    """``dist_{G \\ F}(s, t)`` — the ground-truth replacement distance.

    The brute-force oracle every replacement-path algorithm in the
    library is validated against.  Returns ``UNREACHABLE`` (-1) when the
    faults disconnect the pair.
    """
    from repro.graphs.csr import fast_without
    from repro.spt.bfs import hop_distance

    return hop_distance(fast_without(graph, faults), source, target)
